//! Traffic observatory: what 18 months of backbone NetFlow and passive
//! DNS say about encrypted-DNS adoption (Section 5).
//!
//! ```sh
//! cargo run --release --example traffic_observatory
//! ```

use doe_traffic::{
    analyze_dot, detect_scanners, generate_dot_traffic, generate_passive_dns, DotTrafficConfig,
    PdnsConfig, ScanDetectorConfig, ScanVerdict,
};
use std::collections::BTreeMap;
use worldgen::providers::anchors;

fn main() {
    println!("generating 18 months of sampled NetFlow (1/3000)...");
    let dataset = generate_dot_traffic(&DotTrafficConfig::default());
    println!("  {} sampled flow records\n", dataset.records.len());

    let mut labels = BTreeMap::new();
    labels.insert(anchors::CLOUDFLARE_PRIMARY, "Cloudflare".to_string());
    labels.insert(anchors::QUAD9_PRIMARY, "Quad9".to_string());
    let report = analyze_dot(&dataset.records, &labels);

    println!("== monthly DoT flows (Figure 11) ==");
    let cf = report
        .monthly
        .get("Cloudflare")
        .cloned()
        .unwrap_or_default();
    let q9 = report.monthly.get("Quad9").cloned().unwrap_or_default();
    for month in ["2018-04", "2018-07", "2018-09", "2018-12"] {
        println!(
            "  {month}: Cloudflare {:>6}  Quad9 {:>6}",
            cf.get(month).copied().unwrap_or(0),
            q9.get(month).copied().unwrap_or(0)
        );
    }
    let jul = *cf.get("2018-07").unwrap_or(&1) as f64;
    let dec = *cf.get("2018-12").unwrap_or(&0) as f64;
    println!(
        "  Cloudflare Jul→Dec growth: {:+.0}%  (paper: +56%)",
        100.0 * (dec - jul) / jul
    );
    println!(
        "  traditional DNS is ~{:.0}× larger under the same sampling\n",
        dataset.do53_monthly_estimate / dec.max(1.0)
    );

    println!("== client-network concentration (Figure 12) ==");
    println!("  netblocks            : {}", report.netblocks.len());
    println!(
        "  top-5 share of flows : {:.0}%  (paper: 44%)",
        100.0 * report.top_share(5)
    );
    println!(
        "  top-20 share         : {:.0}%  (paper: 60%)",
        100.0 * report.top_share(20)
    );
    let (blocks, traffic) = report.short_lived(7);
    println!(
        "  active <1 week       : {:.0}% of netblocks carrying {:.0}% of flows (paper: 96% / 25%)\n",
        100.0 * blocks,
        100.0 * traffic
    );

    println!("== scan hygiene (§5.2) ==");
    let verdicts = detect_scanners(&dataset.records, 853, ScanDetectorConfig::default());
    let scanners: Vec<_> = verdicts
        .iter()
        .filter(|(_, v)| **v == ScanVerdict::Scanner)
        .map(|(s, _)| s.to_string())
        .collect();
    println!("  confirmed scanners: {scanners:?} (all planted research probes)\n");

    println!("== DoH bootstrap lookups (Figure 13) ==");
    let db = generate_passive_dns(&PdnsConfig::three_sixty());
    for domain in [
        "dns.google.com",
        "mozilla.cloudflare-dns.com",
        "doh.cleanbrowsing.org",
        "doh.crypto.sx",
    ] {
        let monthly = db.lookup(domain).map(|s| s.monthly()).unwrap_or_default();
        println!(
            "  {domain:<28} 2018-09: {:>8}   2019-03: {:>8}",
            monthly.get("2018-09").copied().unwrap_or(0),
            monthly.get("2019-03").copied().unwrap_or(0)
        );
    }
}
