//! Scan campaign: discover DoT/DoH services the way Section 3 does.
//!
//! ```sh
//! cargo run --release --example scan_campaign
//! ```
//!
//! Runs a first-and-last-epoch ZMap-style sweep of the simulated address
//! space, verifies DoT with application-layer probes, classifies
//! certificates, groups providers, and greps the URL corpus for DoH.

use doe_scanner::campaign::{compact_space, scan_epoch};
use doe_scanner::{discover_doh, CertClass};
use worldgen::{World, WorldConfig};

fn main() {
    println!("building world...");
    let mut world = World::build(WorldConfig::test_scale(7));
    let space = compact_space(&world);
    println!(
        "sweeping {} addresses across {} epochs (whitelist mode; use `repro --paper` for the full space)\n",
        space.len(),
        2
    );

    for (label, epoch) in [("first scan (Feb 1)", 0usize), ("final scan (May 1)", 9)] {
        let date = world.config.scan_date(epoch);
        world.set_epoch(date);
        let summary = scan_epoch(&mut world, &space, epoch, 42);
        println!("== {label} — {} ==", summary.date);
        println!("  port 853 open      : {}", summary.stats.open);
        println!("  open DoT resolvers : {}", summary.open_resolvers);
        println!("  providers          : {}", summary.provider_count());
        println!(
            "  invalid certs      : {} resolvers across {} providers",
            summary.certs.invalid(),
            summary.providers_with_invalid
        );
        let mut countries: Vec<(&String, &usize)> = summary.by_country.iter().collect();
        countries.sort_by(|a, b| b.1.cmp(a.1));
        let top: Vec<String> = countries
            .iter()
            .take(5)
            .map(|(cc, n)| format!("{cc}:{n}"))
            .collect();
        println!("  top countries      : {}", top.join("  "));
        // A few concrete certificate findings.
        let mut shown = 0;
        for obs in summary.observations.rows() {
            if let Some(class) = obs.cert {
                if class.is_invalid() && obs.is_open_resolver() && shown < 3 {
                    println!(
                        "  e.g. {} ({}) presents {:?}",
                        obs.addr,
                        obs.provider.unwrap_or("?"),
                        match class {
                            CertClass::Expired => "an expired certificate",
                            CertClass::SelfSigned => "a self-signed certificate",
                            CertClass::InvalidChain => "a broken chain",
                            CertClass::UntrustedCa => "an untrusted CA",
                            CertClass::Valid => unreachable!(),
                        }
                    );
                    shown += 1;
                }
            }
        }
        println!();
    }

    println!("== DoH discovery from the URL corpus ==");
    let source = world.scanner_sources[0];
    let corpus = world.corpus.urls.clone();
    let known = world.known_doh_list.clone();
    let store = world.trust_store.clone();
    let now = world.epoch();
    let bootstrap = world.bootstrap_resolver;
    let expected = world.probe.expected_a;
    let report = discover_doh(
        &mut world.net,
        source,
        &corpus,
        bootstrap,
        "probe.dnsmeasure.example",
        expected,
        &known,
        &store,
        now,
    );
    println!(
        "  corpus {} URLs -> {} candidates -> {} working services ({} beyond the public list)",
        report.corpus_size,
        report.candidates,
        report.services.len(),
        report.beyond_known_list.len()
    );
    for t in &report.beyond_known_list {
        println!("  newly discovered: {t}");
    }
}
