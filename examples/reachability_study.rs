//! Reachability study: who can actually use encrypted DNS, and what
//! breaks it (Section 4).
//!
//! ```sh
//! cargo run --release --example reachability_study
//! ```

use doe_vantage::reachability::{reachability_test, TransportKind};
use worldgen::{World, WorldConfig};

fn main() {
    println!("building world...");
    let mut world = World::build(WorldConfig::test_scale(23));
    let clients = world.proxyrack.clients.clone();
    println!(
        "testing {} global vantage points against Cloudflare / Google / Quad9 / self-built...\n",
        clients.len()
    );
    let report = reachability_test(&mut world, &clients, "Cloudflare");

    println!(
        "{:<12} {:<6} {:>9} {:>11} {:>9}",
        "Resolver", "Proto", "Correct", "Incorrect", "Failed"
    );
    for (resolver, row) in &report.matrix {
        for t in [TransportKind::Dns, TransportKind::Dot, TransportKind::Doh] {
            if let Some(counts) = row.get(&t) {
                let (c, i, f) = counts.rates();
                println!(
                    "{resolver:<12} {t:<6} {:>8.2}% {:>10.2}% {:>8.2}%",
                    100.0 * c,
                    100.0 * i,
                    100.0 * f
                );
            }
        }
    }

    println!("\n== interception findings (Table 6 shape) ==");
    for i in &report.interceptions {
        println!(
            "  client {} ({}) behind CA {:?}  443:{} 853:{}",
            i.client, i.country, i.ca_cn, i.port_443, i.port_853
        );
    }

    println!("\n== forensics on Cloudflare-DoT failures (Table 5 shape) ==");
    let (hist, none) = report.port_histogram();
    println!("  clients probed: {}", report.forensics.len());
    println!("  no ports open : {none}");
    for (port, n) in hist {
        println!("  port {port:<5}: {n} clients");
    }
    for f in report
        .forensics
        .iter()
        .filter(|f| f.page_title.is_some())
        .take(5)
    {
        println!(
            "  {} sees \"{}\"{}",
            f.client,
            f.page_title.as_deref().unwrap_or(""),
            if f.coinminer {
                "  [coin-mining script!]"
            } else {
                ""
            }
        );
    }
}
