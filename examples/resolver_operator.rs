//! Resolver operator: stand up your own DoT + DoH resolver on the
//! simulated Internet and watch what clients of each profile experience —
//! including what happens when you let the certificate lapse (the
//! misconfiguration a quarter of the paper's providers shipped).
//!
//! ```sh
//! cargo run --release --example resolver_operator
//! ```

use dnswire::zone::Zone;
use dnswire::{Name, RData, RecordType};
use doe_protocols::dot::DotClient;
use doe_protocols::responder::AuthoritativeServer;
use doe_protocols::{
    Bootstrap, DohBackend, DohClient, DohMethod, DohServerService, DotServerService,
};
use httpsim::UriTemplate;
use netsim::{HostMeta, Network, NetworkConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, DateStamp, KeyId, TlsClientConfig, TlsServerConfig, TrustStore};

fn main() {
    let today = DateStamp::from_ymd(2019, 2, 1);
    let mut net = Network::new(NetworkConfig::default(), 1);

    // --- the operator's infrastructure -----------------------------------
    let resolver_ip: Ipv4Addr = "192.0.2.53".parse().unwrap();
    let client_ip: Ipv4Addr = "198.51.100.77".parse().unwrap();
    net.add_host(
        HostMeta::new(resolver_ip)
            .country("NL")
            .asn(64496)
            .label("my-resolver"),
    );
    net.add_host(HostMeta::new(client_ip).country("DE").asn(64497));

    // Serve a zone of our own.
    let apex = Name::parse("operator.example").unwrap();
    let mut zone = Zone::new(apex.clone());
    zone.add_record(
        &apex.prepend("www").unwrap(),
        300,
        RData::A("203.0.113.80".parse().unwrap()),
    );
    zone.add_record(
        &apex.prepend("*").unwrap(),
        60,
        RData::A("203.0.113.81".parse().unwrap()),
    );
    let responder = Arc::new(AuthoritativeServer::new(vec![zone]));

    // Get a certificate from a (simulated) public CA.
    let ca = CaHandle::new("Let's Encrypt Authority X3", KeyId(1), today + -700, 3650);
    let mut store = TrustStore::new();
    store.add(ca.authority());
    let good_cert = ca.issue(
        "dns.operator.example",
        vec![],
        KeyId(2),
        1,
        today + -30,
        today + 60,
    );

    // Bind DoT (853) and DoH (443).
    net.bind_tcp(
        resolver_ip,
        853,
        Arc::new(DotServerService::new(
            TlsServerConfig::new(vec![good_cert.clone()], KeyId(2)),
            Arc::clone(&responder) as Arc<dyn doe_protocols::DnsResponder>,
        )),
    );
    net.bind_tcp(
        resolver_ip,
        443,
        Arc::new(DohServerService::new(
            TlsServerConfig::new(vec![good_cert], KeyId(2)),
            vec!["/dns-query".into()],
            DohBackend::Local(Arc::clone(&responder) as Arc<dyn doe_protocols::DnsResponder>),
        )),
    );
    println!("resolver up: DoT on {resolver_ip}:853, DoH on {resolver_ip}:443\n");

    // --- clients ----------------------------------------------------------
    let query = dnswire::builder::query(1, "www.operator.example", RecordType::A).unwrap();

    let mut dot = DotClient::new(TlsClientConfig::strict(store.clone(), today));
    let reply = dot
        .query_once(
            &mut net,
            client_ip,
            resolver_ip,
            Some("dns.operator.example"),
            &query,
        )
        .expect("strict DoT works against a valid certificate");
    println!(
        "strict DoT client : {:?} in {}",
        reply.message.answers[0].rdata, reply.latency
    );

    let template = UriTemplate::parse("https://dns.operator.example/dns-query{?dns}").unwrap();
    let mut doh = DohClient::new(
        TlsClientConfig::strict(store.clone(), today),
        template,
        DohMethod::Get,
        Bootstrap::Static(resolver_ip),
    );
    let reply = doh
        .query_once(&mut net, client_ip, &query)
        .expect("DoH works");
    println!(
        "DoH client        : {:?} in {}",
        reply.message.answers[0].rdata, reply.latency
    );

    // --- now let the certificate lapse (Finding 1.2) ----------------------
    println!(
        "\n...90 days pass; the operator forgets to renew (like 27 resolvers in the paper)...\n"
    );
    let later = today + 90;
    let mut dot_later = DotClient::new(TlsClientConfig::strict(store.clone(), later));
    match dot_later.query_once(
        &mut net,
        client_ip,
        resolver_ip,
        Some("dns.operator.example"),
        &query,
    ) {
        Err(e) => println!("strict DoT client : FAILS — {e}"),
        Ok(_) => unreachable!("expired certificate must fail the strict profile"),
    }
    let mut opp = DotClient::new(TlsClientConfig::opportunistic(store, later));
    let reply = opp
        .query_once(&mut net, client_ip, resolver_ip, None, &query)
        .expect("opportunistic clients proceed");
    println!(
        "opportunistic DoT : still answers ({:?}) but verification says {:?}",
        reply.message.answers[0].rdata,
        reply.transport.verify.unwrap().unwrap_err()
    );
    println!("\nmoral: renew your certificates — strict clients fail closed, opportunistic ones lose authentication silently.");
}
