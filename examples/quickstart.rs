//! Quickstart: resolve names through encrypted DNS inside the simulated
//! Internet.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small world (the full study's world at 2% client scale),
//! then uses the public `StubResolver` API — the same API a downstream
//! application would embed — to resolve names over Strict DoT,
//! Opportunistic DoT, DoH and clear text, printing what each profile
//! experiences.

use dnswire::RecordType;
use doe_protocols::{Bootstrap, DohMethod, StubConfig, StubProfile, StubResolver};
use netsim::SimDuration;
use worldgen::providers::anchors;
use worldgen::{World, WorldConfig};

fn main() {
    println!("building world (seed 2019, 2% scale)...");
    let mut world = World::build(WorldConfig::test_scale(2019));
    let client = world
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == worldgen::Affliction::None)
        .expect("a clean client exists")
        .clone();
    println!(
        "vantage point: {} ({}, AS{})\n",
        client.ip, client.country, client.asn.0
    );

    let cases: Vec<(&str, std::net::Ipv4Addr, StubProfile)> = vec![
        (
            "Strict DoT (Quad9)",
            anchors::QUAD9_PRIMARY,
            StubProfile::StrictDot {
                auth_name: "quad9.net".into(),
            },
        ),
        (
            "Opportunistic DoT (Cloudflare)",
            anchors::CLOUDFLARE_PRIMARY,
            StubProfile::OpportunisticDot {
                fallback_clear: true,
            },
        ),
        (
            "DoH (cloudflare-dns.com)",
            anchors::CLOUDFLARE_DOH_FRONT,
            StubProfile::Doh {
                template: world.deployment.doh_services[0].template.clone(),
                method: DohMethod::Post,
                bootstrap: Bootstrap::Do53 {
                    resolver: world.bootstrap_resolver,
                },
            },
        ),
        (
            "Clear text (self-built)",
            world.self_built.addr,
            StubProfile::ClearText,
        ),
    ];

    for (label, resolver, profile) in cases {
        let mut stub = StubResolver::new(StubConfig {
            resolver,
            profile,
            trust_store: world.trust_store.clone(),
            now: world.epoch(),
            timeout: SimDuration::from_secs(5),
        });
        println!("--- {label} via {resolver} ---");
        for i in 0..3 {
            let name = format!("q{i}.probe.dnsmeasure.example");
            match stub.resolve(&mut world.net, client.ip, &name, RecordType::A) {
                Ok(reply) => {
                    let answer = reply
                        .message
                        .answers
                        .first()
                        .map(|rr| format!("{:?}", rr.rdata))
                        .unwrap_or_else(|| "(no answer)".into());
                    println!(
                        "  {name} -> {answer}  [{} in {}, reused={}]",
                        reply.transport.protocol, reply.latency, reply.transport.connection_reused
                    );
                }
                Err(e) => println!("  {name} -> FAILED: {e}"),
            }
        }
        println!(
            "  queries answered over a reused connection: {}\n",
            stub.reused_queries()
        );
    }

    println!(
        "ground truth: every probe name resolves to {}",
        world.probe.expected_a
    );
}
