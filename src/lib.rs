//! # doe-repro — reproduction of the IMC'19 DNS-over-Encryption study
//!
//! This is the workspace's umbrella crate: it re-exports every member so
//! the `examples/` and `tests/` at the repository root can exercise the
//! whole system, and so `cargo doc` produces one entry point.
//!
//! Start with [`doe_core`] for the experiment runners, [`worldgen`] for
//! the simulated world, and [`doe_protocols`] for the DNS transports.

pub use dnswire;
pub use doe_core;
pub use doe_protocols;
pub use doe_scanner;
pub use doe_traffic;
pub use doe_vantage;
pub use httpsim;
pub use netsim;
pub use tlssim;
pub use worldgen;
