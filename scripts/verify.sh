#!/usr/bin/env bash
# Repository verification gate: tier-1 build+tests, formatting, lints.
#
# Everything runs --offline against the vendored dependency stubs
# (see DESIGN.md §2 "Dependency policy") — no network is required.
#
#   ./scripts/verify.sh            # full gate
#   SKIP_CLIPPY=1 ./scripts/verify.sh   # when clippy is unavailable
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline --workspace

echo "==> dnswire: owned-vs-view differential + adversarial corpus"
# The zero-copy view decoder must accept/reject byte-for-byte like the
# owned decoder, with the same error variants, on generated messages,
# mutation fuzz and the pinned adversarial fixtures. The scan hot paths
# classify replies through the view, so this equivalence is what makes
# the 2.5M-host sweep trustworthy.
cargo test -q --offline -p dnswire --test differential --test adversarial

echo "==> telemetry: repro --metrics determinism (shards 1 vs 8)"
# A small campaign covering every instrumented stage: figure3 drives the
# sweep + DoT verification, table4 the vantage reachability tests and
# figure9 the stub-resolver performance comparison. The snapshot must be
# byte-identical however many workers ran the measurement.
mkdir -p results
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 1 --metrics results/metrics.json figure3 table4 figure9 >/dev/null
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 8 --metrics results/metrics.shards8.json figure3 table4 figure9 >/dev/null
[ -s results/metrics.json ] || { echo "FAIL: results/metrics.json is empty" >&2; exit 1; }
cmp results/metrics.json results/metrics.shards8.json || {
    echo "FAIL: telemetry snapshot differs between --shards 1 and --shards 8" >&2
    exit 1
}
for series in stage.sweep.probe_us stage.verify.session_us \
              stage.reach.client_us stage.perf.query_us net.probe.sent; do
    grep -q "$series" results/metrics.json || {
        echo "FAIL: series $series missing from results/metrics.json" >&2
        exit 1
    }
done
rm -f results/metrics.shards8.json
echo "    metrics.json identical across shard counts, all stages present"

echo "==> scheduler: stub-scale event determinism (shards 1 vs 8)"
# The event-driven client fleet: the same population run on 1 and 8
# workers must produce byte-identical reports and telemetry, and the
# snapshot must carry the per-event-kind scheduler series.
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 1 --clients 50000 --json results/stub1 \
    --metrics results/stub1/metrics.json stub-scale >/dev/null
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 8 --clients 50000 --json results/stub8 \
    --metrics results/stub8/metrics.json stub-scale >/dev/null
cmp results/stub1/stub-scale.json results/stub8/stub-scale.json || {
    echo "FAIL: stub-scale report differs between --shards 1 and --shards 8" >&2
    exit 1
}
cmp results/stub1/metrics.json results/stub8/metrics.json || {
    echo "FAIL: stub-scale telemetry differs between --shards 1 and --shards 8" >&2
    exit 1
}
for series in sched.event.fired sched.queue.depth stage.stub.queries \
              stage.stub.retransmits stage.stub.idle_closes; do
    grep -q "$series" results/stub1/metrics.json || {
        echo "FAIL: series $series missing from stub-scale metrics" >&2
        exit 1
    }
done
rm -rf results/stub1 results/stub8
echo "    stub-scale report + telemetry identical across shard counts"

echo "==> privacy: padding-leakage determinism (two runs, shards 2 vs 8)"
# The fingerprinting experiment: two independent runs on different shard
# counts must produce byte-identical results/privacy.json — the flows
# are keyed on their global index, so neither repetition nor shard
# layout may leak into the classifier's inputs or the per-policy
# telemetry.
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 2 --json results/priv_a \
    --metrics results/priv_a/metrics.json padding-leakage >/dev/null
cargo run -q --release -p doe-core --bin repro --offline -- \
    --shards 8 --json results/priv_b \
    --metrics results/priv_b/metrics.json padding-leakage >/dev/null
cmp results/priv_a/padding-leakage.json results/priv_b/padding-leakage.json || {
    echo "FAIL: padding-leakage report differs between two runs" >&2
    exit 1
}
cmp results/priv_a/metrics.json results/priv_b/metrics.json || {
    echo "FAIL: padding-leakage telemetry differs between two runs" >&2
    exit 1
}
for series in stage.privacy.flows stage.privacy.wire_bytes \
              stage.privacy.dummy_cells stage.privacy.attributed; do
    grep -q "$series" results/priv_a/metrics.json || {
        echo "FAIL: series $series missing from padding-leakage metrics" >&2
        exit 1
    }
done
for policy in none block random-block constant-rate adaptive-padding; do
    grep -q "\"$policy\"" results/priv_a/padding-leakage.json || {
        echo "FAIL: policy $policy missing from padding-leakage report" >&2
        exit 1
    }
done
cp results/priv_a/padding-leakage.json results/privacy.json
rm -rf results/priv_a results/priv_b
echo "    padding-leakage byte-stable; artifact archived as results/privacy.json"

echo "==> doe-lint (determinism contract: interprocedural + dataflow + summaries)"
# One pass archives the artifacts (v4 report, v2 call graph, SARIF); a
# second pass re-derives all three so the gate catches any
# nondeterminism in the analyzer itself — including the effect-summary
# fixpoint and the lock-order cycle search. A stale entry in lint.toml
# (renamed function, dropped rule root) is a hard error inside the run,
# so the D006–D015 roots cannot rot silently.
cargo run -q --release -p doe-lint --offline -- \
    --json-out results/doe-lint.json --graph-out results/callgraph.json \
    --sarif results/doe-lint.sarif
cargo run -q --release -p doe-lint --offline -- \
    --quiet --json-out results/doe-lint.second.json \
    --graph-out results/callgraph.second.json \
    --sarif results/doe-lint.second.sarif
cmp results/callgraph.json results/callgraph.second.json || {
    echo "FAIL: callgraph.json differs between two doe-lint runs" >&2
    exit 1
}
cmp results/doe-lint.json results/doe-lint.second.json || {
    echo "FAIL: doe-lint.json differs between two doe-lint runs" >&2
    exit 1
}
cmp results/doe-lint.sarif results/doe-lint.second.sarif || {
    echo "FAIL: SARIF export differs between two doe-lint runs" >&2
    exit 1
}
rm -f results/callgraph.second.json results/doe-lint.second.json \
      results/doe-lint.second.sarif
grep -q '"rule": "D006"\|"shard_entries"\|"nodes"' results/callgraph.json || {
    echo "FAIL: results/callgraph.json lost its node section" >&2
    exit 1
}
grep -q '"version": 4' results/doe-lint.json || {
    echo "FAIL: results/doe-lint.json is not schema v4 (fingerprint + summary provenance)" >&2
    exit 1
}
grep -q '"clean": true' results/doe-lint.json || {
    echo "FAIL: doe-lint reports unsuppressed findings" >&2
    exit 1
}
grep -q '"version": "2.1.0"' results/doe-lint.sarif || {
    echo "FAIL: results/doe-lint.sarif is not SARIF 2.1.0" >&2
    exit 1
}
# Baseline regression gate: a clean workspace diffed against its own
# archived report must stay clean (exit 0, no regressions).
cargo run -q --release -p doe-lint --offline -- \
    --quiet --baseline results/doe-lint.json || {
    echo "FAIL: doe-lint --baseline reports regressions against the archived report" >&2
    exit 1
}
# The dataflow rules (D009-D012) and the summary rules (D013-D015) must
# stay rooted in lint.toml.
for roots in step_entries time_entries hot_entries \
             lock_entries decode_entries identity_entries; do
    grep -q "^$roots = \[" lint.toml || {
        echo "FAIL: lint.toml lost its $roots roots" >&2
        exit 1
    }
done
echo "    doe-lint.json (v4) + callgraph.json + doe-lint.sarif archived, all byte-stable"

if [[ "${FULL_SCALE:-0}" == "1" ]]; then
    echo "==> full scale: 2.5M-host sweep determinism (FULL_SCALE=1)"
    # The paper-scale leg, opt-in because it adds a few minutes: the
    # ignored shard-invariance test sweeps the full space at shards
    # 1/2/8, then two complete --paper regenerations of the sweep
    # experiments must be byte-identical.
    cargo test -q --offline --release --test shard_invariance -- \
        --ignored full_scale_sweep
    for run in a b; do
        mkdir -p "results/fullscale_$run"
        cargo run -q --release -p doe-core --bin repro --offline -- \
            --paper --shards 8 --json "results/fullscale_$run" \
            figure3 table2 figure4 >"results/fullscale_$run/report.txt"
    done
    for f in figure3.json table2.json figure4.json report.txt; do
        cmp "results/fullscale_a/$f" "results/fullscale_b/$f" || {
            echo "FAIL: full-scale $f differs between two --paper runs" >&2
            exit 1
        }
    done
    grep -Eq '"port_open": 2[0-9]{6}' results/fullscale_a/figure3.json || {
        echo "FAIL: full-scale open count left the paper's 2-3M band" >&2
        exit 1
    }
    rm -rf results/fullscale_a results/fullscale_b
    echo "    full-scale sweep shard-invariant and byte-stable across runs"
else
    echo "==> full scale: skipped (set FULL_SCALE=1 to run the 2.5M-host gate)"
fi

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "${SKIP_CLIPPY:-0}" != "1" ]]; then
    echo "==> cargo clippy --workspace -D warnings"
    cargo clippy --workspace --all-targets --offline -q -- -D warnings
else
    echo "==> clippy skipped (SKIP_CLIPPY=1)"
fi

echo "==> verify.sh: all gates green"
