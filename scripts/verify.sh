#!/usr/bin/env bash
# Repository verification gate: tier-1 build+tests, formatting, lints.
#
# Everything runs --offline against the vendored dependency stubs
# (see DESIGN.md §2 "Dependency policy") — no network is required.
#
#   ./scripts/verify.sh            # full gate
#   SKIP_CLIPPY=1 ./scripts/verify.sh   # when clippy is unavailable
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline --workspace

echo "==> doe-lint (determinism contract)"
cargo run -q --release -p doe-lint --offline -- --json-out results/doe-lint.json

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "${SKIP_CLIPPY:-0}" != "1" ]]; then
    echo "==> cargo clippy --workspace -D warnings"
    cargo clippy --workspace --all-targets --offline -q -- -D warnings
else
    echo "==> clippy skipped (SKIP_CLIPPY=1)"
fi

echo "==> verify.sh: all gates green"
