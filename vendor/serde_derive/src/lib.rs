//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the shim `serde::Serialize` /
//! `serde::Deserialize` traits (JSON-value based) for plain structs and
//! enums. The token stream is parsed by hand — no `syn`/`quote`, since the
//! container has no registry access. Supported shapes cover everything the
//! workspace derives: named/tuple/unit structs and enums with unit, tuple
//! and struct variants. Generics and `#[serde(...)]` attributes are not
//! supported (and not used in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the shim `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `i`; returns the index of the first structural token.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list on commas that sit outside any `<...>` nesting.
/// (Brackets, parens and braces arrive as single `Group` trees, so only
/// angle brackets need explicit depth tracking.)
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in toks {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level_commas(group_tokens) {
        let i = skip_attrs_and_vis(&chunk, 0);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
            None => {}
        }
    }
    Ok(names)
}

fn tuple_arity(group_tokens: &[TokenTree]) -> usize {
    split_top_level_commas(group_tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    if kind == "enum" {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        let body_toks: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        for chunk in split_top_level_commas(&body_toks) {
            let j = skip_attrs_and_vis(&chunk, 0);
            let vname = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                Some(other) => return Err(format!("unexpected token in enum body: {other}")),
                None => continue,
            };
            let shape = match chunk.get(j + 1) {
                None => VariantShape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(tuple_arity(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Named(named_fields(&inner)?)
                }
                Some(other) => {
                    return Err(format!("unexpected token after variant {vname}: {other}"))
                }
            };
            variants.push(Variant { name: vname, shape });
        }
        return Ok(Item::Enum { name, variants });
    }
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::NamedStruct {
                name,
                fields: named_fields(&inner)?,
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::TupleStruct {
                name,
                arity: tuple_arity(&inner),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        other => Err(format!("expected struct body, found {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const ALLOWS: &str = "#[automatically_derived]\n#[allow(unused_variables, unreachable_patterns, unreachable_code, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}))",
                        f
                    )
                })
                .collect();
            (name, format!("::serde::Value::Object(vec![{}])", entries.join(", ")))
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_json_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            (name, format!("::serde::Value::Array(vec![{}])", items.join(", ")))
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push(format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                    )),
                    VariantShape::Tuple(1) => arms.push(format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_json_value(f0))]),"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_json_value(f{i})"))
                            .collect();
                        arms.push(format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_json_value({f}))")
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "{ALLOWS}impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(::serde::field(obj, {f:?})?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "let obj = v.expect_object()?;\nOk({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let items = v.expect_array()?;\n\
                     if items.len() != {arity} {{ return Err(::serde::DeError::msg(format!(\
                     \"expected {arity} elements for {name}, got {{}}\", items.len()))); }}\n\
                     Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "match v {{ ::serde::Value::Null => Ok({name}), _ => \
                 Err(::serde::DeError::msg(\"expected null for unit struct {name}\")) }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("{vn:?} => Ok({name}::{vn}),"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_json_value(inner)?)),"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "{vn:?} => {{ let items = inner.expect_array()?;\n\
                             if items.len() != {n} {{ return Err(::serde::DeError::msg(format!(\
                             \"expected {n} elements for {name}::{vn}, got {{}}\", items.len()))); }}\n\
                             Ok({name}::{vn}({})) }}",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(::serde::field(obj, {f:?})?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "{vn:?} => {{ let obj = inner.expect_object()?;\nOk({name}::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n{}\n\
                     other => Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n{}\n\
                     other => Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                     _ => Err(::serde::DeError::msg(\"invalid enum representation for {name}\")),\n}}",
                    unit_arms.join("\n"),
                    data_arms.join("\n")
                ),
            )
        }
    };
    format!(
        "{ALLOWS}impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
