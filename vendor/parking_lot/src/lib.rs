//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The registry is unreachable in the build environment, so this vendored
//! shim provides the subset of the parking_lot API the workspace uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards. Lock poisoning is
//! translated to a panic-propagating `unwrap`, matching parking_lot's
//! semantics closely enough for a deterministic simulator (a panic while
//! holding a lock aborts the test that caused it either way).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
