//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*`/`prop_assume!`, [`any`],
//! [`Just`], ranges as strategies, tuple strategies, [`collection::vec`],
//! [`string::string_regex`] and [`prop_oneof!`]. Generation is deterministic
//! (seeded per test from the test name) and there is no shrinking: a failing
//! case panics with the case index so it can be replayed.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// Deterministic generator RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }
}

/// Hash a test name into a stable seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Failure raised by `prop_assert*`; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from alternatives; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Unit-interval double; full-range floats are rarely what a
        // simulator test wants and none of ours ask for them.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.range_inclusive(0x20, 0x7e) as u32).expect("printable ascii")
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

macro_rules! impl_strategy_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_inclusive(self.start as u64, self.end as u64 - 1) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.range_inclusive(*self.start() as u64, *self.end() as u64) as $ty
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_range_signed {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (*self.start() as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_strategy_range_signed!(i8, i16, i32, i64, isize);

// A bare string literal is a regex strategy, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .expect("invalid regex strategy literal")
            .generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let len =
                rng.range_inclusive(self.size.start as u64, self.size.end as u64 - 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies.
pub mod string {
    use super::{Strategy, TestRng};

    /// A parsed mini-regex: sequence of quantified atoms.
    pub struct RegexStrategy {
        atoms: Vec<(Node, Quant)>,
    }

    enum Node {
        Lit(char),
        Class(Vec<char>),
        Group(Vec<(Node, Quant)>),
    }

    struct Quant {
        min: usize,
        max: usize,
    }

    /// Error from an unsupported or malformed pattern.
    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "regex strategy error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Strategy for strings matching a small regex subset: literals,
    /// escapes, character classes (ranges, negation, `&&` intersection),
    /// groups, and the `?` / `{m}` / `{m,n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let atoms = parse_sequence(&chars, &mut pos, /*in_group=*/ false)?;
        if pos != chars.len() {
            return Err(Error(format!("trailing pattern input at {pos}")));
        }
        Ok(RegexStrategy { atoms })
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            gen_sequence(&self.atoms, rng, &mut out);
            out
        }
    }

    fn gen_sequence(atoms: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
        for (node, quant) in atoms {
            let count = rng.range_inclusive(quant.min as u64, quant.max as u64) as usize;
            for _ in 0..count {
                match node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(set) => {
                        let idx = rng.below(set.len() as u64) as usize;
                        out.push(set[idx]);
                    }
                    Node::Group(inner) => gen_sequence(inner, rng, out),
                }
            }
        }
    }

    fn parse_sequence(
        chars: &[char],
        pos: &mut usize,
        in_group: bool,
    ) -> Result<Vec<(Node, Quant)>, Error> {
        let mut atoms = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            let node = match c {
                ')' if in_group => break,
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos)?)
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_sequence(chars, pos, true)?;
                    if chars.get(*pos) != Some(&')') {
                        return Err(Error("unclosed group".into()));
                    }
                    *pos += 1;
                    Node::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    let esc = *chars
                        .get(*pos)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    *pos += 1;
                    if esc == 'P' || esc == 'p' {
                        // Unicode category shorthand; only `\PC` (printable,
                        // i.e. not-control) is supported, as ASCII.
                        let cat = chars
                            .get(*pos)
                            .ok_or_else(|| Error("dangling category escape".into()))?;
                        if esc != 'P' || *cat != 'C' {
                            return Err(Error(format!("unsupported category \\{esc}{cat}")));
                        }
                        *pos += 1;
                        Node::Class((0x20u8..=0x7e).map(char::from).collect())
                    } else {
                        Node::Lit(unescape(esc))
                    }
                }
                '|' | '*' | '+' => {
                    return Err(Error(format!("unsupported regex operator `{c}`")));
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            let quant = parse_quant(chars, pos)?;
            atoms.push((node, quant));
        }
        Ok(atoms)
    }

    fn parse_quant(chars: &[char], pos: &mut usize) -> Result<Quant, Error> {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                Ok(Quant { min: 0, max: 1 })
            }
            Some('{') => {
                *pos += 1;
                let mut min_text = String::new();
                while matches!(chars.get(*pos), Some(c) if c.is_ascii_digit()) {
                    min_text.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = min_text
                    .parse()
                    .map_err(|_| Error("bad quantifier".into()))?;
                let max = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    let mut max_text = String::new();
                    while matches!(chars.get(*pos), Some(c) if c.is_ascii_digit()) {
                        max_text.push(chars[*pos]);
                        *pos += 1;
                    }
                    max_text.parse().map_err(|_| Error("bad quantifier".into()))?
                } else {
                    min
                };
                if chars.get(*pos) != Some(&'}') {
                    return Err(Error("unclosed quantifier".into()));
                }
                *pos += 1;
                Ok(Quant { min, max })
            }
            _ => Ok(Quant { min: 1, max: 1 }),
        }
    }

    /// Parse the inside of `[...]` starting just past the `[`.
    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Vec<char>, Error> {
        let negated = chars.get(*pos) == Some(&'^');
        if negated {
            *pos += 1;
        }
        let mut set: Vec<char> = Vec::new();
        loop {
            let c = *chars
                .get(*pos)
                .ok_or_else(|| Error("unclosed character class".into()))?;
            match c {
                ']' => {
                    *pos += 1;
                    break;
                }
                '&' if chars.get(*pos + 1) == Some(&'&') => {
                    // Intersection: `base&&[...]`.
                    *pos += 2;
                    if chars.get(*pos) != Some(&'[') {
                        return Err(Error("expected class after &&".into()));
                    }
                    *pos += 1;
                    let other = parse_class(chars, pos)?;
                    set.retain(|c| other.contains(c));
                    if chars.get(*pos) != Some(&']') {
                        return Err(Error("unclosed intersected class".into()));
                    }
                    *pos += 1;
                    break;
                }
                '\\' => {
                    *pos += 1;
                    let esc = chars
                        .get(*pos)
                        .ok_or_else(|| Error("dangling escape in class".into()))?;
                    *pos += 1;
                    push_maybe_range(chars, pos, unescape(*esc), &mut set)?;
                }
                c => {
                    *pos += 1;
                    push_maybe_range(chars, pos, c, &mut set)?;
                }
            }
        }
        if negated {
            // Universe: printable ASCII plus the usual whitespace escapes.
            let universe: Vec<char> = (0x20u8..=0x7e)
                .map(char::from)
                .chain(['\t', '\r', '\n'])
                .collect();
            set = universe.into_iter().filter(|c| !set.contains(c)).collect();
        }
        if set.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(set)
    }

    fn push_maybe_range(
        chars: &[char],
        pos: &mut usize,
        start: char,
        set: &mut Vec<char>,
    ) -> Result<(), Error> {
        if chars.get(*pos) == Some(&'-') && !matches!(chars.get(*pos + 1), Some(']') | None) {
            *pos += 1;
            let end = match chars.get(*pos) {
                Some('\\') => {
                    *pos += 1;
                    let esc = chars
                        .get(*pos)
                        .ok_or_else(|| Error("dangling escape in range".into()))?;
                    unescape(*esc)
                }
                Some(&c) => c,
                None => return Err(Error("dangling range".into())),
            };
            *pos += 1;
            if end < start {
                return Err(Error("inverted range".into()));
            }
            for code in start as u32..=end as u32 {
                if let Some(c) = char::from_u32(code) {
                    set.push(c);
                }
            }
        } else {
            set.push(start);
        }
        Ok(())
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

/// Define property tests: each `fn` runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..$crate::CASES {
                    let outcome: Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("proptest `{}` case {} failed: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Assert within a property test; fails the case rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..=9, y in 10u64..20, flag in any::<bool>()) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!(flag || !flag);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(None), (1u16..100).prop_map(Some)]) {
            if let Some(n) = v {
                prop_assert!(n >= 1 && n < 100);
            }
        }

        #[test]
        fn vectors_have_requested_lengths(xs in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn assume_skips(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let strat = crate::string::string_regex("[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?").unwrap();
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 22, "bad label {s:?}");
            assert!(!s.starts_with('-') && !s.ends_with('-'), "bad edges {s:?}");
        }
        let header = crate::string::string_regex("[ -~&&[^:\r\n]]{0,30}").unwrap();
        for _ in 0..200 {
            let s = crate::Strategy::generate(&header, &mut rng);
            assert!(s.len() <= 30);
            assert!(!s.contains([':', '\r', '\n']), "bad header value {s:?}");
        }
        let domain = crate::string::string_regex("[a-z]{1,10}\\.[a-z]{2,5}").unwrap();
        for _ in 0..50 {
            let s = crate::Strategy::generate(&domain, &mut rng);
            assert!(s.contains('.'), "missing dot in {s:?}");
        }
    }
}
