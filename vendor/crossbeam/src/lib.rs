//! Offline stand-in for `crossbeam`, providing the scoped-thread API the
//! workspace uses on top of `std::thread::scope` (stable since 1.63).
//!
//! `crossbeam::scope(|s| { s.spawn(...); ... })` mirrors crossbeam 0.8:
//! the closure receives a [`thread::Scope`] whose `spawn` returns a
//! [`thread::ScopedJoinHandle`]; all spawned threads are joined before
//! `scope` returns. Unlike crossbeam, a panicking child propagates on
//! `scope` exit rather than being captured in the returned `Result`, so the
//! `Ok` arm carries the closure's value and panics never reach the `Err`
//! arm — acceptable for the deterministic sweeps this repo runs.

pub mod thread {
    use std::thread as stdthread;

    /// Scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its value.
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

/// Re-export of `std::thread::available_parallelism` as a convenience for
/// callers picking a default shard count.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
