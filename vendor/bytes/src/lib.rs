//! Offline stand-in for the `bytes` crate.
//!
//! The workspace declares `bytes` but currently encodes wire formats with
//! plain `Vec<u8>`; this shim keeps the dependency resolvable offline and
//! provides a cheaply-cloneable [`Bytes`] for future use.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_clones_cheaply() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.to_vec(), c.to_vec());
        assert!(!b.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }
}
