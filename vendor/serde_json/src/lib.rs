//! Offline stand-in for `serde_json`.
//!
//! Renders the shim `serde::Value` tree to JSON text and parses it back.
//! Provides the subset of the real API this workspace uses: [`to_vec`],
//! [`from_slice`], [`from_str`], [`to_string`], [`to_string_pretty`],
//! [`Value`] and the [`json!`] macro.

use std::fmt;

pub use serde::Value;

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Rebuild a deserialisable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json_value(value).map_err(Error::from)
}

/// Serialise to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialise to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serialise to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s.as_bytes())?;
    from_value(&value)
}

/// Parse a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let value = parse(bytes)?;
    from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; degrade to null like lossy encoders do.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{kw}` at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 in practice).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal. Object keys must be string
/// literals; values may be nested literals or arbitrary serialisable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_internal_array!([] $($elems)*) };
    ({ $($entries:tt)* }) => { $crate::json_internal_object!([] $($entries)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    ([ $($done:expr,)* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    ([ $($done:expr,)* ] $($rest:tt)+) => {
        $crate::json_internal_array_elem!([ $($done,)* ] () $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array_elem {
    ([ $($done:expr,)* ] ( $($cur:tt)+ ) , $($rest:tt)* ) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!($($cur)+), ] $($rest)*)
    };
    ([ $($done:expr,)* ] ( $($cur:tt)+ ) ) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!($($cur)+), ])
    };
    ([ $($done:expr,)* ] ( $($cur:tt)* ) $next:tt $($rest:tt)* ) => {
        $crate::json_internal_array_elem!([ $($done,)* ] ( $($cur)* $next ) $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    ([ $($done:expr,)* ]) => { $crate::Value::Object(vec![ $($done),* ]) };
    ([ $($done:expr,)* ] $key:literal : $($rest:tt)+ ) => {
        $crate::json_internal_object_val!([ $($done,)* ] $key () $($rest)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object_val {
    ([ $($done:expr,)* ] $key:literal ( $($cur:tt)+ ) , $($rest:tt)* ) => {
        $crate::json_internal_object!(
            [ $($done,)* ($key.to_string(), $crate::json!($($cur)+)), ] $($rest)*
        )
    };
    ([ $($done:expr,)* ] $key:literal ( $($cur:tt)+ ) ) => {
        $crate::json_internal_object!(
            [ $($done,)* ($key.to_string(), $crate::json!($($cur)+)), ]
        )
    };
    ([ $($done:expr,)* ] $key:literal ( $($cur:tt)* ) $next:tt $($rest:tt)* ) => {
        $crate::json_internal_object_val!([ $($done,)* ] $key ( $($cur)* $next ) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let v = json!({
            "name": "probe",
            "count": 3,
            "rate": 0.25,
            "tags": ["a", "b"],
            "nested": {"ok": true, "missing": null},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn expressions_in_macro() {
        let xs = vec![1u64, 2, 3];
        let total: u64 = xs.iter().sum();
        let v = json!({"total": total, "items": xs, "halves": xs.iter().map(|x| x * 2).collect::<Vec<_>>()});
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(6));
        assert_eq!(v.get("halves").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX - 1;
        let text = to_string(&n).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
