//! Offline stand-in for `serde`.
//!
//! The real serde cannot be fetched in this container, so this shim provides
//! a much smaller data model that is sufficient for the workspace: values
//! serialise into an in-memory JSON [`Value`] tree (rendered to text by the
//! companion `serde_json` shim) and deserialise back from it. The derive
//! macros re-exported from `serde_derive` generate `to_json_value` /
//! `from_json_value` implementations with the same externally-tagged enum
//! representation serde uses, so derived wire formats round-trip faithfully.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::net::{Ipv4Addr, Ipv6Addr};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON tree: the single intermediate representation all
/// serialisation in this workspace flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer that fits in `i64`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True if this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned integer payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Signed integer payload, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries, or a type error (used by derived code).
    pub fn expect_object(&self) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Array items, or a type error (used by derived code).
    pub fn expect_array(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError::msg(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escape and quote a string as JSON text.
pub fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Fetch a required object field; used by derived `Deserialize` impls.
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{key}`")))
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialisation error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Convert into the JSON tree representation.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the JSON tree representation.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::msg(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_serde_sint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::msg(format!("expected integer, got {}", v.kind())))?;
                <$ty>::try_from(n).map_err(|_| {
                    DeError::msg(format!("integer {n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_serde_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| {
                        DeError::msg(format!("expected unsigned integer, got {}", v.kind()))
                    })?;
                <$ty>::try_from(n).map_err(|_| {
                    DeError::msg(format!("integer {n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_json_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// Some registry structs (expectation tables) carry `&'static str` fields.
// They are only ever serialised in practice; deserialising leaks the string,
// which is acceptable for the CLI artifact paths that could reach this.
impl Deserialize for &'static str {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        String::from_json_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::msg(format!("expected null, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.expect_array()?.iter().map(T::from_json_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_json_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v.expect_array()?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::msg(format!(
                        "expected tuple of {want} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// Maps serialise as arrays of `[key, value]` pairs so that non-string key
// types (netblocks, country codes, ...) round-trip without a string codec.
macro_rules! impl_serde_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn to_json_value(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.expect_array()?
                    .iter()
                    .map(|pair| <(K, V)>::from_json_value(pair))
                    .collect()
            }
        }
    };
}

impl_serde_map!(BTreeMap, Ord);
impl_serde_map!(HashMap, Eq + Hash);

macro_rules! impl_serde_set {
    ($set:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn to_json_value(&self) -> Value {
                Value::Array(self.iter().map(Serialize::to_json_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $set<T> {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.expect_array()?.iter().map(T::from_json_value).collect()
            }
        }
    };
}

impl_serde_set!(BTreeSet, Ord);
impl_serde_set!(HashSet, Eq + Hash);

impl Serialize for Ipv4Addr {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_json_value(v)?;
        s.parse()
            .map_err(|_| DeError::msg(format!("invalid IPv4 address `{s}`")))
    }
}

impl Serialize for Ipv6Addr {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv6Addr {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_json_value(v)?;
        s.parse()
            .map_err(|_| DeError::msg(format!("invalid IPv6 address `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json_value(&u64::MAX.to_json_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_json_value(&(-7i32).to_json_value()).unwrap(), -7);
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_json_value(&Option::<u8>::None.to_json_value()).unwrap(),
            None
        );
    }

    #[test]
    fn containers_round_trip() {
        let mut map = BTreeMap::new();
        map.insert((1u16, 2u16), vec![3u8, 4]);
        let back = BTreeMap::<(u16, u16), Vec<u8>>::from_json_value(&map.to_json_value()).unwrap();
        assert_eq!(back, map);
        let arr: [u8; 2] = [9, 8];
        assert_eq!(<[u8; 2]>::from_json_value(&arr.to_json_value()).unwrap(), arr);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_json_value(&Value::Int(300)).is_err());
        assert!(u64::from_json_value(&Value::Int(-1)).is_err());
    }
}
