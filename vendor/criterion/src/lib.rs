//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple wall-clock harness: each benchmark is
//! warmed up briefly, then timed over `sample_size` samples, and the median
//! ns/iter is printed to stdout. No statistics engine, no HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Override the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that takes a measurable slice of
    // the budget, starting from one.
    let mut iters = 1u64;
    let per_sample = budget / sample_size as u32;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let low = samples[0];
    let high = samples[samples.len() - 1];
    println!("{name:<50} median {median:>12.1} ns/iter  (min {low:.1}, max {high:.1}, {iters} iters/sample)");
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_function() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
