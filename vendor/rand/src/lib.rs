//! Offline stand-in for `rand` 0.8.
//!
//! The registry is unreachable in the build environment, so this vendored
//! shim implements the subset of the rand API the workspace uses with a
//! deterministic xoshiro256++ generator: [`rngs::SmallRng`], the
//! [`RngCore`]/[`SeedableRng`] core traits, and an [`Rng`] extension trait
//! with `gen`, `gen_bool`, `gen_range` and `fill`. Sequences differ from
//! upstream rand (the simulator only requires determinism, not a specific
//! stream), but the statistical quality of xoshiro256++ matches upstream's
//! SmallRng, which is the same family.

/// Core generator interface: raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64: the canonical seed expander for xoshiro.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
                   i16 => next_u32, i32 => next_u32);
impl_standard_int!(u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample_standard(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + (u128::sample_standard(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample_standard(rng) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (u128::sample_standard(rng) % span) as i128) as $t
            }
        }
        #[allow(dead_code)]
        const _: core::marker::PhantomData<$u> = core::marker::PhantomData;
    )*};
}

impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + <$t>::sample_standard(rng) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // Draw even for p == 0 or 1, so stream positions do not depend on p.
        let roll: f64 = self.gen();
        roll < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

pub use rngs::SmallRng as DefaultLibRng;

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
    pub use super::rngs::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn float_draws_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
