//! Fault injection: the pipeline must behave sanely under packet loss,
//! forwarding loops and broken services — failures should be errors, not
//! hangs or panics.

use dnswire::zone::Zone;
use dnswire::{builder, Rcode, RecordType};
use dnswire::{Name, RData};
use doe_protocols::do53::{do53_udp_query, Do53UdpService};
use doe_protocols::dot::{DotClient, DotServerService};
use doe_protocols::responder::AuthoritativeServer;
use netsim::{HostMeta, LatencyProfile, Network, NetworkConfig, SimDuration};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, DateStamp, KeyId, TlsClientConfig, TlsServerConfig, TrustStore};

fn now() -> DateStamp {
    DateStamp::from_ymd(2019, 2, 1)
}

fn lossy_world(loss: f64) -> (Network, Ipv4Addr, Ipv4Addr, TrustStore) {
    let mut net = Network::new(NetworkConfig::default(), 404);
    let resolver: Ipv4Addr = "192.0.2.9".parse().unwrap();
    let client: Ipv4Addr = "198.51.100.9".parse().unwrap();
    net.add_host(HostMeta::new(resolver).country("US").label("resolver"));
    net.add_host(HostMeta::new(client).country("NG"));
    net.latency_mut().set_country_profile(
        netsim::CountryCode::new("NG"),
        LatencyProfile {
            access_ms: 15.0,
            jitter_sigma: 0.4,
            loss,
        },
    );
    let apex = Name::parse("probe.example").unwrap();
    let mut zone = Zone::new(apex.clone());
    zone.add_record(
        &apex.prepend("*").unwrap(),
        60,
        RData::A("203.0.113.1".parse().unwrap()),
    );
    let responder: Arc<dyn doe_protocols::DnsResponder> =
        Arc::new(AuthoritativeServer::new(vec![zone]));
    net.bind_udp(
        resolver,
        53,
        Arc::new(Do53UdpService::new(Arc::clone(&responder))),
    );
    let ca = CaHandle::new("CA", KeyId(1), now() + -100, 3650);
    let leaf = ca.issue(
        "dns.probe.example",
        vec![],
        KeyId(2),
        1,
        now() + -1,
        now() + 90,
    );
    let mut store = TrustStore::new();
    store.add(ca.authority());
    net.bind_tcp(
        resolver,
        853,
        Arc::new(DotServerService::new(
            TlsServerConfig::new(vec![leaf], KeyId(2)),
            responder,
        )),
    );
    (net, client, resolver, store)
}

#[test]
fn udp_retries_beat_moderate_loss() {
    let (mut net, client, resolver, _store) = lossy_world(0.25);
    let mut ok = 0;
    let n = 200;
    for i in 0..n {
        let q = builder::query(i, &format!("l{i}.probe.example"), RecordType::A).unwrap();
        // 4 retries: P(all lost) = 0.25^5 ≈ 0.1%.
        if do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(2), 4).is_ok() {
            ok += 1;
        }
    }
    assert!(ok as f64 / n as f64 > 0.97, "{ok}/{n} under 25% loss");
}

#[test]
fn tcp_based_dot_survives_loss_with_retransmission_cost() {
    // TCP retransmissions are charged as extra RTTs, not failures: DoT
    // lookups still complete, just slower.
    let (mut net, client, resolver, store) = lossy_world(0.30);
    let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
    let mut latencies = Vec::new();
    for i in 0..40u16 {
        let q = builder::query(i, &format!("t{i}.probe.example"), RecordType::A).unwrap();
        let reply = dot
            .query_once(&mut net, client, resolver, Some("dns.probe.example"), &q)
            .expect("TCP absorbs loss");
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        latencies.push(reply.latency);
    }
    // Loss shows up as a heavy tail, not as errors.
    let max = latencies.iter().max().unwrap();
    let min = latencies.iter().min().unwrap();
    assert!(*max > *min, "retransmissions should spread latencies");
}

#[test]
fn forwarding_loop_terminates_with_error() {
    // A DoT proxy that forwards to itself: the handler-depth guard must
    // convert the loop into an error instead of recursing forever.
    let mut net = Network::new(NetworkConfig::default(), 505);
    let proxy: Ipv4Addr = "192.0.2.66".parse().unwrap();
    let client: Ipv4Addr = "198.51.100.66".parse().unwrap();
    net.add_host(HostMeta::new(proxy).label("self-loop proxy"));
    net.add_host(HostMeta::new(client));
    let fg_ca = CaHandle::new("Loop CA", KeyId(9), now() + -10, 3650);
    let cert = CaHandle::self_signed("LOOP", vec![], KeyId(10), 1, now() + -10, now() + 90);
    let svc = tlssim::TlsInterceptService::fixed_cert_proxy(
        fg_ca,
        KeyId(10),
        vec![cert],
        (proxy, 853), // upstream = itself
        now(),
    );
    net.bind_tcp(proxy, 853, Arc::new(svc));
    let mut dot = DotClient::new(TlsClientConfig::opportunistic(TrustStore::new(), now()));
    let q = builder::query(1, "loop.probe.example", RecordType::A).unwrap();
    let result = dot.query_once(&mut net, client, proxy, None, &q);
    assert!(
        result.is_err(),
        "self-forwarding proxy must error, got {result:?}"
    );
}

#[test]
fn malformed_service_bytes_do_not_poison_the_client() {
    // A "DoT" service that answers TLS handshakes with garbage app data.
    let mut net = Network::new(NetworkConfig::default(), 606);
    let server: Ipv4Addr = "192.0.2.77".parse().unwrap();
    let client: Ipv4Addr = "198.51.100.77".parse().unwrap();
    net.add_host(HostMeta::new(server));
    net.add_host(HostMeta::new(client));
    net.bind_tcp(
        server,
        853,
        Arc::new(netsim::service::FnStreamService::new(
            |_c, _p, _d: &[u8]| vec![0xde, 0xad, 0xbe, 0xef, 0x01],
            "garbage",
        )),
    );
    let mut dot = DotClient::new(TlsClientConfig::opportunistic(TrustStore::new(), now()));
    let q = builder::query(1, "x.probe.example", RecordType::A).unwrap();
    assert!(dot.query_once(&mut net, client, server, None, &q).is_err());
    // The client object is still usable against a real server afterwards.
    let (mut net2, client2, resolver2, store2) = lossy_world(0.0);
    let mut dot2 = DotClient::new(TlsClientConfig::strict(store2, now()));
    let q2 = builder::query(2, "y.probe.example", RecordType::A).unwrap();
    assert!(dot2
        .query_once(
            &mut net2,
            client2,
            resolver2,
            Some("dns.probe.example"),
            &q2
        )
        .is_ok());
}

#[test]
fn extreme_loss_fails_loudly_not_silently() {
    let (mut net, client, resolver, _store) = lossy_world(1.0);
    let q = builder::query(1, "dead.probe.example", RecordType::A).unwrap();
    let err =
        do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(1), 2).unwrap_err();
    // All three attempts' timeouts are accounted.
    assert_eq!(err.elapsed(), SimDuration::from_secs(3));
}
