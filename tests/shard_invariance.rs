//! Shard-count invariance: the sharded measurement engine must produce
//! bit-identical results whether it runs on 1, 2 or 8 worker threads.
//!
//! This is the property that makes `--shards` safe to default to the
//! machine's core count: parallelism changes wall-clock time, never the
//! measurement.

use doe_privacy::{privacy_study_sharded, PrivacyConfig};
use doe_scanner::campaign::{compact_space, run_campaign_sharded};
use doe_scanner::sweep::syn_sweep_sharded;
use doe_traffic::{build_stub_world, stub_population_sharded, StubPopulationConfig};
use doe_vantage::performance::{performance_test_sharded, standard_tunnel};
use doe_vantage::reachability::reachability_test_sharded;
use netsim::{HostMeta, Network, NetworkConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;
use worldgen::{World, WorldConfig};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn syn_sweep_is_invariant_across_shard_counts() {
    let build = || {
        let mut net = Network::new(NetworkConfig::default(), 11);
        let sources: Vec<Ipv4Addr> = ["198.51.100.1", "198.51.100.2", "198.51.100.3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        for &s in &sources {
            net.add_host(HostMeta::new(s));
        }
        let space = doe_scanner::sweep::AddressSpace::new(vec![
            netsim::Netblock::new("10.40.0.0".parse().unwrap(), 23),
            netsim::Netblock::new("172.16.9.0".parse().unwrap(), 24),
        ]);
        // Plant open and closed hosts at scattered indices.
        for (i, port) in [
            (5u64, 853u16),
            (300, 853),
            (511, 853),
            (600, 80),
            (767, 853),
        ] {
            let addr = space.addr(i);
            net.add_host(HostMeta::new(addr));
            net.bind_tcp(
                addr,
                port,
                Arc::new(netsim::service::FnStreamService::new(
                    |_c, _p, d: &[u8]| d.to_vec(),
                    "echo",
                )),
            );
        }
        (net, sources, space)
    };

    let (mut net, sources, space) = build();
    let reference = syn_sweep_sharded(&mut net, &sources, &space, 853, 2019, 1);
    assert_eq!(reference.stats.probed, space.len());
    assert_eq!(reference.stats.open, 4);

    for shards in SHARD_COUNTS {
        let (mut net, sources, space) = build();
        let result = syn_sweep_sharded(&mut net, &sources, &space, 853, 2019, shards);
        assert_eq!(
            result.stats, reference.stats,
            "stats differ at {shards} shards"
        );
        assert_eq!(
            result.open_addrs, reference.open_addrs,
            "open-address discovery order differs at {shards} shards"
        );
    }
}

#[test]
fn campaign_is_invariant_across_shard_counts() {
    let run = |shards: usize| {
        let mut world = World::build(WorldConfig::test_scale(7));
        let space = compact_space(&world);
        run_campaign_sharded(&mut world, &space, 2, 1, shards)
    };

    let reference = run(1);
    assert_eq!(reference.epochs.len(), 2);
    assert!(reference.epochs[0].open_resolvers > 0);

    for shards in SHARD_COUNTS {
        let report = run(shards);
        for (a, b) in reference.epochs.iter().zip(report.epochs.iter()) {
            let e = a.epoch;
            assert_eq!(
                a.stats, b.stats,
                "sweep stats differ at {shards} shards (epoch {e})"
            );
            assert_eq!(
                a.open_resolvers, b.open_resolvers,
                "open resolvers differ at {shards} shards (epoch {e})"
            );
            assert_eq!(
                a.by_country, b.by_country,
                "country split differs at {shards} shards"
            );
            assert_eq!(
                a.by_provider, b.by_provider,
                "provider split differs at {shards} shards"
            );
            assert_eq!(a.certs, b.certs, "cert buckets differ at {shards} shards");
            assert_eq!(
                a.providers_with_invalid, b.providers_with_invalid,
                "invalid-provider count differs at {shards} shards"
            );
            assert_eq!(
                a.single_address_providers, b.single_address_providers,
                "single-address providers differ at {shards} shards"
            );
            assert_eq!(
                a.wrong_answer_resolvers, b.wrong_answer_resolvers,
                "wrong-answer set differs at {shards} shards"
            );
            assert_eq!(
                a.in_public_list, b.in_public_list,
                "public-list overlap differs at {shards} shards"
            );
            // Full per-resolver observation tables agree row-by-row; the
            // SoA tables compare column-for-column (including provider
            // intern order), so this is bit-identity, not just set equality.
            assert_eq!(a.observations.len(), b.observations.len());
            for (x, y) in a.observations.rows().zip(b.observations.rows()) {
                assert_eq!(
                    x.addr, y.addr,
                    "observation order differs at {shards} shards"
                );
                assert_eq!(x.outcome, y.outcome);
                assert_eq!(x.cert, y.cert);
                assert_eq!(x.provider, y.provider);
                assert_eq!(x.answer_correct, y.answer_correct);
            }
            assert_eq!(
                a.observations, b.observations,
                "packed observation columns differ at {shards} shards"
            );
        }
    }
}

/// Run the event-driven stub-client population and return everything a
/// shard count could conceivably perturb: the report and the merged
/// telemetry snapshot.
fn run_stub_population(
    clients: usize,
    shards: usize,
) -> (
    doe_traffic::StubPopulationReport,
    netsim::telemetry::Snapshot,
) {
    let mut world = build_stub_world(2019, true);
    let report = stub_population_sharded(
        &mut world,
        &StubPopulationConfig {
            clients,
            queries_per_client: 2,
        },
        shards,
    );
    let snapshot = world.net.metrics().snapshot();
    (report, snapshot)
}

/// The privacy experiment behind `results/privacy.json`: the report the
/// JSON artifact serializes, plus its per-policy telemetry, must be
/// bit-identical at 1, 2 and 8 shards — flows are keyed on their global
/// index, so shard layout cannot leak into the classifier's inputs.
#[test]
fn privacy_report_is_invariant_across_shard_counts() {
    let run = |shards: usize| {
        let mut net = Network::new(
            NetworkConfig {
                metrics: true,
                ..NetworkConfig::default()
            },
            501,
        );
        let cfg = PrivacyConfig::quick();
        let world = doe_privacy::workload::install(&mut net, cfg.domains);
        let report = privacy_study_sharded(&mut net, &world, &cfg, shards);
        let snapshot = net.metrics().snapshot();
        (report, snapshot)
    };

    let (reference, ref_snapshot) = run(1);
    assert_eq!(reference.policies.len(), 5);
    let none = &reference.policies[0];
    assert!(
        none.accuracy_permille > reference.random_guess_permille * 4,
        "classifier should beat random on unpadded flows"
    );

    for shards in SHARD_COUNTS {
        let (report, snapshot) = run(shards);
        assert_eq!(
            report, reference,
            "privacy report differs at {shards} shards"
        );
        assert_eq!(
            snapshot, ref_snapshot,
            "privacy telemetry differs at {shards} shards"
        );
    }
}

#[test]
fn stub_population_is_invariant_across_shard_counts() {
    let (reference, ref_snapshot) = run_stub_population(6_000, 1);
    assert_eq!(reference.clients, 6_000);
    assert!(reference.totals.answered > 0);
    assert!(reference.totals.retransmits > 0, "no retransmits scheduled");

    for shards in SHARD_COUNTS {
        let (report, snapshot) = run_stub_population(6_000, shards);
        assert_eq!(report, reference, "stub report differs at {shards} shards");
        assert_eq!(
            snapshot, ref_snapshot,
            "stub telemetry differs at {shards} shards"
        );
    }
}

/// The headline scale claim: one run interleaves a million concurrent
/// event-driven stub clients and the merged report stays bit-identical
/// for any worker count. Ignored by default — run in release mode:
/// `cargo test --release -- --ignored stub_population_at_one_million`.
#[test]
#[ignore = "million-client run; needs --release"]
fn stub_population_at_one_million_clients_is_invariant() {
    let (reference, ref_snapshot) = run_stub_population(1_000_000, 1);
    assert_eq!(reference.clients, 1_000_000);
    // The dead band is exactly 1/64 of the fleet: every one of its
    // queries times out, retransmits once, and finally fails.
    let dead = (0..1_000_000u64)
        .filter(|ci| doe_traffic::stubsim::is_dead_client(*ci))
        .count() as u64;
    assert_eq!(reference.totals.failed, dead * 2);
    assert_eq!(
        reference.totals.answered,
        (1_000_000 - dead) * 2,
        "live fleet must answer every query"
    );

    for shards in [2usize, 8] {
        let (report, snapshot) = run_stub_population(1_000_000, shards);
        assert_eq!(report, reference, "1M report differs at {shards} shards");
        assert_eq!(
            snapshot, ref_snapshot,
            "1M telemetry differs at {shards} shards"
        );
    }
}

/// The paper-scale claim: a full sweep of the simulated IPv4 space finds
/// the 2–3 million port-853-open hosts of §3.2 and the merged epoch —
/// sweep stats, discovery order and the packed per-host observation
/// table — is bit-identical for any worker count. Ignored by default —
/// run in release mode:
/// `cargo test --release -- --ignored full_scale_sweep`.
#[test]
#[ignore = "2.5M-host sweep; needs --release"]
fn full_scale_sweep_is_invariant_across_shard_counts() {
    let run = |shards: usize| {
        let mut world = World::build(WorldConfig::default());
        let space = doe_scanner::campaign::full_space(&world);
        let summary = doe_scanner::campaign::scan_epoch_sharded(&mut world, &space, 0, 1, shards);
        (space.len(), summary)
    };

    let (space_len, reference) = run(1);
    assert!(space_len > 3_000_000, "full space holds {space_len} addrs");
    assert!(
        (2_000_000..3_000_000).contains(&reference.stats.open),
        "open hosts outside the paper's 2-3M band: {}",
        reference.stats.open
    );
    assert_eq!(
        reference.observations.len() as u64,
        reference.stats.open,
        "every open host must be verified"
    );
    assert!(reference.open_resolvers > 0);

    for shards in [2usize, 8] {
        let (_, summary) = run(shards);
        assert_eq!(
            summary.stats, reference.stats,
            "sweep stats differ at {shards} shards"
        );
        assert_eq!(
            summary.open_resolvers, reference.open_resolvers,
            "open resolvers differ at {shards} shards"
        );
        assert_eq!(
            summary.observations, reference.observations,
            "full-scale observation table differs at {shards} shards"
        );
    }
}

#[test]
fn metrics_snapshot_is_invariant_across_shard_counts() {
    // Drive every instrumented stage — campaign (sweep + verification +
    // DoH discovery), reachability and performance — then compare the
    // merged telemetry registry. Per-shard registries must merge to the
    // same snapshot for any shard count.
    let run = |shards: usize| {
        let mut world = World::build(WorldConfig::test_scale(7));
        let space = compact_space(&world);
        run_campaign_sharded(&mut world, &space, 2, 1, shards);
        let clients: Vec<_> = world.proxyrack.clients.iter().take(24).cloned().collect();
        reachability_test_sharded(&mut world, &clients, "Cloudflare", shards);
        let tunnel = standard_tunnel(&mut world.net);
        let perf_clients: Vec<_> = world
            .proxyrack
            .clients
            .iter()
            .filter(|c| c.in_perf_subset)
            .take(12)
            .cloned()
            .collect();
        performance_test_sharded(&mut world, &perf_clients, tunnel, 4, shards);
        world.net.metrics().snapshot()
    };

    let reference = run(1);
    assert!(!reference.is_empty(), "telemetry snapshot is empty");
    // Every instrumented stage shows up in the merged registry.
    for series in [
        "stage.sweep.probe_us",
        "stage.verify.session_us",
        "stage.reach.client_us",
    ] {
        assert!(
            reference.histograms.contains_key(series),
            "missing histogram {series}"
        );
    }
    assert!(
        reference
            .histograms
            .keys()
            .any(|k| k.starts_with("stage.perf.query_us")),
        "missing performance latency series"
    );
    assert!(
        reference.counters.contains_key("net.probe.sent"),
        "missing probe counter"
    );

    for shards in SHARD_COUNTS {
        let snapshot = run(shards);
        for (k, v) in &reference.counters {
            assert_eq!(
                snapshot.counters.get(k),
                Some(v),
                "counter {k} differs at {shards} shards"
            );
        }
        for (k, v) in &reference.histograms {
            assert_eq!(
                snapshot.histograms.get(k),
                Some(v),
                "histogram {k} differs at {shards} shards"
            );
        }
        assert_eq!(
            snapshot, reference,
            "telemetry snapshot differs at {shards} shards"
        );
    }
}
