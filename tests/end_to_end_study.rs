//! The capstone integration test: run every experiment of the study at
//! test scale and assert the *shape* of each result — who wins, by what
//! rough factor, where the crossovers fall — mirroring the paper's
//! findings. (Absolute values are compared in EXPERIMENTS.md, not here.)

use doe_core::experiments::{run, ALL_EXPERIMENTS};
use doe_core::{Study, StudyConfig};

fn study() -> Study {
    Study::new(StudyConfig {
        epochs: 2,
        ..StudyConfig::quick(2019)
    })
}

#[test]
fn every_experiment_runs_and_produces_output() {
    let mut s = study();
    for id in ALL_EXPERIMENTS {
        let result = run(&mut s, id).unwrap_or_else(|| panic!("runner missing for {id}"));
        assert_eq!(result.id, id);
        assert!(
            result.rendered.len() > 80,
            "{id} rendered only {} bytes",
            result.rendered.len()
        );
        assert!(!result.json.is_null(), "{id} produced no JSON");
        // The expectation registry covers it.
        assert!(
            doe_core::expectation(id).is_some(),
            "{id} missing expectation entry"
        );
    }
}

#[test]
fn finding_1_shape_servers() {
    // Key observation 1: many small unlisted providers; a quarter of
    // providers with invalid certificates.
    let mut s = study();
    let campaign = s.campaign().clone();
    let last = campaign.epochs.last().unwrap();
    assert!(last.open_resolvers > 1_400, "paper: >1.5K per scan");
    assert!(
        last.open_resolvers > last.in_public_list * 10,
        "most resolvers absent from public lists"
    );
    let invalid_frac = last.providers_with_invalid as f64 / last.provider_count() as f64;
    assert!(
        (0.15..0.45).contains(&invalid_frac),
        "paper: ~25% providers invalid; got {invalid_frac}"
    );
    // Growth between the first and last scan (Figure 3's slope).
    let first = &campaign.epochs[0];
    assert!(last.open_resolvers > first.open_resolvers);
}

#[test]
fn finding_2_shape_reachability() {
    // Key observation 2: >99% reachability for DoE, in-path devices break
    // clear text far more than encrypted DNS.
    let mut s = study();
    let n = {
        let r = s.reach_global();
        r.clients_tested as f64
    };
    let r = s.reach_global().clone();
    use doe_vantage::reachability::TransportKind::*;
    let cf_dns_fail = r.cell("Cloudflare", Dns).failed as f64 / n;
    let cf_dot_fail = r.cell("Cloudflare", Dot).failed as f64 / n;
    let cf_doh_fail = r.cell("Cloudflare", Doh).failed as f64 / n;
    // DNS fails an order of magnitude more often than DoT, which fails
    // more than DoH (conflicts hit 1.1.1.1 but not the DoH front).
    assert!(
        cf_dns_fail > 5.0 * cf_dot_fail,
        "{cf_dns_fail} vs {cf_dot_fail}"
    );
    assert!(cf_dot_fail >= cf_doh_fail, "{cf_dot_fail} vs {cf_doh_fail}");
    assert!(cf_dot_fail < 0.05, "paper: ~1.1%");
    // Quad9 DoH: double-digit Incorrect (Finding 2.4).
    let q9_doh_incorrect = r.cell("Quad9", Doh).incorrect as f64 / n;
    assert!((0.05..0.25).contains(&q9_doh_incorrect));
    // Self-built: everything ≥97%.
    for t in [Dns, Dot, Doh] {
        assert!(r.cell("Self-built", t).correct as f64 / n > 0.97);
    }
}

#[test]
fn finding_2_shape_censorship_and_interception() {
    let mut s = study();
    let zh = s.reach_cn().clone();
    use doe_vantage::reachability::TransportKind::*;
    let n = zh.clients_tested as f64;
    // Google DoH blocked almost entirely from CN; Cloudflare DoH fine.
    assert!(zh.cell("Google", Doh).failed as f64 / n > 0.99);
    assert!(zh.cell("Cloudflare", Doh).failed as f64 / n < 0.05);
    // CN filters hit Cloudflare's 53 and 853 roughly equally.
    let dns_fail = zh.cell("Cloudflare", Dns).failed as f64 / n;
    let dot_fail = zh.cell("Cloudflare", Dot).failed as f64 / n;
    assert!((dns_fail - dot_fail).abs() < 0.05);
    assert!(dns_fail > 0.05);

    // Interception: strict DoH fails closed, opportunistic DoT leaks.
    let global = s.reach_global().clone();
    assert!(!global.interceptions.is_empty());
    assert!(global.interceptions.iter().any(|i| i.port_853));
    // Ground truth: every interceptor's log actually saw plaintext from
    // its client (checked through the world's device logs).
    let seen: usize = s
        .world
        .intercept_logs
        .iter()
        .map(|(_, log)| log.lock().len())
        .sum();
    assert!(seen > 0, "devices decrypted nothing?");
}

#[test]
fn finding_3_shape_performance() {
    let mut s = study();
    let perf = s.performance().clone();
    assert!(perf.observations.len() > 20);
    // Reused connections: overheads are small (single digits to low tens
    // of ms), for both protocols.
    assert!(
        perf.global_dot.0.abs() < 40.0,
        "DoT mean {}ms",
        perf.global_dot.0
    );
    assert!(
        perf.global_doh.0.abs() < 40.0,
        "DoH mean {}ms",
        perf.global_doh.0
    );
    // Figure 10: the scatter hugs y=x.
    let near = perf
        .observations
        .iter()
        .filter(|o| o.dot_overhead().abs() <= 50.0 && o.doh_overhead().abs() <= 50.0)
        .count() as f64
        / perf.observations.len() as f64;
    assert!(near > 0.7, "only {near} of points near the diagonal");
}

#[test]
fn finding_4_shape_usage() {
    let mut s = study();
    let ds = s.traffic().clone();
    let labels = {
        let mut m = std::collections::BTreeMap::new();
        m.insert(
            worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
            "Cloudflare".to_string(),
        );
        m.insert(
            worldgen::providers::anchors::QUAD9_PRIMARY,
            "Quad9".to_string(),
        );
        m
    };
    let report = doe_traffic::analyze_dot(&ds.records, &labels);
    let cf = report.monthly.get("Cloudflare").unwrap();
    let jul = *cf.get("2018-07").unwrap() as f64;
    let dec = *cf.get("2018-12").unwrap() as f64;
    let growth = (dec - jul) / jul;
    assert!(
        (0.35..0.80).contains(&growth),
        "growth {growth} (paper: 56%)"
    );
    // Concentration + churn.
    assert!((0.30..0.58).contains(&report.top_share(5)));
    let (blocks, traffic) = report.short_lived(7);
    assert!(blocks > 0.85 && (0.15..0.40).contains(&traffic));
    // DoT is orders of magnitude below traditional DNS.
    assert!(ds.do53_monthly_estimate / dec > 100.0);
}
