//! Cross-crate integration: invariants that only hold when every layer
//! cooperates — ground-truth recovery, determinism, and the real SOCKS5
//! relay path.

use dnswire::{builder, Rcode, RecordType};
use doe_core::{Study, StudyConfig};
use doe_vantage::socks::Socks5Client;
use netsim::HostMeta;
use std::net::Ipv4Addr;
use std::sync::Arc;
use worldgen::{Affliction, World, WorldConfig};

#[test]
fn scanner_recovers_deployment_ground_truth() {
    let mut world = World::build(WorldConfig::test_scale(101));
    let space = doe_scanner::campaign::compact_space(&world);
    let date = world.config.scan_date(0);
    world.set_epoch(date);
    let summary = doe_scanner::campaign::scan_epoch(&mut world, &space, 0, 5);

    // Every *measured* open resolver corresponds to a ground-truth
    // deployment that is online and answers queries.
    let mut truth: std::collections::HashSet<Ipv4Addr> = world
        .deployment
        .dot_resolvers
        .iter()
        .filter(|r| r.online_at(date))
        .map(|r| r.addr)
        .collect();
    // The study's own self-built resolver is also a genuine open DoT
    // service inside the scan space.
    truth.insert(world.self_built.addr);
    for obs in summary.observations.rows().filter(|o| o.is_open_resolver()) {
        assert!(
            truth.contains(&obs.addr),
            "scanner hallucinated a resolver at {}",
            obs.addr
        );
    }
    // Recovery rate is essentially total (loss can cost a handful).
    let found = summary.open_resolvers;
    assert!(
        found * 100 >= truth.len() * 95,
        "found {found} of {} ground-truth resolvers",
        truth.len()
    );

    // Provider grouping reconstructs ground-truth provider keys.
    for obs in summary.observations.rows().filter(|o| o.is_open_resolver()) {
        let Some(deployed) = world
            .deployment
            .dot_resolvers
            .iter()
            .find(|r| r.addr == obs.addr)
        else {
            continue; // the self-built resolver has no deployment record
        };
        // DotProxy appliances present their own device CN; every other
        // behaviour presents the provider's name.
        if !matches!(
            deployed.behavior,
            worldgen::ResolverBehavior::DotProxy { .. }
        ) {
            assert_eq!(
                obs.provider,
                Some(deployed.provider.as_str()),
                "provider grouping diverged at {}",
                obs.addr
            );
        }
    }
}

#[test]
fn whole_study_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut study = Study::new(StudyConfig {
            epochs: 2,
            ..StudyConfig::quick(seed)
        });
        let table4 = doe_core::experiments::run(&mut study, "table4").expect("runs");
        let figure9 = doe_core::experiments::run(&mut study, "figure9").expect("runs");
        (table4.json.to_string(), figure9.json.to_string())
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed must reproduce byte-identical results");
    let c = run(78);
    assert_ne!(a, c, "different seeds should differ in detail");
}

#[test]
fn dns_through_a_real_socks5_tunnel() {
    // The measurement platform's relay architecture, end to end: a
    // measurement client in the US tunnels a clear-text DNS/TCP query
    // through a super proxy that exits via a residential node, and the
    // exit node's middleboxes apply (Figure 5).
    let mut world = World::build(WorldConfig::test_scale(55));
    let mc: Ipv4Addr = "198.51.100.60".parse().unwrap();
    let super_proxy: Ipv4Addr = "198.51.100.61".parse().unwrap();
    world
        .net
        .add_host(HostMeta::new(mc).country("US").asn(65_100));
    world.net.add_host(
        HostMeta::new(super_proxy)
            .country("US")
            .asn(65_100)
            .label("super proxy"),
    );

    // A clean exit and a port-53-filtered exit.
    let clean = world
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == Affliction::None)
        .unwrap()
        .clone();
    let filtered = world
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == Affliction::Port53Filter)
        .unwrap()
        .clone();

    for (exit, should_work) in [(clean, true), (filtered, false)] {
        world.net.bind_tcp(
            super_proxy,
            1080,
            Arc::new(doe_vantage::Socks5RelayService::new(vec![exit.ip])),
        );
        let target = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
        let tunnel = Socks5Client::tunnel(&mut world.net, mc, super_proxy, 1080, target, 53);
        match (tunnel, should_work) {
            (Ok(mut t), true) => {
                let q = builder::query(1, "sock1.probe.dnsmeasure.example", RecordType::A).unwrap();
                let framed = dnswire::frame_message(&q.encode().unwrap()).unwrap();
                let resp = t.exchange(&mut world.net, &framed).unwrap();
                let (msg, _) = dnswire::read_framed(&resp).expect("framed response");
                let msg = dnswire::Message::decode(msg).unwrap();
                assert_eq!(msg.rcode(), Rcode::NoError);
                match &msg.answers[0].rdata {
                    dnswire::RData::A(a) => assert_eq!(*a, world.probe.expected_a),
                    other => panic!("unexpected rdata {other:?}"),
                }
                t.close(&mut world.net);
            }
            (Err(e), false) => {
                assert!(e.contains("connect refused"), "filtered exit: {e}");
            }
            (Ok(_), false) => panic!("filtered exit should not reach port 53"),
            (Err(e), true) => panic!("clean exit failed: {e}"),
        }
    }
}

#[test]
fn interception_ground_truth_cross_check() {
    // The authoritative server's observed sources corroborate the
    // intercept logs: queries leaked through a MITM arrive at the
    // authoritative from the *resolver*, and the device log holds the
    // plaintext the client sent.
    let mut world = World::build(WorldConfig::test_scale(66));
    let victim = world
        .proxyrack
        .clients
        .iter()
        .find(|c| {
            matches!(
                &c.affliction,
                Affliction::Intercepted {
                    intercepts_853: true,
                    ..
                }
            )
        })
        .unwrap()
        .clone();
    let mut dot = doe_protocols::dot::DotClient::new(tlssim::TlsClientConfig::opportunistic(
        world.trust_store.clone(),
        world.epoch(),
    ));
    let q = builder::query(9, "leak1.probe.dnsmeasure.example", RecordType::A).unwrap();
    let reply = dot
        .query_once(
            &mut world.net,
            victim.ip,
            worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
            None,
            &q,
        )
        .expect("opportunistic DoT succeeds through the device");
    assert_eq!(reply.message.rcode(), Rcode::NoError);

    // The device saw framed DNS containing our query name.
    let ca_cn = match &victim.affliction {
        Affliction::Intercepted { ca_cn, .. } => ca_cn.clone(),
        _ => unreachable!(),
    };
    let log = world
        .intercept_logs
        .iter()
        .find(|(cn, _)| *cn == ca_cn)
        .map(|(_, l)| l)
        .unwrap();
    let entries = log.lock();
    assert!(entries.iter().any(|e| {
        e.client == victim.ip && String::from_utf8_lossy(&e.plaintext).contains("leak1")
    }));
    drop(entries);

    // And the authoritative server saw the *resolver*, not the client or
    // the device (the device proxies to the genuine resolver, which then
    // recurses).
    let auth_log = world.probe.auth_log.lock();
    let entry = auth_log
        .iter()
        .find(|e| e.qname.to_string().starts_with("leak1"))
        .expect("query recursed to the authoritative");
    assert_ne!(entry.observed_src, victim.ip);
}

#[test]
fn stub_resolver_profiles_disagree_exactly_where_rfc8310_says() {
    // Strict fails closed against bad certs; opportunistic proceeds; the
    // same resolver, the same moment — the profile is the only variable.
    let mut world = World::build(WorldConfig::test_scale(88));
    let date = world.config.scan_date(0);
    world.set_epoch(date);
    let bad = world
        .deployment
        .dot_resolvers
        .iter()
        .find(|r| {
            r.online_at(date)
                && matches!(r.cert, worldgen::CertProfile::SelfSigned)
                && matches!(r.behavior, worldgen::ResolverBehavior::Recursive)
        })
        .expect("a self-signed recursive resolver exists")
        .clone();
    let client = world.proxyrack.clients[0].clone();

    let mut strict = doe_protocols::dot::DotClient::new(tlssim::TlsClientConfig::strict(
        world.trust_store.clone(),
        date,
    ));
    let q = builder::query(3, "prof1.probe.dnsmeasure.example", RecordType::A).unwrap();
    assert!(strict
        .query_once(&mut world.net, client.ip, bad.addr, Some(&bad.provider), &q)
        .is_err());

    let mut opp = doe_protocols::dot::DotClient::new(tlssim::TlsClientConfig::opportunistic(
        world.trust_store.clone(),
        date,
    ));
    let reply = opp
        .query_once(&mut world.net, client.ip, bad.addr, None, &q)
        .expect("opportunistic proceeds");
    assert_eq!(reply.message.rcode(), Rcode::NoError);
    assert!(matches!(
        reply.transport.verify,
        Some(Err(tlssim::CertError::SelfSigned))
    ));
}
