//! End-to-end TLS over the simulated network: handshakes, profiles,
//! resumption, interception.

use netsim::{
    DstMatch, HostMeta, Network, NetworkConfig, PathDecision, PolicyRule, Service, SimDuration,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{
    CaHandle, CertError, DateStamp, KeyId, TlsClientConfig, TlsConnector, TlsError,
    TlsInterceptService, TlsServerConfig, TlsServerService, TrustStore, VerifyMode,
};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

const NOW: fn() -> DateStamp = || DateStamp::from_ymd(2019, 2, 1);

/// Upper-cases whatever it receives: an observable plaintext transform.
struct UpperService;
impl Service for UpperService {
    fn open_stream(&self, _peer: netsim::PeerInfo) -> Box<dyn netsim::StreamHandler> {
        struct H;
        impl netsim::StreamHandler for H {
            fn on_bytes(&mut self, _ctx: &mut netsim::ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
                data.to_ascii_uppercase()
            }
        }
        Box::new(H)
    }
}

struct World {
    net: Network,
    client: Ipv4Addr,
    server: Ipv4Addr,
    store: TrustStore,
}

fn build_world(seed: u64) -> World {
    let mut net = Network::new(NetworkConfig::default(), seed);
    let server = ip("203.0.113.10");
    let client = ip("198.51.100.20");
    net.add_host(
        HostMeta::new(server)
            .country("US")
            .asn(13335)
            .label("resolver"),
    );
    net.add_host(HostMeta::new(client).country("DE").asn(3320));

    let ca = CaHandle::new("Example Root CA", KeyId(1), NOW() + -365, 3650);
    let leaf = ca.issue(
        "dns.example.com",
        vec!["*.example.com".into()],
        KeyId(2),
        1,
        NOW() + -30,
        NOW() + 300,
    );
    let mut store = TrustStore::new();
    store.add(ca.authority());
    let tls = TlsServerService::new(
        TlsServerConfig::new(vec![leaf], KeyId(2)).with_alpn(&["dot", "h2"]),
        Arc::new(UpperService),
    );
    net.bind_tcp(server, 853, Arc::new(tls));
    World {
        net,
        client,
        server,
        store,
    }
}

#[test]
fn strict_handshake_and_exchange() {
    let mut w = build_world(1);
    let mut connector =
        TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()).with_alpn(&["dot"]));
    let mut stream = connector
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap();
    assert_eq!(stream.alpn(), Some("dot"));
    assert!(stream.verify_result().is_ok());
    assert!(!stream.resumed());
    let resp = stream.request(&mut w.net, b"hello dns").unwrap();
    assert_eq!(resp, b"HELLO DNS");
}

#[test]
fn resumption_skips_handshake_round_trip() {
    let mut w = build_world(2);
    let mut connector =
        TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()).with_alpn(&["dot"]));
    // Session 1: full handshake.
    let mut s1 = connector
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap();
    s1.request(&mut w.net, b"warmup").unwrap();
    let full_rts = s1.conn().round_trips();
    s1.close(&mut w.net);
    assert_eq!(connector.cached_sessions(), 1);

    // Session 2: resumed; hello piggybacks on the first request.
    let mut s2 = connector
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap();
    assert!(s2.resumed());
    let resp = s2.request(&mut w.net, b"resumed query").unwrap();
    assert_eq!(resp, b"RESUMED QUERY");
    let resumed_rts = s2.conn().round_trips();
    // Full (TLS 1.2 style): connect + hello + finished + request = 4.
    // Resumed: connect + request = 2.
    assert_eq!(full_rts, 4);
    assert_eq!(resumed_rts, 2);
}

#[test]
fn strict_fails_on_self_signed_opportunistic_proceeds() {
    let mut w = build_world(3);
    // Replace the server's chain with an appliance default certificate.
    let self_signed =
        CaHandle::self_signed("FGT60D", vec![], KeyId(9), 1, NOW() + -1, NOW() + 3650);
    let tls = TlsServerService::new(
        TlsServerConfig::new(vec![self_signed], KeyId(9)),
        Arc::new(UpperService),
    );
    w.net.bind_tcp(w.server, 853, Arc::new(tls));

    let mut strict = TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()));
    let err = strict
        .connect(&mut w.net, w.client, w.server, 853, None)
        .unwrap_err();
    assert_eq!(err, TlsError::Cert(CertError::SelfSigned));

    let mut opp = TlsConnector::new(TlsClientConfig::opportunistic(w.store.clone(), NOW()));
    let mut stream = opp
        .connect(&mut w.net, w.client, w.server, 853, None)
        .unwrap();
    assert_eq!(stream.verify_result(), &Err(CertError::SelfSigned));
    let resp = stream.request(&mut w.net, b"leaky").unwrap();
    assert_eq!(resp, b"LEAKY");
}

#[test]
fn alpn_mismatch_aborts() {
    let mut w = build_world(4);
    let mut connector =
        TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()).with_alpn(&["h3"]));
    let err = connector
        .connect(&mut w.net, w.client, w.server, 853, None)
        .unwrap_err();
    assert!(matches!(err, TlsError::HandshakeFailed(_)), "{err:?}");
}

#[test]
fn interception_breaks_strict_but_not_opportunistic() {
    let mut w = build_world(5);
    // Install an inline interceptor and divert the client's path to it.
    let device_ip = ip("10.99.0.1");
    w.net.add_host(
        HostMeta::new(device_ip)
            .country("DE")
            .asn(3320)
            .label("DPI box"),
    );
    let mitm_ca = CaHandle::new("SonicWall Firewall DPI-SSL", KeyId(100), NOW() + -100, 3650);
    let device = TlsInterceptService::inline_interceptor(mitm_ca, KeyId(101), NOW());
    let log = device.log();
    w.net.bind_tcp(device_ip, 853, Arc::new(device));
    w.net.policies_mut().push(
        PolicyRule::new("dpi-divert", PathDecision::DivertTo(device_ip))
            .to_dst(DstMatch::Ip(w.server)),
    );

    // Opportunistic DoT: lookup succeeds, verification says untrusted CA,
    // and the device saw the plaintext — Finding 2.3 end to end.
    let mut opp = TlsConnector::new(TlsClientConfig::opportunistic(w.store.clone(), NOW()));
    let mut stream = opp
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap();
    match stream.verify_result() {
        Err(CertError::UntrustedCa { ca_cn }) => {
            assert_eq!(ca_cn, "SonicWall Firewall DPI-SSL")
        }
        other => panic!("expected untrusted CA, got {other:?}"),
    }
    // The forged leaf keeps the original subject.
    assert_eq!(stream.server_chain()[0].subject_cn, "dns.example.com");
    let resp = stream.request(&mut w.net, b"secret query").unwrap();
    assert_eq!(resp, b"SECRET QUERY", "proxied through to the real server");
    let seen = log.lock();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].plaintext, b"secret query");
    assert_eq!(seen[0].original_dst, w.server);
    drop(seen);

    // Strict profile: certificate error, no plaintext leaks.
    let before = log.lock().len();
    let mut strict = TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()));
    let err = strict
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap_err();
    assert!(matches!(err, TlsError::Cert(CertError::UntrustedCa { .. })));
    assert_eq!(log.lock().len(), before, "strict client leaked nothing");
}

#[test]
fn fixed_cert_proxy_forwards_upstream() {
    let mut w = build_world(6);
    // A FortiGate-style DoT proxy on its own address, forwarding to the
    // genuine resolver.
    let proxy_ip = ip("10.88.0.1");
    w.net.add_host(
        HostMeta::new(proxy_ip)
            .country("US")
            .asn(64512)
            .label("FortiGate"),
    );
    let fg_ca = CaHandle::new("FortiGate CA", KeyId(200), NOW() + -10, 3650);
    let default_cert =
        CaHandle::self_signed("FGT60D", vec![], KeyId(201), 7, NOW() + -10, NOW() + 3650);
    let proxy = TlsInterceptService::fixed_cert_proxy(
        fg_ca,
        KeyId(201),
        vec![default_cert],
        (w.server, 853),
        NOW(),
    );
    w.net.bind_tcp(proxy_ip, 853, Arc::new(proxy));

    let mut opp = TlsConnector::new(TlsClientConfig::opportunistic(w.store.clone(), NOW()));
    let mut stream = opp
        .connect(&mut w.net, w.client, proxy_ip, 853, None)
        .unwrap();
    assert_eq!(stream.verify_result(), &Err(CertError::SelfSigned));
    let resp = stream.request(&mut w.net, b"via proxy").unwrap();
    assert_eq!(resp, b"VIA PROXY");
}

#[test]
fn handshake_costs_appear_in_latency() {
    let mut w = build_world(7);
    let mut connector = TlsConnector::new(TlsClientConfig::strict(w.store.clone(), NOW()));
    let stream = connector
        .connect(&mut w.net, w.client, w.server, 853, Some("dns.example.com"))
        .unwrap();
    // TCP (1 RTT) + TLS (1 RTT) + handshake CPU: must exceed two bare RTTs.
    let elapsed = stream.elapsed();
    assert!(
        elapsed >= SimDuration::from_millis(9),
        "handshake cost missing: {elapsed}"
    );
}

#[test]
fn no_verify_mode_collects_chain_without_judging() {
    let mut w = build_world(8);
    let mut scanner = TlsConnector::new(TlsClientConfig::no_verify(NOW()));
    assert_eq!(scanner.config().verify, VerifyMode::NoVerify);
    let stream = scanner
        .connect(&mut w.net, w.client, w.server, 853, None)
        .unwrap();
    assert_eq!(stream.server_chain()[0].subject_cn, "dns.example.com");
}
