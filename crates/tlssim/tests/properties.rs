//! Property-based tests for the simulated TLS primitives.

use proptest::prelude::*;
use tlssim::cert::{CaHandle, KeyId};
use tlssim::record::{decode_records, encode_records, open, seal, ContentType, Record, SessionKey};
use tlssim::{classify_chain, CertStatus, DateStamp, TrustStore};

proptest! {
    #[test]
    fn seal_open_round_trips(key in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let key = SessionKey(key);
        let sealed = seal(key, &data);
        prop_assert_eq!(open(key, &sealed).unwrap(), data);
    }

    #[test]
    fn tampering_any_byte_detected(
        key in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<(usize, u8)>(),
    ) {
        let key = SessionKey(key);
        let mut sealed = seal(key, &data);
        let idx = flip.0 % sealed.len();
        let bit = flip.1 | 1; // never a zero XOR
        sealed[idx] ^= bit;
        prop_assert!(open(key, &sealed).is_err());
    }

    #[test]
    fn wrong_key_rejected(k1 in any::<u64>(), k2 in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(k1 != k2);
        let sealed = seal(SessionKey(k1), &data);
        prop_assert!(open(SessionKey(k2), &sealed).is_err());
    }

    #[test]
    fn record_flights_round_trip(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..5)) {
        let records: Vec<Record> = payloads
            .iter()
            .map(|p| Record { ctype: ContentType::ApplicationData, payload: p.clone() })
            .collect();
        let encoded = encode_records(&records);
        let decoded = decode_records(&encoded).unwrap();
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_records(&bytes);
    }

    #[test]
    fn issued_certs_always_verify_and_tampered_never_do(
        cn in proptest::string::string_regex("[a-z]{1,10}\\.[a-z]{2,5}").expect("regex"),
        key_id in 1u64..1_000_000,
        serial in any::<u64>(),
    ) {
        let now = DateStamp::from_ymd(2019, 2, 1);
        let ca = CaHandle::new("Prop CA", KeyId(7), now + -100, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        let cert = ca.issue(&cn, vec![], KeyId(key_id), serial, now + -1, now + 90);
        prop_assert_eq!(classify_chain(std::slice::from_ref(&cert), &store, now), CertStatus::Valid);
        // Any field change breaks the signature.
        let mut tampered = cert;
        tampered.serial = tampered.serial.wrapping_add(1);
        prop_assert_ne!(classify_chain(&[tampered], &store, now), CertStatus::Valid);
    }

    #[test]
    fn resign_preserves_subject_changes_issuer(
        cn in proptest::string::string_regex("[a-z]{1,10}\\.[a-z]{2,5}").expect("regex"),
    ) {
        let now = DateStamp::from_ymd(2019, 2, 1);
        let real = CaHandle::new("Real CA", KeyId(1), now + -100, 3650);
        let mitm = CaHandle::new("MITM CA", KeyId(2), now + -100, 3650);
        let orig = real.issue(&cn, vec![format!("*.{cn}")], KeyId(3), 9, now + -1, now + 90);
        let forged = mitm.resign(&orig);
        prop_assert_eq!(&forged.subject_cn, &orig.subject_cn);
        prop_assert_eq!(&forged.san, &orig.san);
        prop_assert_eq!(forged.not_before, orig.not_before);
        prop_assert_eq!(forged.not_after, orig.not_after);
        prop_assert!(forged.signature_valid_under(mitm.key()));
        prop_assert!(!forged.signature_valid_under(real.key()));
    }

    #[test]
    fn date_round_trips(days in -30_000i64..60_000) {
        let d = DateStamp::from_ymd(1970, 1, 1) + days;
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(DateStamp::from_ymd(y, m, dd), d);
    }
}
