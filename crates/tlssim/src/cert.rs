//! Certificates, keys, CAs and trust stores.
//!
//! Cryptography is *simulated*: a key pair is an opaque [`KeyId`]; a
//! signature is valid iff it names the issuer's key and matches a
//! deterministic digest of the signed fields. This preserves everything the
//! study measures — who signed what, chain structure, trust anchoring,
//! expiry — without real asymmetric crypto.

use crate::date::DateStamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identity of a simulated key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyId(pub u64);

/// FNV-1a, the deterministic digest used for simulated signatures.
///
/// Public so sibling protocol simulations (DoQ, DNSCrypt) can derive
/// domain-separated secrets from the same primitive.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A simulated signature: which key signed, over which digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// The signing key.
    pub signer: KeyId,
    /// Digest of the to-be-signed bytes at signing time.
    pub digest: u64,
}

/// An X.509-like certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject common name (the paper groups DoT providers by this).
    pub subject_cn: String,
    /// Subject alternative names (hostnames the cert is valid for).
    pub san: Vec<String>,
    /// Issuer common name.
    pub issuer_cn: String,
    /// Serial number.
    pub serial: u64,
    /// Validity start.
    pub not_before: DateStamp,
    /// Validity end.
    pub not_after: DateStamp,
    /// The subject's public key.
    pub key: KeyId,
    /// Issuer signature over the fields above.
    pub signature: Signature,
}

impl Certificate {
    /// Digest of the to-be-signed fields.
    pub fn tbs_digest(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.subject_cn.as_bytes());
        buf.push(0);
        for san in &self.san {
            buf.extend_from_slice(san.as_bytes());
            buf.push(0);
        }
        buf.extend_from_slice(self.issuer_cn.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&self.serial.to_be_bytes());
        buf.extend_from_slice(&self.not_before.days().to_be_bytes());
        buf.extend_from_slice(&self.not_after.days().to_be_bytes());
        buf.extend_from_slice(&self.key.0.to_be_bytes());
        fnv1a(&buf)
    }

    /// Whether the embedded signature matches the current fields and was
    /// made with `issuer_key`.
    pub fn signature_valid_under(&self, issuer_key: KeyId) -> bool {
        self.signature.signer == issuer_key && self.signature.digest == self.tbs_digest()
    }

    /// Whether the certificate is self-signed (signed by its own key).
    pub fn is_self_signed(&self) -> bool {
        self.signature_valid_under(self.key)
    }

    /// Whether `hostname` matches the CN or a SAN (supports a single
    /// leading `*.` wildcard label).
    pub fn matches_name(&self, hostname: &str) -> bool {
        let host = hostname.trim_end_matches('.').to_ascii_lowercase();
        std::iter::once(self.subject_cn.as_str())
            .chain(self.san.iter().map(String::as_str))
            .any(|pattern| name_matches(&pattern.to_ascii_lowercase(), &host))
    }

    /// Whether `date` is inside the validity window.
    pub fn valid_at(&self, date: DateStamp) -> bool {
        self.not_before <= date && date <= self.not_after
    }
}

fn name_matches(pattern: &str, host: &str) -> bool {
    let pattern = pattern.trim_end_matches('.');
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match host.split_once('.') {
            Some((first, rest)) => !first.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern == host
    }
}

/// A certificate authority: a named key that can issue certificates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertificateAuthority {
    /// CA common name (e.g. `Let's Encrypt Authority X3`,
    /// `FortiGate CA` for the interception devices of Finding 1.2).
    pub cn: String,
    /// CA key pair.
    pub key: KeyId,
    /// The CA's own (self-signed) certificate.
    pub root: Certificate,
}

/// Handle to a CA able to issue leaf certificates.
#[derive(Debug, Clone)]
pub struct CaHandle {
    ca: CertificateAuthority,
}

impl CaHandle {
    /// Create a CA with the given name and key.
    pub fn new(cn: &str, key: KeyId, valid_from: DateStamp, valid_days: i64) -> Self {
        let mut root = Certificate {
            subject_cn: cn.to_string(),
            san: Vec::new(),
            issuer_cn: cn.to_string(),
            serial: key.0,
            not_before: valid_from,
            not_after: valid_from + valid_days,
            key,
            signature: Signature {
                signer: key,
                digest: 0,
            },
        };
        root.signature.digest = root.tbs_digest();
        CaHandle {
            ca: CertificateAuthority {
                cn: cn.to_string(),
                key,
                root,
            },
        }
    }

    /// The CA's metadata.
    pub fn authority(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// The CA common name.
    pub fn cn(&self) -> &str {
        &self.ca.cn
    }

    /// The CA key.
    pub fn key(&self) -> KeyId {
        self.ca.key
    }

    /// The self-signed root certificate.
    pub fn root_cert(&self) -> &Certificate {
        &self.ca.root
    }

    /// Issue a leaf certificate.
    pub fn issue(
        &self,
        subject_cn: &str,
        san: Vec<String>,
        subject_key: KeyId,
        serial: u64,
        not_before: DateStamp,
        not_after: DateStamp,
    ) -> Certificate {
        let mut cert = Certificate {
            subject_cn: subject_cn.to_string(),
            san,
            issuer_cn: self.ca.cn.clone(),
            serial,
            not_before,
            not_after,
            key: subject_key,
            signature: Signature {
                signer: self.ca.key,
                digest: 0,
            },
        };
        cert.signature.digest = cert.tbs_digest();
        cert
    }

    /// Re-sign someone else's leaf with this CA, keeping every other field
    /// — exactly what the study's interception devices do (Table 6: "all
    /// resolver certificates are re-signed by an untrusted CA, while other
    /// fields remain unchanged").
    pub fn resign(&self, original: &Certificate) -> Certificate {
        let mut cert = original.clone();
        cert.issuer_cn = self.ca.cn.clone();
        cert.signature = Signature {
            signer: self.ca.key,
            digest: 0,
        };
        cert.signature.digest = cert.tbs_digest();
        cert
    }

    /// Create a self-signed certificate (no CA involved) — the default
    /// certificates of firewall appliances and hobbyist resolvers.
    pub fn self_signed(
        subject_cn: &str,
        san: Vec<String>,
        key: KeyId,
        serial: u64,
        not_before: DateStamp,
        not_after: DateStamp,
    ) -> Certificate {
        let mut cert = Certificate {
            subject_cn: subject_cn.to_string(),
            san,
            issuer_cn: subject_cn.to_string(),
            serial,
            not_before,
            not_after,
            key,
            signature: Signature {
                signer: key,
                digest: 0,
            },
        };
        cert.signature.digest = cert.tbs_digest();
        cert
    }
}

/// The client-side trust anchor list (Mozilla CA list analog; the paper
/// verified against the CentOS 7.6 system store).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustStore {
    anchors: HashMap<KeyId, String>,
}

impl TrustStore {
    /// An empty store (trusts nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trusted CA.
    pub fn add(&mut self, ca: &CertificateAuthority) {
        self.anchors.insert(ca.key, ca.cn.clone());
    }

    /// Add by raw key (for tests).
    pub fn add_key(&mut self, key: KeyId, cn: &str) {
        self.anchors.insert(key, cn.to_string());
    }

    /// Whether a key is a trust anchor.
    pub fn is_trusted(&self, key: KeyId) -> bool {
        self.anchors.contains_key(&key)
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if the store trusts nothing.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: i64) -> DateStamp {
        DateStamp::from_ymd(2019, 1, 1) + n
    }

    #[test]
    fn issued_cert_verifies_under_issuer_key() {
        let ca = CaHandle::new("Test CA", KeyId(1), day(0), 3650);
        let cert = ca.issue("dns.example.com", vec![], KeyId(2), 7, day(0), day(90));
        assert!(cert.signature_valid_under(ca.key()));
        assert!(!cert.signature_valid_under(KeyId(99)));
        assert!(!cert.is_self_signed());
    }

    #[test]
    fn tampered_cert_fails_signature() {
        let ca = CaHandle::new("Test CA", KeyId(1), day(0), 3650);
        let mut cert = ca.issue("dns.example.com", vec![], KeyId(2), 7, day(0), day(90));
        cert.subject_cn = "evil.example.com".to_string();
        assert!(!cert.signature_valid_under(ca.key()));
    }

    #[test]
    fn self_signed_detected() {
        let cert = CaHandle::self_signed("FGT60D", vec![], KeyId(5), 1, day(0), day(3650));
        assert!(cert.is_self_signed());
    }

    #[test]
    fn resign_keeps_fields_changes_issuer() {
        let real = CaHandle::new("DigiCert", KeyId(1), day(0), 3650);
        let mitm = CaHandle::new("SonicWall Firewall DPI-SSL", KeyId(66), day(0), 3650);
        let orig = real.issue(
            "cloudflare-dns.com",
            vec!["*.cloudflare-dns.com".into(), "one.one.one.one".into()],
            KeyId(2),
            42,
            day(0),
            day(365),
        );
        let forged = mitm.resign(&orig);
        assert_eq!(forged.subject_cn, orig.subject_cn);
        assert_eq!(forged.san, orig.san);
        assert_eq!(forged.serial, orig.serial);
        assert_eq!(forged.issuer_cn, "SonicWall Firewall DPI-SSL");
        assert!(forged.signature_valid_under(mitm.key()));
        assert!(!forged.signature_valid_under(real.key()));
    }

    #[test]
    fn name_matching_with_wildcards() {
        let ca = CaHandle::new("CA", KeyId(1), day(0), 3650);
        let cert = ca.issue(
            "cloudflare-dns.com",
            vec!["*.cloudflare-dns.com".into(), "one.one.one.one".into()],
            KeyId(2),
            1,
            day(0),
            day(365),
        );
        assert!(cert.matches_name("cloudflare-dns.com"));
        assert!(cert.matches_name("mozilla.cloudflare-dns.com"));
        assert!(cert.matches_name("MOZILLA.CLOUDFLARE-DNS.COM."));
        assert!(cert.matches_name("one.one.one.one"));
        assert!(
            !cert.matches_name("a.b.cloudflare-dns.com"),
            "wildcard is one label"
        );
        assert!(!cert.matches_name("cloudflare-dns.org"));
    }

    #[test]
    fn validity_window() {
        let ca = CaHandle::new("CA", KeyId(1), day(0), 3650);
        let cert = ca.issue("x", vec![], KeyId(2), 1, day(10), day(20));
        assert!(!cert.valid_at(day(9)));
        assert!(cert.valid_at(day(10)));
        assert!(cert.valid_at(day(20)));
        assert!(!cert.valid_at(day(21)));
    }

    #[test]
    fn trust_store_membership() {
        let ca = CaHandle::new("Root", KeyId(1), day(0), 3650);
        let mut store = TrustStore::new();
        assert!(store.is_empty());
        store.add(ca.authority());
        assert!(store.is_trusted(ca.key()));
        assert!(!store.is_trusted(KeyId(2)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
