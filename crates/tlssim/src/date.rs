//! Calendar dates for certificate validity windows.
//!
//! The simulation's virtual clock ([`netsim::SimTime`]) is microseconds from
//! an epoch; worldgen anchors that epoch to a civil date (the paper's first
//! scan, 2019-02-01) and converts through this type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A civil date, stored as days since 1970-01-01 (may be negative).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DateStamp(i64);

impl DateStamp {
    /// Construct from a civil year/month/day (proleptic Gregorian).
    ///
    /// Uses the standard "days from civil" algorithm; valid for the whole
    /// range the study touches.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        assert!((1..=12).contains(&m), "month {m}");
        assert!((1..=31).contains(&d), "day {d}");
        let y = y as i64 - if m <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (m as i64 + 9) % 12; // [0, 11], Mar = 0
        let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        DateStamp(era * 146_097 + doe - 719_468)
    }

    /// Days since 1970-01-01.
    pub fn days(self) -> i64 {
        self.0
    }

    /// Back to civil year/month/day.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
    }

    /// The first day of this date's month (used for monthly bucketing of
    /// traffic series).
    pub fn month_start(self) -> DateStamp {
        let (y, m, _) = self.to_ymd();
        DateStamp::from_ymd(y, m, 1)
    }

    /// `YYYY-MM` label for report rows.
    pub fn month_label(self) -> String {
        let (y, m, _) = self.to_ymd();
        format!("{y:04}-{m:02}")
    }

    /// Step forward `n` whole months (clamping the day to 1).
    pub fn add_months(self, n: u32) -> DateStamp {
        let (y, m, _) = self.to_ymd();
        let total = (y as i64) * 12 + (m as i64 - 1) + n as i64;
        let ny = (total / 12) as i32;
        let nm = (total % 12) as u32 + 1;
        DateStamp::from_ymd(ny, nm, 1)
    }
}

impl Add<i64> for DateStamp {
    type Output = DateStamp;
    fn add(self, days: i64) -> DateStamp {
        DateStamp(self.0 + days)
    }
}

impl Sub<DateStamp> for DateStamp {
    type Output = i64;
    fn sub(self, other: DateStamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for DateStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_epoch_is_zero() {
        assert_eq!(DateStamp::from_ymd(1970, 1, 1).days(), 0);
    }

    #[test]
    fn known_dates() {
        // The paper's scan window.
        let feb1 = DateStamp::from_ymd(2019, 2, 1);
        let may1 = DateStamp::from_ymd(2019, 5, 1);
        assert_eq!(may1 - feb1, 89); // 28 + 31 + 30
        assert_eq!(feb1.to_string(), "2019-02-01");
    }

    #[test]
    fn round_trip_every_day_of_2019() {
        let start = DateStamp::from_ymd(2019, 1, 1);
        for i in 0..365 {
            let d = start + i;
            let (y, m, day) = d.to_ymd();
            assert_eq!(DateStamp::from_ymd(y, m, day), d);
        }
    }

    #[test]
    fn leap_year_handled() {
        let feb28 = DateStamp::from_ymd(2020, 2, 28);
        let mar1 = DateStamp::from_ymd(2020, 3, 1);
        assert_eq!(mar1 - feb28, 2, "2020 is a leap year");
    }

    #[test]
    fn month_utilities() {
        let d = DateStamp::from_ymd(2018, 7, 19);
        assert_eq!(d.month_start(), DateStamp::from_ymd(2018, 7, 1));
        assert_eq!(d.month_label(), "2018-07");
        assert_eq!(d.add_months(6), DateStamp::from_ymd(2019, 1, 1));
        assert_eq!(d.add_months(18), DateStamp::from_ymd(2020, 1, 1));
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = DateStamp::from_ymd(2018, 7, 1);
        let b = DateStamp::from_ymd(2019, 1, 1);
        assert!(a < b);
        assert_eq!(b - a, 184);
        assert_eq!(a + 184, b);
    }
}
