//! TLS record framing and the simulated AEAD.
//!
//! Records are `[type:u8][len:u16][payload]`. Application-data payloads are
//! "encrypted" with a keystream derived from the session key and sealed
//! with an FNV integrity tag. This is emphatically **not** cryptography —
//! the study never attacks the cipher — but it gives the simulation the two
//! properties the measurements rely on: a party without the session key
//! cannot read or forge application data, and tampering is detected.

use crate::cert::fnv1a;
use crate::error::TlsError;

/// Record content types (mirroring TLS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// Handshake messages (clear in this simulation).
    Handshake,
    /// Encrypted application data.
    ApplicationData,
    /// Fatal alerts.
    Alert,
}

impl ContentType {
    fn to_u8(self) -> u8 {
        match self {
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// One TLS record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub ctype: ContentType,
    /// Raw payload (ciphertext for application data).
    pub payload: Vec<u8>,
}

impl Record {
    /// Serialise to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.payload.len());
        out.push(self.ctype.to_u8());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Parse every record in a flight of bytes.
pub fn decode_records(mut data: &[u8]) -> Result<Vec<Record>, TlsError> {
    let mut records = Vec::new();
    while !data.is_empty() {
        if data.len() < 3 {
            return Err(TlsError::ProtocolViolation(
                "truncated record header".into(),
            ));
        }
        let ctype = ContentType::from_u8(data[0])
            .ok_or_else(|| TlsError::ProtocolViolation(format!("content type {}", data[0])))?;
        let len = u16::from_be_bytes([data[1], data[2]]) as usize;
        let payload = data
            .get(3..3 + len)
            .ok_or_else(|| TlsError::ProtocolViolation("truncated record body".into()))?;
        records.push(Record {
            ctype,
            payload: payload.to_vec(),
        });
        data = &data[3 + len..];
    }
    Ok(records)
}

/// Encode a flight of records.
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    out
}

/// The simulated AEAD session key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKey(pub u64);

impl SessionKey {
    /// Derive the full-handshake session key.
    pub fn derive(client_random: u64, server_random: u64, server_key: u64) -> Self {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(&client_random.to_be_bytes());
        buf.extend_from_slice(&server_random.to_be_bytes());
        buf.extend_from_slice(&server_key.to_be_bytes());
        SessionKey(fnv1a(&buf))
    }

    /// Derive a resumed-session key from the previous key and a fresh
    /// client random.
    pub fn derive_resumed(old: SessionKey, client_random: u64) -> Self {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&old.0.to_be_bytes());
        buf.extend_from_slice(&client_random.to_be_bytes());
        SessionKey(fnv1a(&buf))
    }
}

fn keystream_byte(key: u64, i: usize) -> u8 {
    // xorshift* over (key, block index); cheap and deterministic.
    let mut x = key ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u8
}

/// Seal plaintext: keystream XOR plus an 8-byte integrity tag.
pub fn seal(key: SessionKey, plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + 8);
    for (i, &b) in plaintext.iter().enumerate() {
        out.push(b ^ keystream_byte(key.0, i));
    }
    let mut tagged = Vec::with_capacity(plaintext.len() + 8);
    tagged.extend_from_slice(&key.0.to_be_bytes());
    tagged.extend_from_slice(plaintext);
    out.extend_from_slice(&fnv1a(&tagged).to_be_bytes());
    out
}

/// Open ciphertext sealed with [`seal`]; fails on key mismatch or
/// tampering.
pub fn open(key: SessionKey, ciphertext: &[u8]) -> Result<Vec<u8>, TlsError> {
    if ciphertext.len() < 8 {
        return Err(TlsError::BadRecordMac);
    }
    let (body, tag) = ciphertext.split_at(ciphertext.len() - 8);
    let plaintext: Vec<u8> = body
        .iter()
        .enumerate()
        .map(|(i, &b)| b ^ keystream_byte(key.0, i))
        .collect();
    let mut tagged = Vec::with_capacity(plaintext.len() + 8);
    tagged.extend_from_slice(&key.0.to_be_bytes());
    tagged.extend_from_slice(&plaintext);
    if fnv1a(&tagged).to_be_bytes() != tag {
        return Err(TlsError::BadRecordMac);
    }
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let flight = encode_records(&[
            Record {
                ctype: ContentType::Handshake,
                payload: b"hello".to_vec(),
            },
            Record {
                ctype: ContentType::ApplicationData,
                payload: vec![1, 2, 3],
            },
        ]);
        let records = decode_records(&flight).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ctype, ContentType::Handshake);
        assert_eq!(records[1].payload, vec![1, 2, 3]);
    }

    #[test]
    fn truncated_record_rejected() {
        assert!(decode_records(&[22, 0]).is_err());
        assert!(decode_records(&[22, 0, 5, 1, 2]).is_err());
        assert!(decode_records(&[99, 0, 0]).is_err());
    }

    #[test]
    fn empty_flight_is_empty() {
        assert_eq!(decode_records(&[]).unwrap(), vec![]);
    }

    #[test]
    fn seal_open_round_trip() {
        let key = SessionKey::derive(1, 2, 3);
        let ct = seal(key, b"dns query bytes");
        assert_ne!(&ct[..15], b"dns query bytes", "must not be plaintext");
        assert_eq!(open(key, &ct).unwrap(), b"dns query bytes");
    }

    #[test]
    fn wrong_key_fails() {
        let k1 = SessionKey::derive(1, 2, 3);
        let k2 = SessionKey::derive(1, 2, 4);
        let ct = seal(k1, b"secret");
        assert_eq!(open(k2, &ct), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn tampering_detected() {
        let key = SessionKey::derive(7, 8, 9);
        let mut ct = seal(key, b"integrity matters");
        ct[3] ^= 0xff;
        assert_eq!(open(key, &ct), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn short_ciphertext_rejected() {
        let key = SessionKey::derive(1, 1, 1);
        assert_eq!(open(key, &[1, 2, 3]), Err(TlsError::BadRecordMac));
    }

    #[test]
    fn key_derivation_is_deterministic_and_sensitive() {
        assert_eq!(SessionKey::derive(1, 2, 3), SessionKey::derive(1, 2, 3));
        assert_ne!(SessionKey::derive(1, 2, 3), SessionKey::derive(2, 1, 3));
        let old = SessionKey::derive(1, 2, 3);
        assert_ne!(SessionKey::derive_resumed(old, 5), old);
        assert_eq!(
            SessionKey::derive_resumed(old, 5),
            SessionKey::derive_resumed(old, 5)
        );
    }

    #[test]
    fn empty_plaintext_seals() {
        let key = SessionKey::derive(4, 5, 6);
        let ct = seal(key, b"");
        assert_eq!(ct.len(), 8);
        assert_eq!(open(key, &ct).unwrap(), b"");
    }
}
