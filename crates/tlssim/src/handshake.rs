//! Handshake messages and timing constants.

use crate::cert::Certificate;
use crate::error::TlsError;
use netsim::SimDuration;
use serde::{Deserialize, Serialize};

/// Client → server opening flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientHello {
    /// Server name indication (hostname), if the client knows one.
    pub sni: Option<String>,
    /// Offered ALPN protocols in preference order (`"dot"`, `"h2"`, ...).
    pub alpn: Vec<String>,
    /// Client nonce.
    pub client_random: u64,
    /// Resumption ticket from a previous session, if any.
    pub ticket: Option<u64>,
}

/// Server → client reply flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerHello {
    /// Server nonce.
    pub server_random: u64,
    /// Chosen ALPN protocol.
    pub alpn: Option<String>,
    /// Presented certificate chain (empty on resumption).
    pub chain: Vec<Certificate>,
    /// Fresh resumption ticket.
    pub ticket: Option<u64>,
    /// True if the server accepted the client's resumption ticket.
    pub resumed: bool,
}

/// Any handshake-record payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandshakeMsg {
    /// Opening flight.
    ClientHello(ClientHello),
    /// Reply flight.
    ServerHello(ServerHello),
    /// Fatal failure, with a reason string (stands in for TLS alerts).
    Alert(String),
    /// Handshake completion exchange — the extra round trip a TLS 1.2
    /// handshake costs over TLS 1.3 (the deployed reality of 2019, which
    /// Table 7's no-reuse overheads reflect).
    Finished,
}

impl HandshakeMsg {
    /// Serialise to a handshake-record payload.
    pub fn encode(&self) -> Vec<u8> {
        // Serialising an owned enum of plain data cannot fail; an empty
        // flight (which the peer rejects as a decode error) beats an abort
        // on a protocol path.
        serde_json::to_vec(self).unwrap_or_default()
    }

    /// Parse from a handshake-record payload.
    pub fn decode(data: &[u8]) -> Result<Self, TlsError> {
        serde_json::from_slice(data)
            .map_err(|e| TlsError::ProtocolViolation(format!("bad handshake message: {e}")))
    }
}

/// CPU-time costs charged for cryptographic operations.
///
/// These are what make encrypted DNS a few milliseconds slower than
/// clear-text DNS *with connection reuse* (Finding 3.1: average overheads
/// of 5–9 ms for DoT, 6–8 ms for DoH) — the paths are identical, so the
/// residual overhead is handshake amortisation plus per-record work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlsCosts {
    /// One-off asymmetric work at full handshake (key exchange + cert
    /// verification), charged to the connecting client.
    pub handshake: SimDuration,
    /// Work at resumption (ticket decryption only).
    pub resumption: SimDuration,
    /// Symmetric work per application-data exchange.
    pub per_exchange: SimDuration,
}

impl Default for TlsCosts {
    fn default() -> Self {
        TlsCosts {
            handshake: SimDuration::from_millis(9),
            resumption: SimDuration::from_millis(2),
            per_exchange: SimDuration::from_millis(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CaHandle, KeyId};
    use crate::date::DateStamp;

    #[test]
    fn client_hello_round_trip() {
        let ch = HandshakeMsg::ClientHello(ClientHello {
            sni: Some("cloudflare-dns.com".into()),
            alpn: vec!["dot".into()],
            client_random: 0xdead_beef,
            ticket: None,
        });
        let bytes = ch.encode();
        assert_eq!(HandshakeMsg::decode(&bytes).unwrap(), ch);
    }

    #[test]
    fn server_hello_with_chain_round_trips() {
        let ca = CaHandle::new("CA", KeyId(1), DateStamp::from_ymd(2019, 1, 1), 3650);
        let leaf = ca.issue(
            "dns.quad9.net",
            vec![],
            KeyId(2),
            1,
            DateStamp::from_ymd(2019, 1, 1),
            DateStamp::from_ymd(2020, 1, 1),
        );
        let sh = HandshakeMsg::ServerHello(ServerHello {
            server_random: 77,
            alpn: Some("dot".into()),
            chain: vec![leaf],
            ticket: Some(123),
            resumed: false,
        });
        let bytes = sh.encode();
        assert_eq!(HandshakeMsg::decode(&bytes).unwrap(), sh);
    }

    #[test]
    fn garbage_rejected() {
        assert!(HandshakeMsg::decode(b"not json").is_err());
    }

    #[test]
    fn default_costs_are_modest() {
        let c = TlsCosts::default();
        assert!(c.handshake > c.resumption);
        assert!(c.per_exchange < SimDuration::from_millis(10));
    }
}
