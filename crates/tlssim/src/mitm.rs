//! TLS interception middleboxes.
//!
//! Two real-world device families from the study are modelled by one
//! service:
//!
//! * **Inline interceptors** (Finding 2.3, Table 6): path policies divert a
//!   client's connection to the device, which terminates TLS with a
//!   *re-signed copy of the genuine resolver's certificate* (untrusted CA,
//!   other fields unchanged) and proxies the plaintext to the original
//!   destination. Opportunistic DoT clients proceed and leak their
//!   queries; Strict DoH clients abort.
//! * **DoT proxies with appliance default certificates** (Finding 1.2's 47
//!   FortiGate resolvers): devices listening on their own port 853 with a
//!   self-signed default certificate, forwarding to a configured upstream
//!   resolver.

use crate::cert::{CaHandle, Certificate, KeyId};
use crate::client::{TlsClientConfig, TlsConnector, TlsStream};
use crate::date::DateStamp;
use crate::handshake::{HandshakeMsg, TlsCosts};
use crate::record::{decode_records, encode_records, open, seal, ContentType, Record, SessionKey};
use crate::server::{answer_client_hello, TlsServerConfig};
use netsim::{PeerInfo, Service, ServiceCtx, StreamHandler};
use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One plaintext exchange the device observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterceptedExchange {
    /// The spied-on client.
    pub client: Ipv4Addr,
    /// Where the client believed it was connecting.
    pub original_dst: Ipv4Addr,
    /// Dialled port.
    pub port: u16,
    /// The client's decrypted request bytes.
    pub plaintext: Vec<u8>,
}

/// Shared log of everything a device decrypted — ground truth for
/// "queries from clients are visible to the interceptors".
pub type InterceptLog = Arc<Mutex<Vec<InterceptedExchange>>>;

/// How the device obtains the certificate it presents.
#[derive(Debug, Clone)]
pub enum PresentStrategy {
    /// Fetch the genuine upstream chain and re-sign the leaf with our CA
    /// (inline DPI interceptors).
    ResignUpstream,
    /// Always present this fixed chain (appliance default certificates).
    Fixed(Vec<Certificate>),
}

/// A TLS-intercepting [`Service`].
pub struct TlsInterceptService {
    ca: CaHandle,
    device_key: KeyId,
    strategy: PresentStrategy,
    /// Where to forward; `None` forwards to the client's original
    /// destination (inline mode).
    upstream_override: Option<(Ipv4Addr, u16)>,
    log: InterceptLog,
    now: DateStamp,
    costs: TlsCosts,
}

impl TlsInterceptService {
    /// An inline interceptor re-signing with `ca`.
    pub fn inline_interceptor(ca: CaHandle, device_key: KeyId, now: DateStamp) -> Self {
        TlsInterceptService {
            ca,
            device_key,
            strategy: PresentStrategy::ResignUpstream,
            upstream_override: None,
            log: Arc::new(Mutex::new(Vec::new())),
            now,
            costs: TlsCosts::default(),
        }
    }

    /// A DoT proxy presenting a fixed (typically self-signed) chain and
    /// forwarding to `upstream`.
    pub fn fixed_cert_proxy(
        ca: CaHandle,
        device_key: KeyId,
        chain: Vec<Certificate>,
        upstream: (Ipv4Addr, u16),
        now: DateStamp,
    ) -> Self {
        TlsInterceptService {
            ca,
            device_key,
            strategy: PresentStrategy::Fixed(chain),
            upstream_override: Some(upstream),
            log: Arc::new(Mutex::new(Vec::new())),
            now,
            costs: TlsCosts::default(),
        }
    }

    /// Handle to the decrypted-traffic log.
    pub fn log(&self) -> InterceptLog {
        Arc::clone(&self.log)
    }

    /// The device's CA common name (what shows up in Table 6).
    pub fn ca_cn(&self) -> &str {
        self.ca.cn()
    }
}

enum ProxyState {
    AwaitingHello,
    Established {
        client_key: SessionKey,
        upstream: Box<TlsStream>,
    },
    Dead,
}

struct InterceptHandler {
    ca: CaHandle,
    device_key: KeyId,
    strategy: PresentStrategy,
    upstream_override: Option<(Ipv4Addr, u16)>,
    log: InterceptLog,
    peer: PeerInfo,
    now: DateStamp,
    costs: TlsCosts,
    state: ProxyState,
}

impl InterceptHandler {
    fn alert(&mut self, reason: &str) -> Vec<u8> {
        self.state = ProxyState::Dead;
        encode_records(&[Record {
            ctype: ContentType::Alert,
            payload: HandshakeMsg::Alert(reason.to_string()).encode(),
        }])
    }

    fn upstream_target(&self) -> (Ipv4Addr, u16) {
        self.upstream_override
            .unwrap_or((self.peer.original_dst, self.peer.original_port))
    }

    /// Dial the genuine server as a TLS client (no verification — the
    /// device doesn't care) and return the session plus its chain.
    fn dial_upstream(
        &self,
        ctx: &mut ServiceCtx<'_>,
        sni: Option<&str>,
        alpn: &[String],
    ) -> Result<TlsStream, ()> {
        let (ip, port) = self.upstream_target();
        let local = ctx.local_addr();
        let mut config = TlsClientConfig::no_verify(self.now);
        config.alpn = alpn.to_vec();
        config.enable_resumption = false;
        config.costs = self.costs;
        let mut connector = TlsConnector::new(config);
        match connector.connect(ctx.network(), local, ip, port, sni) {
            Ok(mut stream) => {
                // The upstream handshake time is on the client's critical
                // path: the device stalls the client while it dials.
                ctx.charge(stream.take_elapsed());
                Ok(stream)
            }
            Err(crate::error::TlsError::Transport(e)) => {
                ctx.charge(e.elapsed);
                Err(())
            }
            Err(_) => Err(()),
        }
    }
}

impl StreamHandler for InterceptHandler {
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        let records = match decode_records(data) {
            Ok(r) => r,
            Err(_) => return self.alert("decode_error"),
        };
        let mut out: Vec<Record> = Vec::new();
        for record in records {
            match (&mut self.state, record.ctype) {
                (ProxyState::AwaitingHello, ContentType::Handshake) => {
                    let ch = match HandshakeMsg::decode(&record.payload) {
                        Ok(HandshakeMsg::ClientHello(ch)) => ch,
                        _ => return self.alert("unexpected_message"),
                    };
                    let upstream = match self.dial_upstream(ctx, ch.sni.as_deref(), &ch.alpn) {
                        Ok(s) => s,
                        Err(()) => return self.alert("upstream_unreachable"),
                    };
                    let presented = match &self.strategy {
                        PresentStrategy::ResignUpstream => {
                            let mut chain: Vec<Certificate> = Vec::new();
                            if let Some(leaf) = upstream.server_chain().first() {
                                let mut forged = self.ca.resign(leaf);
                                // The forged leaf must carry a key the
                                // device controls.
                                forged.key = self.device_key;
                                forged.signature.digest = forged.tbs_digest();
                                chain.push(forged);
                            }
                            chain.push(self.ca.root_cert().clone());
                            chain
                        }
                        PresentStrategy::Fixed(chain) => chain.clone(),
                    };
                    let config = TlsServerConfig {
                        chain: presented,
                        key: self.device_key,
                        alpn: Vec::new(),
                        ticket_secret: crate::cert::fnv1a(&self.device_key.0.to_be_bytes()),
                    };
                    match answer_client_hello(&config, &ch) {
                        Ok((key, _resumed, reply)) => {
                            self.state = ProxyState::Established {
                                client_key: key,
                                upstream: Box::new(upstream),
                            };
                            out.push(reply);
                        }
                        Err(alert) => {
                            self.state = ProxyState::Dead;
                            out.push(alert);
                        }
                    }
                }
                (ProxyState::Established { .. }, ContentType::Handshake) => {
                    match HandshakeMsg::decode(&record.payload) {
                        Ok(HandshakeMsg::Finished) => out.push(Record {
                            ctype: ContentType::Handshake,
                            payload: HandshakeMsg::Finished.encode(),
                        }),
                        _ => return self.alert("unexpected_message"),
                    }
                }
                (
                    ProxyState::Established {
                        client_key,
                        upstream,
                    },
                    ContentType::ApplicationData,
                ) => {
                    let key = *client_key;
                    let plaintext = match open(key, &record.payload) {
                        Ok(p) => p,
                        Err(_) => return self.alert("bad_record_mac"),
                    };
                    // doe-lint: allow(D006, D009) — ground-truth log read as an
                    // unordered set by tests only, never rendered into merged
                    // reports, so append order is unobservable; and the mutex is
                    // uncontended by construction (one interception handler per
                    // single-threaded shard), so the acquisition cannot stall the
                    // event loop
                    self.log.lock().push(InterceptedExchange {
                        client: self.peer.src,
                        original_dst: self.peer.original_dst,
                        port: self.peer.original_port,
                        plaintext: plaintext.clone(),
                    });
                    let response = match upstream.request(ctx.network(), &plaintext) {
                        Ok(r) => r,
                        Err(_) => return self.alert("upstream_failed"),
                    };
                    ctx.charge(upstream.take_elapsed());
                    out.push(Record {
                        ctype: ContentType::ApplicationData,
                        payload: seal(key, &response),
                    });
                }
                (_, ContentType::Alert) => {
                    self.state = ProxyState::Dead;
                }
                _ => return self.alert("unexpected_record"),
            }
        }
        encode_records(&out)
    }
}

impl Service for TlsInterceptService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(InterceptHandler {
            ca: self.ca.clone(),
            device_key: self.device_key,
            strategy: self.strategy.clone(),
            upstream_override: self.upstream_override,
            log: Arc::clone(&self.log),
            peer,
            now: self.now,
            costs: self.costs,
            state: ProxyState::AwaitingHello,
        })
    }

    fn protocol(&self) -> &'static str {
        "tls-mitm"
    }
}
