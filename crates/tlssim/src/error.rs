//! TLS and certificate error types.

use std::fmt;

/// Why a certificate chain failed verification.
///
/// Variants mirror the paper's Finding 1.2 taxonomy: of the invalid DoT
/// certificates observed on May 1, "27 expired, 67 self-signed and 28
/// invalid certificate chains", plus the untrusted-CA class produced by
/// interception devices (Finding 2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The server presented no certificate at all.
    EmptyChain,
    /// The leaf is outside its validity window (expired).
    Expired,
    /// The leaf is not yet valid.
    NotYetValid,
    /// The leaf is self-signed.
    SelfSigned,
    /// A signature in the chain does not verify (broken/invalid chain).
    InvalidChain,
    /// The chain terminates at a CA that is not in the trust store —
    /// the signature of TLS interception.
    UntrustedCa {
        /// Common name of the CA that actually signed.
        ca_cn: String,
    },
    /// The certificate does not cover the requested hostname.
    NameMismatch {
        /// Hostname the client asked for.
        expected: String,
        /// Subject CN found.
        found: String,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::EmptyChain => write!(f, "no certificate presented"),
            CertError::Expired => write!(f, "certificate expired"),
            CertError::NotYetValid => write!(f, "certificate not yet valid"),
            CertError::SelfSigned => write!(f, "self-signed certificate"),
            CertError::InvalidChain => write!(f, "invalid certificate chain"),
            CertError::UntrustedCa { ca_cn } => write!(f, "untrusted CA {ca_cn:?}"),
            CertError::NameMismatch { expected, found } => {
                write!(f, "name mismatch: wanted {expected:?}, got {found:?}")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Why a TLS session failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// TCP-level failure before or during the handshake.
    Transport(netsim::ConnectError),
    /// Certificate verification failed under the Strict profile.
    Cert(CertError),
    /// The peer sent bytes that don't parse as TLS.
    ProtocolViolation(String),
    /// Record integrity check failed (tampering or key mismatch).
    BadRecordMac,
    /// The server refused or could not complete the handshake.
    HandshakeFailed(String),
    /// ALPN negotiation failed (no mutually acceptable protocol).
    AlpnMismatch,
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::Transport(e) => write!(f, "transport: {e}"),
            TlsError::Cert(e) => write!(f, "certificate: {e}"),
            TlsError::ProtocolViolation(s) => write!(f, "protocol violation: {s}"),
            TlsError::BadRecordMac => write!(f, "bad record MAC"),
            TlsError::HandshakeFailed(s) => write!(f, "handshake failed: {s}"),
            TlsError::AlpnMismatch => write!(f, "ALPN mismatch"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<netsim::ConnectError> for TlsError {
    fn from(e: netsim::ConnectError) -> Self {
        TlsError::Transport(e)
    }
}

impl From<CertError> for TlsError {
    fn from(e: CertError) -> Self {
        TlsError::Cert(e)
    }
}
