//! # tlssim — simulated TLS for the DNS-over-Encryption study
//!
//! The paper's server-side findings hinge on *certificate hygiene* (25% of
//! DoT providers serve invalid certificates — expired, self-signed, broken
//! chains; Finding 1.2) and on *TLS interception* (middleboxes re-signing
//! resolver certificates with untrusted CAs; Finding 2.3). This crate
//! implements the machinery those findings exercise:
//!
//! * an X.509-like [`cert::Certificate`] model with issuers, validity
//!   windows, SANs and simulated signatures,
//! * a Mozilla-CA-list-like [`cert::TrustStore`] and a
//!   [`verify`] pass that classifies failures exactly the way the paper
//!   reports them (expired / self-signed / invalid chain / untrusted CA),
//! * a TLS 1.3-flavoured 1-RTT [`handshake`] over [`netsim`] TCP
//!   connections, with stateless session-ticket resumption,
//! * record-layer framing with simulated AEAD (keystream + integrity tag
//!   — *not* real cryptography; strength is irrelevant to the study, the
//!   round-trip and trust semantics are what matter), and
//! * [`mitm`]: interception middleboxes that terminate client TLS with a
//!   re-signed certificate and proxy plaintext to the genuine upstream,
//!   recording what they saw — the paper's FortiGate/SonicWall devices.
//!
//! Client policy follows RFC 8310 usage profiles: *Strict* (authenticate
//! or fail — DoH's only mode) and *Opportunistic* (proceed even if
//! authentication fails — how intercepted DoT clients silently kept
//! resolving, Finding 2.3).
//!
//! ```
//! use tlssim::{CaHandle, KeyId, TrustStore, DateStamp, classify_chain, CertStatus};
//!
//! let today = DateStamp::from_ymd(2019, 2, 1);
//! let ca = CaHandle::new("Example Root CA", KeyId(1), today + -365, 3650);
//! let mut store = TrustStore::new();
//! store.add(ca.authority());
//!
//! let leaf = ca.issue("dns.example.com", vec![], KeyId(2), 7, today + -30, today + 60);
//! assert_eq!(classify_chain(&[leaf], &store, today), CertStatus::Valid);
//!
//! // An appliance default certificate fails exactly the way Finding 1.2
//! // reports.
//! let appliance = CaHandle::self_signed("FGT60D", vec![], KeyId(3), 1, today, today + 3650);
//! assert_eq!(classify_chain(&[appliance], &store, today), CertStatus::SelfSigned);
//! ```

pub mod cert;
pub mod client;
pub mod date;
pub mod error;
pub mod handshake;
pub mod mitm;
pub mod record;
pub mod server;
pub mod verify;

pub use cert::{CaHandle, Certificate, CertificateAuthority, KeyId, TrustStore};
pub use client::{TlsClientConfig, TlsConnector, TlsStream, VerifyMode};
pub use date::DateStamp;
pub use error::{CertError, TlsError};
pub use mitm::{InterceptLog, InterceptedExchange, TlsInterceptService};
pub use server::{TlsServerConfig, TlsServerService};
pub use verify::{classify_chain, verify_chain, CertStatus};
