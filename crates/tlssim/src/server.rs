//! Server-side TLS: wrap any [`netsim::Service`] so its bytes travel
//! inside TLS records. This is how DoT resolvers (inner service = DNS
//! framing) and DoH resolvers (inner service = HTTP) are deployed.

use crate::cert::{fnv1a, Certificate, KeyId};
use crate::handshake::{ClientHello, HandshakeMsg, ServerHello};
use crate::record::{decode_records, encode_records, open, seal, ContentType, Record, SessionKey};
use netsim::{PeerInfo, Service, ServiceCtx, StreamHandler};
use std::sync::Arc;

/// Server-side TLS parameters.
#[derive(Debug, Clone)]
pub struct TlsServerConfig {
    /// Presented certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// The private key matching the leaf (its [`KeyId`]).
    pub key: KeyId,
    /// ALPN protocols the server accepts, in preference order. Empty
    /// means "accept whatever the client offers".
    pub alpn: Vec<String>,
    /// Secret for stateless session tickets.
    pub ticket_secret: u64,
}

impl TlsServerConfig {
    /// Config with a chain and key; ticket secret derived from the key.
    pub fn new(chain: Vec<Certificate>, key: KeyId) -> Self {
        TlsServerConfig {
            chain,
            key,
            alpn: Vec::new(),
            ticket_secret: fnv1a(&key.0.to_be_bytes()),
        }
    }

    /// Restrict ALPN.
    pub fn with_alpn(mut self, alpn: &[&str]) -> Self {
        self.alpn = alpn.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// Select the ALPN protocol: first client offer the server accepts.
pub(crate) fn select_alpn(server: &[String], client: &[String]) -> Result<Option<String>, ()> {
    if client.is_empty() {
        return Ok(None);
    }
    if server.is_empty() {
        return Ok(Some(client[0].clone()));
    }
    for offer in client {
        if server.contains(offer) {
            return Ok(Some(offer.clone()));
        }
    }
    Err(())
}

/// Process a ClientHello server-side: derive the session key and build the
/// reply flight. Shared by the genuine server and the MITM proxy.
pub(crate) fn answer_client_hello(
    config: &TlsServerConfig,
    ch: &ClientHello,
) -> Result<(SessionKey, bool, Record), Record> {
    let alpn = match select_alpn(&config.alpn, &ch.alpn) {
        Ok(a) => a,
        Err(()) => {
            return Err(Record {
                ctype: ContentType::Alert,
                payload: HandshakeMsg::Alert("no_application_protocol".into()).encode(),
            })
        }
    };
    // Deterministic server nonce: a function of the hello and our secret.
    let mut nonce_input = Vec::with_capacity(16);
    nonce_input.extend_from_slice(&ch.client_random.to_be_bytes());
    nonce_input.extend_from_slice(&config.ticket_secret.to_be_bytes());
    let server_random = fnv1a(&nonce_input);

    let (key, resumed) = match ch.ticket {
        Some(ticket) => {
            let old = SessionKey(ticket ^ config.ticket_secret);
            (SessionKey::derive_resumed(old, ch.client_random), true)
        }
        None => (
            SessionKey::derive(ch.client_random, server_random, config.key.0),
            false,
        ),
    };
    let hello = ServerHello {
        server_random,
        alpn,
        chain: if resumed {
            Vec::new()
        } else {
            config.chain.clone()
        },
        ticket: Some(key.0 ^ config.ticket_secret),
        resumed,
    };
    Ok((
        key,
        resumed,
        Record {
            ctype: ContentType::Handshake,
            payload: HandshakeMsg::ServerHello(hello).encode(),
        },
    ))
}

/// A [`Service`] that terminates TLS and hands plaintext to `inner`.
pub struct TlsServerService {
    config: TlsServerConfig,
    inner: Arc<dyn Service>,
}

impl TlsServerService {
    /// Wrap `inner` behind TLS with `config`.
    pub fn new(config: TlsServerConfig, inner: Arc<dyn Service>) -> Self {
        TlsServerService { config, inner }
    }

    /// The configured chain (tests & forensics).
    pub fn chain(&self) -> &[Certificate] {
        &self.config.chain
    }
}

enum HandlerState {
    AwaitingHello,
    Established(SessionKey),
    Dead,
}

struct TlsServerHandler {
    config: TlsServerConfig,
    inner_service: Arc<dyn Service>,
    inner: Option<Box<dyn StreamHandler>>,
    peer: PeerInfo,
    state: HandlerState,
}

impl TlsServerHandler {
    fn inner_handler(&mut self) -> &mut Box<dyn StreamHandler> {
        self.inner
            .get_or_insert_with(|| self.inner_service.open_stream(self.peer))
    }
}

impl StreamHandler for TlsServerHandler {
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        let records = match decode_records(data) {
            Ok(r) => r,
            Err(_) => {
                self.state = HandlerState::Dead;
                return encode_records(&[Record {
                    ctype: ContentType::Alert,
                    payload: HandshakeMsg::Alert("decode_error".into()).encode(),
                }]);
            }
        };
        let mut out: Vec<Record> = Vec::new();
        for record in records {
            match (&self.state, record.ctype) {
                (HandlerState::AwaitingHello, ContentType::Handshake) => {
                    match HandshakeMsg::decode(&record.payload) {
                        Ok(HandshakeMsg::ClientHello(ch)) => {
                            match answer_client_hello(&self.config, &ch) {
                                Ok((key, _resumed, reply)) => {
                                    self.state = HandlerState::Established(key);
                                    out.push(reply);
                                }
                                Err(alert) => {
                                    self.state = HandlerState::Dead;
                                    out.push(alert);
                                }
                            }
                        }
                        _ => {
                            self.state = HandlerState::Dead;
                            out.push(Record {
                                ctype: ContentType::Alert,
                                payload: HandshakeMsg::Alert("unexpected_message".into()).encode(),
                            });
                        }
                    }
                }
                (HandlerState::Established(_), ContentType::Handshake) => {
                    match HandshakeMsg::decode(&record.payload) {
                        Ok(HandshakeMsg::Finished) => {
                            out.push(Record {
                                ctype: ContentType::Handshake,
                                payload: HandshakeMsg::Finished.encode(),
                            });
                        }
                        _ => {
                            self.state = HandlerState::Dead;
                            out.push(Record {
                                ctype: ContentType::Alert,
                                payload: HandshakeMsg::Alert("unexpected_message".into()).encode(),
                            });
                        }
                    }
                }
                (HandlerState::Established(key), ContentType::ApplicationData) => {
                    let key = *key;
                    match open(key, &record.payload) {
                        Ok(plaintext) => {
                            let response = self.inner_handler().on_bytes(ctx, &plaintext);
                            if !response.is_empty() {
                                out.push(Record {
                                    ctype: ContentType::ApplicationData,
                                    payload: seal(key, &response),
                                });
                            }
                        }
                        Err(_) => {
                            self.state = HandlerState::Dead;
                            out.push(Record {
                                ctype: ContentType::Alert,
                                payload: HandshakeMsg::Alert("bad_record_mac".into()).encode(),
                            });
                        }
                    }
                }
                (_, ContentType::Alert) => {
                    self.state = HandlerState::Dead;
                }
                _ => {
                    self.state = HandlerState::Dead;
                    out.push(Record {
                        ctype: ContentType::Alert,
                        payload: HandshakeMsg::Alert("unexpected_record".into()).encode(),
                    });
                }
            }
        }
        encode_records(&out)
    }

    fn on_close(&mut self, ctx: &mut ServiceCtx<'_>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.on_close(ctx);
        }
    }
}

impl Service for TlsServerService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(TlsServerHandler {
            config: self.config.clone(),
            inner_service: Arc::clone(&self.inner),
            inner: None,
            peer,
            state: HandlerState::AwaitingHello,
        })
    }

    fn protocol(&self) -> &'static str {
        "tls"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpn_selection() {
        let dot = vec!["dot".to_string()];
        let h2 = vec!["h2".to_string()];
        // Server restricted, client matches.
        assert_eq!(select_alpn(&dot, &dot), Ok(Some("dot".into())));
        // Server restricted, client mismatched.
        assert_eq!(select_alpn(&dot, &h2), Err(()));
        // Server unrestricted mirrors client.
        assert_eq!(select_alpn(&[], &h2), Ok(Some("h2".into())));
        // Client offers nothing: no ALPN.
        assert_eq!(select_alpn(&dot, &[]), Ok(None));
    }

    #[test]
    fn client_hello_answer_full_vs_resumed() {
        let config = TlsServerConfig::new(Vec::new(), KeyId(7));
        let full = ClientHello {
            sni: None,
            alpn: vec![],
            client_random: 1,
            ticket: None,
        };
        let (key, _, reply) = answer_client_hello(&config, &full).unwrap();
        let HandshakeMsg::ServerHello(sh) = HandshakeMsg::decode(&reply.payload).unwrap() else {
            panic!("expected ServerHello");
        };
        assert!(!sh.resumed);
        // The issued ticket recovers the session key.
        let ticket = sh.ticket.unwrap();
        assert_eq!(SessionKey(ticket ^ config.ticket_secret), key);

        let resumed = ClientHello {
            ticket: Some(ticket),
            client_random: 2,
            ..full
        };
        let (key2, _, reply2) = answer_client_hello(&config, &resumed).unwrap();
        let HandshakeMsg::ServerHello(sh2) = HandshakeMsg::decode(&reply2.payload).unwrap() else {
            panic!("expected ServerHello");
        };
        assert!(sh2.resumed);
        assert!(sh2.chain.is_empty(), "no chain re-sent on resumption");
        assert_eq!(key2, SessionKey::derive_resumed(key, 2));
    }
}
