//! Client-side TLS: connector, usage profiles and the encrypted stream.

use crate::cert::{Certificate, TrustStore};
use crate::date::DateStamp;
use crate::error::{CertError, TlsError};
use crate::handshake::{ClientHello, HandshakeMsg, ServerHello, TlsCosts};
use crate::record::{decode_records, encode_records, open, seal, ContentType, Record, SessionKey};
use crate::verify::verify_chain;
use netsim::{Conn, Network, SimDuration};
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// RFC 8310-style usage profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Authenticate or fail — DoH's only mode, and DoT's Strict profile.
    Strict,
    /// Attempt authentication but proceed on failure — DoT's
    /// Opportunistic profile. The verification outcome is retained on the
    /// stream for inspection (how the study detects interception).
    Opportunistic,
    /// Skip the decision entirely (the scanner's certificate collector).
    NoVerify,
}

/// Client TLS parameters.
#[derive(Debug, Clone)]
pub struct TlsClientConfig {
    /// Trust anchors.
    pub trust_store: TrustStore,
    /// ALPN offers, in preference order.
    pub alpn: Vec<String>,
    /// Usage profile.
    pub verify: VerifyMode,
    /// Verification date.
    pub now: DateStamp,
    /// CPU cost model.
    pub costs: TlsCosts,
    /// Whether to attempt session resumption when a ticket is cached.
    pub enable_resumption: bool,
    /// Perform a TLS 1.2-style handshake (one extra round trip for the
    /// Finished exchange) — the deployed norm in 2019. Resumed sessions
    /// are unaffected.
    pub legacy_two_rtt: bool,
}

impl TlsClientConfig {
    /// Strict-profile config with the given anchors and date.
    pub fn strict(trust_store: TrustStore, now: DateStamp) -> Self {
        TlsClientConfig {
            trust_store,
            alpn: Vec::new(),
            verify: VerifyMode::Strict,
            now,
            costs: TlsCosts::default(),
            enable_resumption: true,
            legacy_two_rtt: true,
        }
    }

    /// Opportunistic-profile config.
    pub fn opportunistic(trust_store: TrustStore, now: DateStamp) -> Self {
        TlsClientConfig {
            verify: VerifyMode::Opportunistic,
            ..TlsClientConfig::strict(trust_store, now)
        }
    }

    /// No-verification config (scanning).
    pub fn no_verify(now: DateStamp) -> Self {
        TlsClientConfig {
            verify: VerifyMode::NoVerify,
            ..TlsClientConfig::strict(TrustStore::new(), now)
        }
    }

    /// Set ALPN offers.
    pub fn with_alpn(mut self, alpn: &[&str]) -> Self {
        self.alpn = alpn.iter().map(|s| s.to_string()).collect();
        self
    }
}

#[derive(Debug, Clone)]
struct TicketEntry {
    ticket: u64,
    key: SessionKey,
    chain: Vec<Certificate>,
    verify_result: Result<(), CertError>,
}

/// Opens TLS sessions; caches resumption tickets per
/// `(addr, port, sni)`.
pub struct TlsConnector {
    config: TlsClientConfig,
    tickets: HashMap<(Ipv4Addr, u16, Option<String>), TicketEntry>,
}

impl TlsConnector {
    /// A connector with an empty session cache.
    pub fn new(config: TlsClientConfig) -> Self {
        TlsConnector {
            config,
            tickets: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TlsClientConfig {
        &self.config
    }

    /// Number of cached sessions.
    pub fn cached_sessions(&self) -> usize {
        self.tickets.len()
    }

    /// Drop all cached sessions (forces full handshakes).
    pub fn clear_sessions(&mut self) {
        self.tickets.clear();
    }

    /// Open a TLS session to `dst:port` from `src`.
    ///
    /// Full handshakes cost the TCP round trip plus one TLS round trip plus
    /// [`TlsCosts::handshake`]. With a cached ticket the hello piggybacks on
    /// the first application flight (0 extra round trips).
    pub fn connect(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        sni: Option<&str>,
    ) -> Result<TlsStream, TlsError> {
        let mut conn = net.connect(src, dst, port)?;
        let cache_key = (dst, port, sni.map(str::to_string));

        if self.config.enable_resumption {
            if let Some(entry) = self.tickets.get(&cache_key) {
                let client_random: u64 = net.rng().gen();
                let key = SessionKey::derive_resumed(entry.key, client_random);
                let hello = Record {
                    ctype: ContentType::Handshake,
                    payload: HandshakeMsg::ClientHello(ClientHello {
                        sni: sni.map(str::to_string),
                        alpn: self.config.alpn.clone(),
                        client_random,
                        ticket: Some(entry.ticket),
                    })
                    .encode(),
                };
                conn.charge(self.config.costs.resumption);
                return Ok(TlsStream {
                    conn,
                    key,
                    server_chain: entry.chain.clone(),
                    verify_result: entry.verify_result.clone(),
                    alpn: self.config.alpn.first().cloned(),
                    costs: self.config.costs,
                    pending_hello: Some(hello),
                    resumed: true,
                });
            }
        }

        // Full handshake.
        let client_random: u64 = net.rng().gen();
        let flight = encode_records(&[Record {
            ctype: ContentType::Handshake,
            payload: HandshakeMsg::ClientHello(ClientHello {
                sni: sni.map(str::to_string),
                alpn: self.config.alpn.clone(),
                client_random,
                ticket: None,
            })
            .encode(),
        }]);
        let resp = conn.request(net, &flight)?;
        let records = decode_records(&resp)?;
        let sh = parse_server_hello(&records)?;
        if sh.resumed {
            return Err(TlsError::ProtocolViolation(
                "server resumed without a ticket".into(),
            ));
        }
        let verify_result = verify_chain(&sh.chain, &self.config.trust_store, self.config.now, sni);
        if self.config.verify == VerifyMode::Strict {
            if let Err(cert_err) = &verify_result {
                // Strict profile: abort before any DNS data flows.
                conn.close(net);
                return Err(TlsError::Cert(cert_err.clone()));
            }
        }
        let leaf_key = sh.chain.first().map(|c| c.key.0).unwrap_or_default();
        let key = SessionKey::derive(client_random, sh.server_random, leaf_key);
        if let Some(ticket) = sh.ticket {
            self.tickets.insert(
                cache_key,
                TicketEntry {
                    ticket,
                    key,
                    chain: sh.chain.clone(),
                    verify_result: verify_result.clone(),
                },
            );
        }
        conn.charge(self.config.costs.handshake);
        if self.config.legacy_two_rtt {
            let fin = encode_records(&[Record {
                ctype: ContentType::Handshake,
                payload: HandshakeMsg::Finished.encode(),
            }]);
            let ack = conn.request(net, &fin)?;
            let records = decode_records(&ack)?;
            if !records.iter().any(|r| r.ctype == ContentType::Handshake) {
                conn.close(net);
                return Err(TlsError::HandshakeFailed("no finished ack".into()));
            }
        }
        Ok(TlsStream {
            conn,
            key,
            server_chain: sh.chain,
            verify_result,
            alpn: sh.alpn,
            costs: self.config.costs,
            pending_hello: None,
            resumed: false,
        })
    }
}

fn parse_server_hello(records: &[Record]) -> Result<ServerHello, TlsError> {
    for record in records {
        match record.ctype {
            ContentType::Handshake => match HandshakeMsg::decode(&record.payload)? {
                HandshakeMsg::ServerHello(sh) => return Ok(sh),
                HandshakeMsg::Alert(reason) => return Err(TlsError::HandshakeFailed(reason)),
                HandshakeMsg::ClientHello(_) | HandshakeMsg::Finished => {
                    return Err(TlsError::ProtocolViolation(
                        "unexpected handshake message".into(),
                    ))
                }
            },
            ContentType::Alert => {
                let reason = HandshakeMsg::decode(&record.payload)
                    .map(|m| match m {
                        HandshakeMsg::Alert(r) => r,
                        _ => "alert".into(),
                    })
                    .unwrap_or_else(|_| "alert".into());
                return Err(TlsError::HandshakeFailed(reason));
            }
            ContentType::ApplicationData => continue,
        }
    }
    Err(TlsError::ProtocolViolation("no server hello".into()))
}

/// An established TLS session wrapping a TCP [`Conn`].
#[derive(Debug)]
pub struct TlsStream {
    conn: Conn,
    key: SessionKey,
    server_chain: Vec<Certificate>,
    verify_result: Result<(), CertError>,
    alpn: Option<String>,
    costs: TlsCosts,
    pending_hello: Option<Record>,
    resumed: bool,
}

impl TlsStream {
    /// One encrypted request/response exchange.
    pub fn request(&mut self, net: &mut Network, plaintext: &[u8]) -> Result<Vec<u8>, TlsError> {
        let mut flight = Vec::new();
        if let Some(hello) = self.pending_hello.take() {
            flight.push(hello);
        }
        flight.push(Record {
            ctype: ContentType::ApplicationData,
            payload: seal(self.key, plaintext),
        });
        self.conn.charge(self.costs.per_exchange);
        let resp = self.conn.request(net, &encode_records(&flight))?;
        let records = decode_records(&resp)?;
        let mut out = Vec::new();
        for record in records {
            match record.ctype {
                ContentType::ApplicationData => {
                    out.extend_from_slice(&open(self.key, &record.payload)?);
                }
                ContentType::Handshake => {
                    // ServerHello confirming resumption: nothing to do.
                    if let HandshakeMsg::Alert(reason) = HandshakeMsg::decode(&record.payload)? {
                        return Err(TlsError::HandshakeFailed(reason));
                    }
                }
                ContentType::Alert => {
                    let reason = match HandshakeMsg::decode(&record.payload) {
                        Ok(HandshakeMsg::Alert(r)) => r,
                        _ => "alert".into(),
                    };
                    return Err(TlsError::HandshakeFailed(reason));
                }
            }
        }
        Ok(out)
    }

    /// The certificate chain the server presented (empty on resumption is
    /// replaced by the cached chain).
    pub fn server_chain(&self) -> &[Certificate] {
        &self.server_chain
    }

    /// What certificate verification concluded (kept even under the
    /// Opportunistic profile — this is how intercepted-but-working DoT is
    /// detected).
    pub fn verify_result(&self) -> &Result<(), CertError> {
        &self.verify_result
    }

    /// Negotiated ALPN protocol.
    pub fn alpn(&self) -> Option<&str> {
        self.alpn.as_deref()
    }

    /// Whether this session was resumed from a ticket.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Total virtual time charged to the underlying connection.
    pub fn elapsed(&self) -> SimDuration {
        self.conn.elapsed()
    }

    /// Read-and-reset the underlying connection's clock.
    pub fn take_elapsed(&mut self) -> SimDuration {
        self.conn.take_elapsed()
    }

    /// The underlying connection (for diversion forensics in tests).
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// Close the session.
    pub fn close(self, net: &mut Network) {
        self.conn.close(net);
    }
}
