//! Chain verification and the scanner's failure classification.

use crate::cert::{Certificate, TrustStore};
use crate::date::DateStamp;
use crate::error::CertError;
use serde::{Deserialize, Serialize};

/// Verify a chain as a client would.
///
/// `chain[0]` is the leaf; each following certificate must have signed its
/// predecessor; the last must be signed by (or be) a trust anchor.
///
/// `expected_name` is checked against the leaf when provided. The paper's
/// scanner passes `None` — "as the names of DoT resolvers are unknown to
/// us, we do not compare domain names ... but only verify the certificate
/// paths" (§3.2) — while DoH clients pass the URI-template hostname.
pub fn verify_chain(
    chain: &[Certificate],
    store: &TrustStore,
    now: DateStamp,
    expected_name: Option<&str>,
) -> Result<(), CertError> {
    let leaf = chain.first().ok_or(CertError::EmptyChain)?;

    // 1. Signature structure, bottom-up.
    for i in 0..chain.len() {
        let cert = &chain[i];
        if let Some(issuer) = chain.get(i + 1) {
            if !cert.signature_valid_under(issuer.key) {
                return Err(CertError::InvalidChain);
            }
        }
    }

    // 2. Trust anchoring of the top of the chain: the signer must be an
    //    anchor AND its signature must actually verify — a forged
    //    certificate merely *claiming* a trusted issuer is a broken chain.
    let top = chain.last().ok_or(CertError::EmptyChain)?;
    if store.is_trusted(top.signature.signer) {
        if !top.signature_valid_under(top.signature.signer) {
            return Err(CertError::InvalidChain);
        }
    } else {
        if chain.len() == 1 && top.is_self_signed() {
            return Err(CertError::SelfSigned);
        }
        if !top.signature_valid_under(top.key) && chain.len() == 1 {
            // Leaf claims an external issuer but none was presented and the
            // signer isn't anchored: broken chain.
            return Err(CertError::InvalidChain);
        }
        return Err(CertError::UntrustedCa {
            ca_cn: top.issuer_cn.clone(),
        });
    }

    // 3. Validity windows (leaf first — that's what gets reported).
    for cert in chain {
        if now > cert.not_after {
            return Err(CertError::Expired);
        }
        if now < cert.not_before {
            return Err(CertError::NotYetValid);
        }
    }

    // 4. Name check (optional).
    if let Some(name) = expected_name {
        if !leaf.matches_name(name) {
            return Err(CertError::NameMismatch {
                expected: name.to_string(),
                found: leaf.subject_cn.clone(),
            });
        }
    }
    Ok(())
}

/// The scanner's per-resolver certificate verdict (Figure 4's split).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertStatus {
    /// Chain verifies against the trust store.
    Valid,
    /// Expired leaf or intermediate.
    Expired,
    /// Self-signed certificate (incl. appliance default certificates).
    SelfSigned,
    /// Broken or un-anchored chain.
    InvalidChain,
    /// Signed by a CA outside the store (interception CA).
    UntrustedCa {
        /// The CA common name seen.
        ca_cn: String,
    },
}

impl CertStatus {
    /// Whether this status counts as "invalid" in Finding 1.2.
    pub fn is_invalid(&self) -> bool {
        !matches!(self, CertStatus::Valid)
    }
}

/// Classify a chain into the paper's reporting buckets.
pub fn classify_chain(chain: &[Certificate], store: &TrustStore, now: DateStamp) -> CertStatus {
    match verify_chain(chain, store, now, None) {
        Ok(()) => CertStatus::Valid,
        Err(CertError::Expired) | Err(CertError::NotYetValid) => CertStatus::Expired,
        Err(CertError::SelfSigned) => CertStatus::SelfSigned,
        Err(CertError::InvalidChain) | Err(CertError::EmptyChain) => CertStatus::InvalidChain,
        Err(CertError::UntrustedCa { ca_cn }) => CertStatus::UntrustedCa { ca_cn },
        Err(CertError::NameMismatch { .. }) => unreachable!("no name check requested"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CaHandle, KeyId};

    fn day(n: i64) -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1) + n
    }

    fn trusted_ca() -> (CaHandle, TrustStore) {
        let ca = CaHandle::new("Let's Encrypt Authority X3", KeyId(1), day(-365), 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        (ca, store)
    }

    #[test]
    fn valid_leaf_passes() {
        let (ca, store) = trusted_ca();
        let leaf = ca.issue("dns.example.com", vec![], KeyId(2), 1, day(-10), day(80));
        assert_eq!(
            verify_chain(std::slice::from_ref(&leaf), &store, day(0), None),
            Ok(())
        );
        assert_eq!(classify_chain(&[leaf], &store, day(0)), CertStatus::Valid);
    }

    #[test]
    fn expired_leaf_classified() {
        let (ca, store) = trusted_ca();
        // Expired July 2018 — like the 185.56.24.52 resolver in the paper.
        let leaf = ca.issue("old.example.com", vec![], KeyId(2), 1, day(-400), day(-200));
        assert_eq!(
            verify_chain(std::slice::from_ref(&leaf), &store, day(0), None),
            Err(CertError::Expired)
        );
        assert_eq!(classify_chain(&[leaf], &store, day(0)), CertStatus::Expired);
    }

    #[test]
    fn not_yet_valid_reports_as_expired_bucket() {
        let (ca, store) = trusted_ca();
        let leaf = ca.issue("soon.example.com", vec![], KeyId(2), 1, day(30), day(300));
        assert_eq!(classify_chain(&[leaf], &store, day(0)), CertStatus::Expired);
    }

    #[test]
    fn self_signed_classified() {
        let (_ca, store) = trusted_ca();
        let leaf = CaHandle::self_signed("FGT60D", vec![], KeyId(9), 1, day(-1), day(3650));
        assert_eq!(
            classify_chain(&[leaf], &store, day(0)),
            CertStatus::SelfSigned
        );
    }

    #[test]
    fn untrusted_ca_classified_with_cn() {
        let (_ca, store) = trusted_ca();
        let mitm = CaHandle::new("SonicWall Firewall DPI-SSL", KeyId(66), day(-100), 3650);
        let leaf = mitm.issue("cloudflare-dns.com", vec![], KeyId(2), 1, day(-1), day(300));
        // Chain includes the (untrusted) root.
        let status = classify_chain(&[leaf, mitm.root_cert().clone()], &store, day(0));
        assert_eq!(
            status,
            CertStatus::UntrustedCa {
                ca_cn: "SonicWall Firewall DPI-SSL".into()
            }
        );
    }

    #[test]
    fn broken_chain_classified() {
        let (ca, store) = trusted_ca();
        let other = CaHandle::new("Other CA", KeyId(50), day(-100), 3650);
        let leaf = ca.issue("x.example.com", vec![], KeyId(2), 1, day(-1), day(300));
        // Present the wrong intermediate: leaf's signature can't verify
        // under it.
        let status = classify_chain(&[leaf, other.root_cert().clone()], &store, day(0));
        assert_eq!(status, CertStatus::InvalidChain);
    }

    #[test]
    fn leaf_claiming_absent_issuer_is_invalid_chain() {
        let store = TrustStore::new();
        let ca = CaHandle::new("Nobody Trusts Me", KeyId(3), day(-10), 3650);
        let mut leaf = ca.issue("x.example.com", vec![], KeyId(2), 1, day(-1), day(300));
        // Corrupt the signature digest: not self-signed, signer unknown.
        leaf.signature.digest ^= 1;
        assert_eq!(
            classify_chain(&[leaf], &store, day(0)),
            CertStatus::InvalidChain
        );
    }

    #[test]
    fn empty_chain_is_invalid() {
        let store = TrustStore::new();
        assert_eq!(
            classify_chain(&[], &store, day(0)),
            CertStatus::InvalidChain
        );
        assert_eq!(
            verify_chain(&[], &store, day(0), None),
            Err(CertError::EmptyChain)
        );
    }

    #[test]
    fn name_check_only_when_requested() {
        let (ca, store) = trusted_ca();
        let leaf = ca.issue("dns.quad9.net", vec![], KeyId(2), 1, day(-1), day(300));
        assert!(verify_chain(std::slice::from_ref(&leaf), &store, day(0), None).is_ok());
        assert!(verify_chain(
            std::slice::from_ref(&leaf),
            &store,
            day(0),
            Some("dns.quad9.net")
        )
        .is_ok());
        assert_eq!(
            verify_chain(&[leaf], &store, day(0), Some("dns.google")),
            Err(CertError::NameMismatch {
                expected: "dns.google".into(),
                found: "dns.quad9.net".into()
            })
        );
    }

    #[test]
    fn two_level_chain_verifies() {
        let root = CaHandle::new("Root CA", KeyId(1), day(-1000), 7300);
        let mut store = TrustStore::new();
        store.add(root.authority());
        // Intermediate signed by root; leaf signed by intermediate.
        let inter_key = KeyId(10);
        let inter_cert = root.issue(
            "Intermediate CA",
            vec![],
            inter_key,
            2,
            day(-500),
            day(1000),
        );
        let inter = CaHandle::new("Intermediate CA", inter_key, day(-500), 1000);
        let leaf = inter.issue("dns.example.com", vec![], KeyId(20), 3, day(-1), day(90));
        let chain = vec![leaf, inter_cert];
        assert_eq!(verify_chain(&chain, &store, day(0), None), Ok(()));
    }

    #[test]
    fn is_invalid_helper() {
        assert!(!CertStatus::Valid.is_invalid());
        assert!(CertStatus::Expired.is_invalid());
        assert!(CertStatus::SelfSigned.is_invalid());
    }
}
