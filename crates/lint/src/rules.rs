//! The determinism contract, rule by rule.
//!
//! Every rule is a token-window pattern over the lexed stream (see
//! [`crate::lexer`]); none needs type information. Code under
//! `#[cfg(test)]` / `#[test]` items is exempt — tests may unwrap, print
//! and hash to their heart's content without touching report output.

use crate::lexer::{Tok, TokKind};

/// One diagnostic before file attribution.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001`..`D005`).
    pub rule: &'static str,
    /// Human explanation with the remediation.
    pub message: String,
}

/// (id, short title) for every contract rule.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "no wall-clock or ambient randomness in library code",
    ),
    (
        "D002",
        "no HashMap/HashSet in crates whose output reaches reports",
    ),
    ("D003", "no println!/eprintln! in library code"),
    ("D004", "no unwrap()/expect() on protocol paths"),
    ("D005", "no narrowing `as` casts in address-space indexing"),
    (
        "D006",
        "no shared-state mutation reachable from sharded entry points",
    ),
    ("D007", "no panic site reachable from protocol entry points"),
    (
        "D008",
        "no float accumulation reachable from merge entry points",
    ),
    (
        "D009",
        "no blocking operation reachable from event-machine step entry points",
    ),
    (
        "D010",
        "per-machine RNG confined: swap_rng paired, no flow into shared DataPlane",
    ),
    (
        "D011",
        "no raw time value into sched deadline APIs outside Sim* constructors",
    ),
    (
        "D012",
        "no allocation site reachable from telemetry hot-path entry points",
    ),
    (
        "D013",
        "consistent lock-acquisition order: lock-order graph acyclic over lock entry cones",
    ),
    (
        "D014",
        "recursion cycles on decode/encode paths carry an explicit fuel/depth guard",
    ),
    (
        "D015",
        "no shard/worker/thread identity value read on a shard-merge path",
    ),
];

/// Is `id` a known contract rule (suppressible via pragma)?
pub fn is_known(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Integer types a cast can silently truncate into.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Idents that mean "asked the host for time or entropy".
const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy"];

/// Macros that write to stdout/stderr directly.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Compute which tokens sit inside test-only items: any item annotated
/// `#[cfg(test)]` (in any `cfg` combination naming `test`) or `#[test]`.
/// The mask covers the attribute itself through the end of the item body.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') || !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's identifiers up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = idents.first() == Some(&"test")
            || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        // Mark through the end of the annotated item: either a `;` at
        // bracket depth zero (e.g. `mod tests;`) or the matching close of
        // the first top-level `{`.
        let attr_start = i;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut k = j;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                    k += 1;
                    break;
                }
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    let mut braces = 1i32;
                    k += 1;
                    while k < toks.len() && braces > 0 {
                        match &toks[k].kind {
                            TokKind::Punct('{') => braces += 1,
                            TokKind::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(k).skip(attr_start) {
            *m = true;
        }
        i = k;
    }
    mask
}

/// Scan `toks` for violations of the `enabled` rules, skipping tokens
/// covered by `mask` (test-only code).
pub fn scan<F: Fn(&str) -> bool>(toks: &[Tok], mask: &[bool], enabled: F) -> Vec<RawFinding> {
    let mut out: Vec<RawFinding> = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Some(id) = tok.ident() else { continue };
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);

        if enabled("D001") {
            if CLOCK_IDENTS.contains(&id) {
                out.push(RawFinding {
                    line: tok.line,
                    rule: "D001",
                    message: format!(
                        "`{id}` reads the host wall clock; library code must use the \
                         virtual clock (`netsim` time) so runs replay bit-identically"
                    ),
                });
            } else if ENTROPY_IDENTS.contains(&id) {
                out.push(RawFinding {
                    line: tok.line,
                    rule: "D001",
                    message: format!(
                        "`{id}` draws ambient entropy; library code must thread a \
                         seeded `SmallRng` so runs replay bit-identically"
                    ),
                });
            } else if id == "random"
                && prev.is_some_and(|p| p.is_punct(':'))
                && i >= 3
                && toks[i - 2].is_punct(':')
                && toks[i - 3].ident() == Some("rand")
            {
                out.push(RawFinding {
                    line: tok.line,
                    rule: "D001",
                    message: "`rand::random` draws ambient entropy; thread a seeded \
                              `SmallRng` instead"
                        .to_string(),
                });
            }
        }

        if enabled("D002") && (id == "HashMap" || id == "HashSet") {
            out.push(RawFinding {
                line: tok.line,
                rule: "D002",
                message: format!(
                    "`{id}` iterates in nondeterministic order; this crate feeds \
                     reports/merges — use `BTree{}` or sort before emitting",
                    &id[4..]
                ),
            });
        }

        if enabled("D003") && PRINT_MACROS.contains(&id) && next.is_some_and(|t| t.is_punct('!')) {
            out.push(RawFinding {
                line: tok.line,
                rule: "D003",
                message: format!(
                    "`{id}!` writes to the console from library code; route \
                     diagnostics through `netsim::trace` (binaries are exempt)"
                ),
            });
        }

        if enabled("D004")
            && (id == "unwrap" || id == "expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|t| t.is_punct('('))
        {
            out.push(RawFinding {
                line: tok.line,
                rule: "D004",
                message: format!(
                    "`.{id}()` panics on malformed protocol data; return a typed \
                     error variant (`dnswire::Error` / `doe` `QueryError`) instead"
                ),
            });
        }

        if enabled("D005")
            && id == "as"
            && next
                .and_then(|t| t.ident())
                .is_some_and(|t| NARROW_INTS.contains(&t))
        {
            let ty = next.and_then(|t| t.ident()).unwrap_or("?");
            out.push(RawFinding {
                line: tok.line,
                rule: "D005",
                message: format!(
                    "narrowing `as {ty}` cast can silently truncate an address-space \
                     index; use `{ty}::try_from(..)` or mask explicitly"
                ),
            });
        }
    }
    // Collapse duplicate (rule, line) hits — e.g. `use ...::{HashMap, HashSet}`
    // — so one pragma line maps to one diagnostic.
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_all(src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        scan(&lexed.toks, &mask, |_| true)
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
            pub fn lib_code() {}

            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let mut m = HashMap::new();
                    m.insert(1, 2);
                    println!("{}", m.get(&1).unwrap());
                }
            }
        "#;
        assert!(scan_all(src).is_empty(), "{:?}", scan_all(src));
    }

    #[test]
    fn violations_outside_tests_are_caught() {
        let src = r#"
            pub fn f(x: u64) -> u16 {
                let h = std::collections::HashMap::<u32, u32>::new();
                println!("{}", h.len());
                let t = std::time::Instant::now();
                x as u16
            }
        "#;
        let rules: Vec<&str> = scan_all(src).iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"D001"));
        assert!(rules.contains(&"D002"));
        assert!(rules.contains(&"D003"));
        assert!(rules.contains(&"D005"));
    }

    #[test]
    fn method_named_print_is_not_a_macro() {
        let src = "pub fn f(r: &Renderer) { r.print(); r.dbg(); }";
        assert!(scan_all(src).is_empty());
    }

    #[test]
    fn widening_casts_pass() {
        let src = "pub fn f(x: u8) -> u64 { x as u64 }";
        assert!(scan_all(src).is_empty());
    }
}
