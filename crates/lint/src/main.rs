//! `doe-lint` CLI: lint the workspace against `lint.toml`.
//!
//! ```text
//! cargo run -p doe-lint                  # human output, exit 1 on findings
//! cargo run -p doe-lint -- --json       # machine-readable report on stdout
//! cargo run -p doe-lint -- --json-out results/doe-lint.json
//! cargo run -p doe-lint -- --graph      # workspace call graph on stdout
//! cargo run -p doe-lint -- --graph-out results/callgraph.json
//! cargo run -p doe-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: 0 contract holds, 1 unsuppressed findings, 2 usage,
//! configuration (stale `[graph]` entry) or I/O error.

use doe_lint::{analyze_workspace, find_root, graph, policy::Policy, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    graph: bool,
    graph_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        json_out: None,
        graph: false,
        graph_out: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--graph" => args.graph = true,
            "--quiet" | "-q" => args.quiet = true,
            "--json-out" => {
                let path = it.next().ok_or("--json-out needs a path")?;
                args.json_out = Some(PathBuf::from(path));
            }
            "--graph-out" => {
                let path = it.next().ok_or("--graph-out needs a path")?;
                args.graph_out = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err("usage: doe-lint [--root DIR] [--json] [--json-out FILE] \
                     [--graph] [--graph-out FILE] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn write_out(path: &PathBuf, content: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("{}: {e}", path.display()))
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_root(&cwd).ok_or("no lint.toml found between here and filesystem root")?
        }
    };
    let policy_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("{}: {e}", root.join("lint.toml").display()))?;
    let policy = Policy::parse(&policy_text)?;
    let analysis = analyze_workspace(&root, &policy).map_err(|e| format!("scan failed: {e}"))?;
    let rep = &analysis.report;

    if let Some(path) = &args.json_out {
        write_out(path, &report::json(rep))?;
    }
    if let Some(path) = &args.graph_out {
        write_out(path, &graph::to_json(&analysis.graph))?;
    }
    if args.graph {
        print!("{}", graph::to_json(&analysis.graph));
    } else if args.json {
        print!("{}", report::json(rep));
    } else if !args.quiet || !rep.clean() {
        print!("{}", report::human(rep));
    }
    Ok(if rep.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("doe-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
