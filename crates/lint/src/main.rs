//! `doe-lint` CLI: lint the workspace against `lint.toml`.
//!
//! ```text
//! cargo run -p doe-lint                  # human output, exit 1 on findings
//! cargo run -p doe-lint -- --json       # machine-readable report on stdout
//! cargo run -p doe-lint -- --json-out results/doe-lint.json
//! cargo run -p doe-lint -- --sarif results/doe-lint.sarif
//! cargo run -p doe-lint -- --graph      # workspace call graph on stdout
//! cargo run -p doe-lint -- --graph-out results/callgraph.json
//! cargo run -p doe-lint -- --baseline results/doe-lint.json
//! cargo run -p doe-lint -- --root /path/to/workspace
//! ```
//!
//! `--baseline FILE` turns the run into a *regression gate*: findings
//! whose stable fingerprint already appears in the baseline report are
//! counted as known debt — they stay in the written artifacts (the
//! `--json-out`/`--sarif` files always describe the full state of the
//! workspace) but are dropped from console output and from the exit
//! code, which is non-zero only when a NEW finding appears.
//!
//! Exit codes: 0 contract holds (or no regression vs. baseline),
//! 1 unsuppressed (new) findings, 2 usage, configuration (stale policy
//! entry) or I/O error.

use doe_lint::{analyze_workspace, find_root, graph, policy::Policy, report, Report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    graph: bool,
    graph_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        json_out: None,
        graph: false,
        graph_out: None,
        sarif_out: None,
        baseline: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--graph" => args.graph = true,
            "--quiet" | "-q" => args.quiet = true,
            "--json-out" => {
                let path = it.next().ok_or("--json-out needs a path")?;
                args.json_out = Some(PathBuf::from(path));
            }
            "--graph-out" => {
                let path = it.next().ok_or("--graph-out needs a path")?;
                args.graph_out = Some(PathBuf::from(path));
            }
            "--sarif" => {
                let path = it.next().ok_or("--sarif needs a path")?;
                args.sarif_out = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let path = it.next().ok_or("--baseline needs a path")?;
                args.baseline = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err("usage: doe-lint [--root DIR] [--json] [--json-out FILE] \
                     [--sarif FILE] [--baseline FILE] [--graph] [--graph-out FILE] \
                     [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn write_out(path: &PathBuf, content: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("{}: {e}", path.display()))
}

/// Extract the fingerprints recorded in a v4 baseline report. A plain
/// substring scan — the report is our own deterministic output, and
/// fingerprints never contain an unescaped `"`.
fn baseline_fingerprints(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"fingerprint\": \"") {
        rest = &rest[i + "\"fingerprint\": \"".len()..];
        if let Some(end) = rest.find('"') {
            out.push(rest[..end].to_string());
            rest = &rest[end..];
        }
    }
    out
}

/// Drop findings whose fingerprint appears in the baseline, keeping
/// only regressions.
fn regressions_vs(rep: &Report, known: &[String]) -> Report {
    Report {
        findings: rep
            .findings
            .iter()
            .filter(|f| !known.iter().any(|k| *k == report::fingerprint(f)))
            .cloned()
            .collect(),
        suppressed: rep.suppressed.clone(),
        files_scanned: rep.files_scanned,
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_root(&cwd).ok_or("no lint.toml found between here and filesystem root")?
        }
    };
    let policy_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("{}: {e}", root.join("lint.toml").display()))?;
    let policy = Policy::parse(&policy_text)?;
    let analysis = analyze_workspace(&root, &policy).map_err(|e| format!("scan failed: {e}"))?;
    let rep = &analysis.report;

    // Artifacts always describe the full workspace state, baseline or not.
    if let Some(path) = &args.json_out {
        write_out(path, &report::json(rep))?;
    }
    if let Some(path) = &args.sarif_out {
        write_out(path, &report::sarif(rep))?;
    }
    if let Some(path) = &args.graph_out {
        write_out(path, &graph::to_json(&analysis.graph))?;
    }

    // Console output and exit code see only regressions when a baseline
    // is in force.
    let gated: Report;
    let visible = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("baseline {}: {e}", path.display()))?;
            gated = regressions_vs(rep, &baseline_fingerprints(&text));
            &gated
        }
        None => rep,
    };

    if args.graph {
        print!("{}", graph::to_json(&analysis.graph));
    } else if args.json {
        print!("{}", report::json(visible));
    } else if !args.quiet || !visible.clean() {
        print!("{}", report::human(visible));
    }
    Ok(if visible.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("doe-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
