//! Whole-program effect summaries: the bottom-up fixpoint.
//!
//! Every function gets an [`EffectSummary`] — a point in a finite
//! join-semilattice {panics, allocates, blocks, reads-wall-clock,
//! mutates-shared-dataplane, rng-escapes, reads-shard-identity,
//! held-lock-set, max-self-recursion} — computed callee-first over the
//! call graph's SCC condensation:
//!
//! 1. Tarjan over **all** edges yields the condensation in reverse
//!    topological emission order (an SCC is emitted only after every
//!    SCC it calls into), so one pass over components in emission order
//!    sees each callee's final summary before any caller joins it.
//! 2. Within an SCC (mutual or self recursion) the members iterate to a
//!    fixpoint: the join is monotone and the lattice finite, so the
//!    loop terminates — in practice in two rounds.
//! 3. A second Tarjan over **exact** edges only (see
//!    [`crate::graph::Edge::exact`]) computes the recursion facts D014
//!    consumes. The broad method fan-out over-approximates calls so
//!    heavily that any two same-named methods would read as "mutual
//!    recursion"; exact edges cannot fabricate a cycle.
//!
//! Boundary clamp: functions owned by `ShardCtx` are the sanctioned
//! per-shard mutation channel (same exemption D006 applies), so their
//! summaries publish `mutates_shared = false` — effects behind the
//! boundary are proved irrelevant to callers, by construction rather
//! than by pragma. The held-lock-set joins over exact edges only for
//! the same reason the recursion pass does: a lock attributed through a
//! name collision would fabricate lock-order cycles.

use crate::graph::{CallGraph, FnNode};
use crate::parser::HazardKind;
use std::collections::BTreeSet;

/// The per-function point in the effect lattice. All fields join by
/// field-wise OR / set-union / max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// A panic site is (transitively) reachable.
    pub panics: bool,
    /// An allocation site is reachable.
    pub allocates: bool,
    /// A blocking operation is reachable.
    pub blocks: bool,
    /// An `Instant`/`SystemTime` mention is reachable.
    pub wall_clock: bool,
    /// A shared-state mutation is reachable outside the `ShardCtx`
    /// boundary.
    pub mutates_shared: bool,
    /// An RNG-confinement dataflow finding (D010) sits on a reachable
    /// function.
    pub rng_escapes: bool,
    /// A shard/worker/thread identity value is read on a reachable
    /// function.
    pub shard_ident: bool,
    /// Lock identities (transitively) acquired, joined over exact edges.
    pub lock_set: BTreeSet<String>,
    /// Size of this function's cyclic SCC over exact edges: 0 when the
    /// function cannot recurse, 1 for direct self-recursion, n for a
    /// mutual-recursion cycle of n functions.
    pub recursion: u32,
    /// Condensation component id (all-edge Tarjan emission order) —
    /// provenance for findings: which component the verdict was
    /// computed in.
    pub scc: usize,
}

/// The fixpoint result for a whole graph.
#[derive(Debug, Default)]
pub struct Summaries {
    /// One summary per graph node, indexed like `graph.nodes`.
    pub per_fn: Vec<EffectSummary>,
    /// Cyclic SCCs over exact edges (size > 1, or a single node with an
    /// exact self-edge), members sorted. D014 walks these.
    pub exact_sccs: Vec<Vec<usize>>,
}

/// Is this node inside the sanctioned per-shard mutation boundary?
pub fn exempt(node: &FnNode) -> bool {
    node.owner.as_deref() == Some("ShardCtx")
}

/// Compute every function's effect summary.
pub fn compute(graph: &CallGraph) -> Summaries {
    let n = graph.nodes.len();
    let (comp_of, comps) = tarjan(n, |u| graph.adj[u].iter().map(|&(v, _, _)| v));

    let mut per_fn: Vec<EffectSummary> = graph.nodes.iter().map(local_bits).collect();
    for (i, s) in per_fn.iter_mut().enumerate() {
        s.scc = comp_of[i];
        if exempt(&graph.nodes[i]) {
            s.mutates_shared = false;
        }
    }

    // Emission order is reverse topological: every callee component is
    // final before its callers join it. Within a component, iterate.
    for members in &comps {
        loop {
            let mut changed = false;
            for &u in members {
                let mut s = per_fn[u].clone();
                for &(v, _, exact) in &graph.adj[u] {
                    let callee = &per_fn[v];
                    s.panics |= callee.panics;
                    s.allocates |= callee.allocates;
                    s.blocks |= callee.blocks;
                    s.wall_clock |= callee.wall_clock;
                    s.rng_escapes |= callee.rng_escapes;
                    s.shard_ident |= callee.shard_ident;
                    if !exempt(&graph.nodes[v]) {
                        s.mutates_shared |= callee.mutates_shared;
                    }
                    if exact {
                        for l in &callee.lock_set {
                            if !s.lock_set.contains(l) {
                                s.lock_set.insert(l.clone());
                            }
                        }
                    }
                }
                if exempt(&graph.nodes[u]) {
                    s.mutates_shared = false;
                }
                if s != per_fn[u] {
                    per_fn[u] = s;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Recursion facts over exact edges only.
    let (exact_comp, exact_comps) = tarjan(n, |u| {
        graph.adj[u]
            .iter()
            .filter(|&&(_, _, exact)| exact)
            .map(|&(v, _, _)| v)
    });
    let mut exact_sccs: Vec<Vec<usize>> = Vec::new();
    for members in &exact_comps {
        let cyclic = members.len() > 1
            || members
                .iter()
                .any(|&u| graph.adj[u].iter().any(|&(v, _, exact)| exact && v == u));
        if !cyclic {
            continue;
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        for &u in &sorted {
            per_fn[u].recursion = sorted.len() as u32;
        }
        exact_sccs.push(sorted);
    }
    let _ = exact_comp;
    exact_sccs.sort();

    Summaries { per_fn, exact_sccs }
}

/// A node's own contribution to the lattice, before propagation.
fn local_bits(node: &FnNode) -> EffectSummary {
    let mut s = EffectSummary::default();
    for h in &node.hazards {
        match h.kind {
            HazardKind::Panic => s.panics = true,
            HazardKind::Alloc => s.allocates = true,
            HazardKind::Blocking => s.blocks = true,
            HazardKind::SharedMut => s.mutates_shared = true,
            HazardKind::ShardIdent => s.shard_ident = true,
            HazardKind::FloatAccum => {}
        }
    }
    s.wall_clock = node.wall_clock;
    s.rng_escapes = node.flows.iter().any(|f| f.kind.rule() == "D010");
    for site in &node.lock_sites {
        if !s.lock_set.contains(&site.id) {
            s.lock_set.insert(site.id.clone());
        }
    }
    s
}

/// Iterative Tarjan SCC. Returns (component id per node, components in
/// emission order). Emission order is reverse topological over the
/// condensation: a component is emitted before every component that can
/// reach it, i.e. callees first. Deterministic: nodes are seeded in
/// index order and successors visited in adjacency order.
fn tarjan<I, F>(n: usize, succ: F) -> (Vec<usize>, Vec<Vec<usize>>)
where
    I: Iterator<Item = usize>,
    F: Fn(usize) -> I,
{
    const NONE: usize = usize::MAX;
    let mut index = vec![NONE; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![NONE; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, successor list, cursor).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != NONE {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, succ(root).collect(), 0));
        while let Some(frame) = frames.last_mut() {
            let u = frame.0;
            if frame.2 < frame.1.len() {
                let v = frame.1[frame.2];
                frame.2 += 1;
                if index[v] == NONE {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push((v, succ(v).collect(), 0));
                } else if on_stack[v] {
                    low[u] = low[u].min(index[v]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[u]);
                }
                if low[u] == index[u] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = comps.len();
                        members.push(w);
                        if w == u {
                            break;
                        }
                    }
                    members.reverse();
                    comps.push(members);
                }
            }
        }
    }
    (comp_of, comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceItems};
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::rules::test_mask;

    fn graph_of(src: &str) -> CallGraph {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = Vec::new();
        let mut parsed = parse_file(&module, &lexed.toks, &mask);
        crate::dataflow::analyze(&lexed.toks, &mut parsed);
        build(&[SourceItems {
            crate_key: "a".to_string(),
            crate_name: "a".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            module,
            parsed,
        }])
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn effects_propagate_bottom_up() {
        let g = graph_of(
            r#"
            pub fn top(x: Option<u8>) { mid(x); }
            fn mid(x: Option<u8>) { leaf(x); }
            fn leaf(x: Option<u8>) -> u8 { x.unwrap() }
            pub fn bystander() {}
            "#,
        );
        let s = compute(&g);
        assert!(s.per_fn[idx(&g, "leaf")].panics);
        assert!(s.per_fn[idx(&g, "mid")].panics);
        assert!(s.per_fn[idx(&g, "top")].panics);
        assert!(!s.per_fn[idx(&g, "bystander")].panics);
    }

    #[test]
    fn every_node_gets_a_summary() {
        let g = graph_of("pub fn a() { b(); } fn b() {} fn c() { c(); }");
        let s = compute(&g);
        assert_eq!(s.per_fn.len(), g.nodes.len());
    }

    #[test]
    fn self_recursion_reaches_fixpoint() {
        let g = graph_of(
            r#"
            pub fn walk(n: u64) -> u64 {
                let s = format!("{n}");
                if n == 0 { 0 } else { walk(n - 1) }
            }
            "#,
        );
        let s = compute(&g);
        let w = &s.per_fn[idx(&g, "walk")];
        assert!(w.allocates);
        assert_eq!(w.recursion, 1);
    }

    #[test]
    fn mutual_recursion_joins_both_members() {
        let g = graph_of(
            r#"
            pub fn even(n: u64) -> bool { if n == 0 { true } else { odd(n - 1) } }
            pub fn odd(n: u64) -> bool {
                let s = format!("{n}");
                if n == 0 { false } else { even(n - 1) }
            }
            "#,
        );
        let s = compute(&g);
        // The alloc in `odd` reaches `even` through the cycle.
        assert!(s.per_fn[idx(&g, "even")].allocates);
        assert!(s.per_fn[idx(&g, "odd")].allocates);
        assert_eq!(s.per_fn[idx(&g, "even")].recursion, 2);
        assert_eq!(s.per_fn[idx(&g, "odd")].recursion, 2);
        assert_eq!(s.exact_sccs.len(), 1);
        assert_eq!(s.exact_sccs[0].len(), 2);
    }

    #[test]
    fn diamond_join_unions_both_branches() {
        let g = graph_of(
            r#"
            pub fn top(x: Option<u8>) { left(x); right(); }
            fn left(x: Option<u8>) -> u8 { x.unwrap() }
            fn right() -> String { format!("r") }
            "#,
        );
        let s = compute(&g);
        let t = &s.per_fn[idx(&g, "top")];
        assert!(t.panics && t.allocates);
        assert!(!s.per_fn[idx(&g, "left")].allocates);
        assert!(!s.per_fn[idx(&g, "right")].panics);
    }

    #[test]
    fn lock_sets_union_through_exact_calls() {
        let g = graph_of(
            r#"
            struct R;
            impl R {
                fn outer(&self) {
                    let a = self.alpha.lock();
                    crate::inner(self);
                }
            }
            pub fn inner(r: &R) { let b = r.beta.lock(); }
            "#,
        );
        let s = compute(&g);
        let outer = &s.per_fn[idx(&g, "outer")];
        assert!(outer.lock_set.contains("R.alpha"), "{:?}", outer.lock_set);
        assert!(outer.lock_set.contains("r.beta"), "{:?}", outer.lock_set);
        let inner = &s.per_fn[idx(&g, "inner")];
        assert!(!inner.lock_set.contains("R.alpha"));
    }

    #[test]
    fn shardctx_boundary_clamps_shared_mutation() {
        let g = graph_of(
            r#"
            pub struct ShardCtx { n: u64 }
            impl ShardCtx {
                pub fn charge(&self, c: &AtomicU64) { bump(c); }
            }
            fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
            pub fn runner(ctx: &ShardCtx, c: &AtomicU64) { ctx.charge(c); }
            "#,
        );
        let s = compute(&g);
        assert!(s.per_fn[idx(&g, "bump")].mutates_shared);
        // The boundary clamps its own summary...
        assert!(!s.per_fn[idx(&g, "charge")].mutates_shared);
        // ...so the runner above it stays clean.
        assert!(!s.per_fn[idx(&g, "runner")].mutates_shared);
    }

    #[test]
    fn inexact_edges_do_not_fabricate_recursion() {
        // `a.step()` fans out to every `step`; if inexact edges fed the
        // recursion pass, A::step -> B::step -> A::step would read as a
        // cycle.
        let g = graph_of(
            r#"
            struct A;
            struct B;
            impl A { fn step(&self, b: &B) { b.step(self); } }
            impl B { fn step(&self, a: &A) { a.step(self); } }
            "#,
        );
        let s = compute(&g);
        assert!(s.exact_sccs.is_empty(), "{:?}", s.exact_sccs);
        assert!(s.per_fn.iter().all(|f| f.recursion == 0));
    }
}
