//! # doe-lint — determinism & hygiene analyzer
//!
//! The sharded measurement engine's headline guarantee is that results
//! are bit-identical for any shard count (see `DESIGN.md` §"Determinism
//! contract"). That guarantee is enforced here, mechanically, rather
//! than remembered: a dependency-free lexer walks every workspace crate
//! and flags constructs that would let wall-clock time, ambient entropy
//! or hash-iteration order leak into rendered tables and figures, and a
//! whole-workspace call graph (see [`graph`]) proves the transitive
//! properties a single file cannot show.
//!
//! Rules (see [`rules::RULES`]):
//!
//! * **D001** — no `std::time::{Instant, SystemTime}`, `thread_rng`,
//!   `rand::random` or `from_entropy` in library code.
//! * **D002** — no `HashMap`/`HashSet` in crates whose output reaches
//!   reports or merge paths.
//! * **D003** — no `println!`/`eprintln!` (or `print!`/`eprint!`/`dbg!`)
//!   in library code.
//! * **D004** — no `.unwrap()`/`.expect()` on protocol paths.
//! * **D005** — no narrowing `as` casts in address-space indexing.
//! * **D006** — no shared-state mutation transitively reachable from the
//!   sharded entry points, except through `ShardCtx` (interprocedural).
//! * **D007** — no panic site transitively reachable from the protocol
//!   entry points (interprocedural; the transitive closure of D004).
//! * **D008** — no float accumulation transitively reachable from the
//!   shard-merge entry points (interprocedural).
//! * **D009** — no blocking operation (sleeps, channel receives, real
//!   I/O, lock-in-loop) reachable from the event-machine step entry
//!   points (interprocedural).
//! * **D010** — per-machine RNG confinement: `swap_rng` paired on all
//!   exit paths, and no RNG-derived value flowing into shared
//!   `DataPlane` writes (interprocedural + dataflow, see [`dataflow`]).
//! * **D011** — virtual-time unit hygiene: no raw integer literal or
//!   `std::time::Duration` flowing into `sched` deadline APIs except
//!   through `SimInstant`/`SimDuration` (dataflow).
//! * **D012** — no allocation site reachable from the telemetry
//!   hot-path entry points (interprocedural).
//! * **D013** — consistent lock-acquisition order: the lock-order graph
//!   over the `[summary] lock_entries` cone must be acyclic (see
//!   [`lockorder`]).
//! * **D014** — bounded recursion on protocol decode/encode paths:
//!   every reachable recursion cycle must carry a fuel/depth guard.
//! * **D015** — shard-identity independence: no shard/worker/thread
//!   identity value read on a merge path.
//!
//! The interprocedural rules are backed by a bottom-up effect-summary
//! fixpoint over the call-graph condensation (see [`summary`]): each
//! function gets a join-semilattice summary (panics, allocates, blocks,
//! mutates-shared, held-lock-set, …) propagated callee-to-caller, and
//! findings carry their summary provenance.
//!
//! Scope comes from `lint.toml` at the workspace root; per-site escape
//! hatches are `// doe-lint: allow(D00x) — <reason>` pragmas with a
//! mandatory reason. A pragma that suppresses nothing is itself an error
//! (**P004**) — stale pragmas hide contract erosion. Binaries
//! (`src/bin/`, `main.rs`), `tests/`, `benches/`, `examples/` and
//! `#[cfg(test)]` items are exempt by construction.

pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod lockorder;
pub mod parser;
pub mod policy;
pub mod pragma;
pub mod reach;
pub mod report;
pub mod rules;
pub mod summary;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Diagnostic severity. Only errors exist today; the enum keeps the
/// JSON schema forward-compatible with advisory rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
}

/// One unsuppressed diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D00x` contract rules, `P00x` pragma hygiene).
    pub rule: String,
    /// Explanation and remediation.
    pub message: String,
    /// Severity (always [`Severity::Error`] today).
    pub severity: Severity,
    /// For interprocedural rules: the call chain from an entry point to
    /// the hazard site, as `fn (file:line)` hops. Empty for token rules.
    pub chain: Vec<String>,
    /// For dataflow rules (D010/D011): the intraprocedural def-use steps
    /// from taint source to sink, in order. Empty otherwise.
    pub flow: Vec<String>,
    /// For interprocedural rules: which effect-summary bit convicted the
    /// finding, in which condensation component, over how many frames.
    /// `None` for token rules.
    pub summary: Option<reach::SummaryNote>,
}

/// A finding that a pragma suppressed, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// The pragma's mandatory justification.
    pub reason: String,
}

/// Outcome of a whole-workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings; non-empty means a failing run.
    pub findings: Vec<Finding>,
    /// Suppressed findings with their recorded reasons.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace satisfies the contract.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Outcome of linting a single source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings (contract violations and pragma errors,
    /// including stale pragmas — P004).
    pub findings: Vec<Finding>,
    /// Suppressed findings.
    pub suppressed: Vec<Suppressed>,
}

/// A rule hit before pragma settlement.
struct RawHit {
    line: u32,
    rule: String,
    message: String,
    chain: Vec<String>,
    flow: Vec<String>,
    summary: Option<reach::SummaryNote>,
}

/// Per-file pragma bookkeeping: parse errors, plus each pragma resolved
/// to the code line it governs.
struct PragmaSlots<'a> {
    parse_errors: Vec<Finding>,
    /// (governed line, pragma, used)
    targeted: Vec<(u32, &'a pragma::Pragma, bool)>,
    /// Pragma lines with no code line to govern.
    orphans: Vec<u32>,
}

fn pragma_slots<'a>(
    file: &str,
    pragmas: &'a [pragma::Pragma],
    pragma_errors: Vec<pragma::PragmaError>,
    test_lines: &BTreeSet<u32>,
    code_lines: &BTreeSet<u32>,
) -> PragmaSlots<'a> {
    let mut slots = PragmaSlots {
        parse_errors: Vec::new(),
        targeted: Vec::new(),
        orphans: Vec::new(),
    };
    for e in pragma_errors {
        if test_lines.contains(&e.line) {
            continue;
        }
        slots.parse_errors.push(Finding {
            file: file.to_string(),
            line: e.line,
            rule: e.rule.to_string(),
            message: e.message,
            severity: Severity::Error,
            chain: Vec::new(),
            flow: Vec::new(),
            summary: None,
        });
    }
    // Resolve each pragma to the line it governs: its own line when code
    // shares it, otherwise the next line that carries code.
    for p in pragmas {
        if test_lines.contains(&p.line) {
            continue;
        }
        let target = if code_lines.contains(&p.line) {
            Some(p.line)
        } else {
            code_lines.range(p.line + 1..).next().copied()
        };
        match target {
            Some(t) => slots.targeted.push((t, p, false)),
            None => slots.orphans.push(p.line),
        }
    }
    slots
}

/// Match raw hits against pragma slots: suppressed or reported, then
/// stale pragmas become P004 findings.
fn settle(file: &str, raw: Vec<RawHit>, mut slots: PragmaSlots<'_>) -> FileOutcome {
    let mut out = FileOutcome {
        findings: slots.parse_errors.drain(..).collect(),
        suppressed: Vec::new(),
    };
    for hit in raw {
        let slot = slots
            .targeted
            .iter_mut()
            .find(|(line, p, _)| *line == hit.line && p.rules.contains(&hit.rule));
        match slot {
            Some((_, p, used)) => {
                *used = true;
                out.suppressed.push(Suppressed {
                    file: file.to_string(),
                    line: hit.line,
                    rule: hit.rule,
                    reason: p.reason.clone(),
                });
            }
            None => out.findings.push(Finding {
                file: file.to_string(),
                line: hit.line,
                rule: hit.rule,
                message: hit.message,
                severity: Severity::Error,
                chain: hit.chain,
                flow: hit.flow,
                summary: hit.summary,
            }),
        }
    }
    let stale = slots
        .orphans
        .iter()
        .copied()
        .chain(
            slots
                .targeted
                .iter()
                .filter(|(_, _, used)| !used)
                .map(|(_, p, _)| p.line),
        )
        .collect::<BTreeSet<u32>>();
    for line in stale {
        out.findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "P004".to_string(),
            message: "doe-lint pragma suppresses nothing — delete it, or fix its \
                      rule list to match the finding it is meant to cover"
                .to_string(),
            severity: Severity::Error,
            chain: Vec::new(),
            flow: Vec::new(),
            summary: None,
        });
    }
    out.findings
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Lint one source text under the given token rules. `file` is used only
/// for labelling findings. Interprocedural rules need the whole
/// workspace — see [`analyze_workspace`].
pub fn lint_source(file: &str, src: &str, enabled: &[String]) -> FileOutcome {
    let lexed = lexer::lex(src);
    let mask = rules::test_mask(&lexed.toks);
    let test_lines: BTreeSet<u32> = lexed
        .toks
        .iter()
        .zip(&mask)
        .filter(|(_, m)| **m)
        .map(|(t, _)| t.line)
        .collect();
    let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let (pragmas, pragma_errors) = pragma::parse(&lexed.comments);
    let slots = pragma_slots(file, &pragmas, pragma_errors, &test_lines, &code_lines);
    let raw = rules::scan(&lexed.toks, &mask, |r| enabled.iter().any(|e| e == r))
        .into_iter()
        .map(|f| RawHit {
            line: f.line,
            rule: f.rule.to_string(),
            message: f.message,
            chain: Vec::new(),
            flow: Vec::new(),
            summary: None,
        })
        .collect();
    settle(file, raw, slots)
}

/// A library source file selected for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Policy key: directory name under `crates/`, or `root` for the
    /// workspace's umbrella package.
    pub crate_key: String,
    /// Path relative to the crate root (`src/net.rs`).
    pub rel_path: String,
    /// Path relative to the workspace root (for display).
    pub display_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Discover the library sources of every workspace crate, in a stable
/// order. Binaries, tests, benches and examples are excluded — the
/// contract governs code whose effects reach merged, rendered output.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut crate_dirs: Vec<(String, PathBuf)> = vec![("root".to_string(), root.to_path_buf())];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            if entry.path().is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            let dir = crates.join(&name);
            crate_dirs.push((name, dir));
        }
    }
    for (key, dir) in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for abs in files {
            let name = abs.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "main.rs" || name == "build.rs" {
                continue;
            }
            let rel = abs.strip_prefix(&dir).unwrap_or(&abs);
            if rel.components().any(|c| c.as_os_str() == "bin") {
                continue;
            }
            let display = abs.strip_prefix(root).unwrap_or(&abs);
            out.push(SourceFile {
                crate_key: key.clone(),
                rel_path: path_to_slash(rel),
                display_path: path_to_slash(display),
                abs_path: abs,
            });
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn path_to_slash(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The module path a library file contributes: `src/lib.rs` → ``[]``,
/// `src/sweep.rs` → `["sweep"]`, `src/a/mod.rs` → `["a"]`,
/// `src/a/b.rs` → `["a", "b"]`.
pub fn module_of(rel_path: &str) -> Vec<String> {
    let mut segs: Vec<&str> = rel_path.split('/').collect();
    if segs.first() == Some(&"src") {
        segs.remove(0);
    }
    let Some(last) = segs.pop() else {
        return Vec::new();
    };
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    let mut out: Vec<String> = segs.iter().map(|s| s.to_string()).collect();
    if stem != "lib" && stem != "mod" {
        out.push(stem.to_string());
    }
    out
}

/// Library names of every workspace crate, from each `Cargo.toml`:
/// `[lib] name` when present, else the package name with `-` → `_`.
pub fn crate_lib_names(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let mut dirs: Vec<(String, PathBuf)> = vec![("root".to_string(), root.to_path_buf())];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            if entry.path().is_dir() {
                dirs.push((
                    entry.file_name().to_string_lossy().into_owned(),
                    entry.path(),
                ));
            }
        }
    }
    for (key, dir) in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        out.insert(key, lib_name_from_manifest(&text));
    }
    Ok(out)
}

fn lib_name_from_manifest(text: &str) -> String {
    let mut section = String::new();
    let mut package = String::new();
    let mut lib = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(inner) = line.strip_prefix('[') {
            section = inner.trim_end_matches(']').to_string();
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == "name" {
                let v = v.trim().trim_matches('"').to_string();
                match section.as_str() {
                    "package" => package = v,
                    "lib" => lib = v,
                    _ => {}
                }
            }
        }
    }
    if !lib.is_empty() {
        lib
    } else {
        package.replace('-', "_")
    }
}

/// A loaded source file ready for analysis.
#[derive(Debug)]
pub struct LoadedFile {
    /// Where the file lives.
    pub file: SourceFile,
    /// Its full text.
    pub src: String,
}

/// Result of a whole-workspace analysis: the report plus the call graph
/// it was proved against.
#[derive(Debug)]
pub struct Analysis {
    /// Findings, suppressions and counts.
    pub report: Report,
    /// The workspace call graph (for `--graph` / `callgraph.json`).
    pub graph: graph::CallGraph,
    /// Effect summaries for every function in the graph, at fixpoint.
    pub summaries: summary::Summaries,
}

/// Analyze loaded sources: token rules per file, then the call-graph
/// rules across all of them. `crate_names` maps policy keys to library
/// names (see [`crate_lib_names`]). Fails on configuration errors —
/// a `[graph]` entry that matches no function.
pub fn analyze(
    files: &[LoadedFile],
    policy: &policy::Policy,
    crate_names: &BTreeMap<String, String>,
) -> Result<Analysis, String> {
    struct Prepped<'a> {
        file: &'a SourceFile,
        slots_pragmas: Vec<pragma::Pragma>,
        slots_errors: Vec<pragma::PragmaError>,
        test_lines: BTreeSet<u32>,
        code_lines: BTreeSet<u32>,
        raw: Vec<RawHit>,
    }

    let mut prepped: Vec<Prepped<'_>> = Vec::new();
    let mut graph_sources: Vec<graph::SourceItems> = Vec::new();
    for lf in files {
        let enabled = policy.rules_for(&lf.file.crate_key, &lf.file.rel_path);
        let lexed = lexer::lex(&lf.src);
        let mask = rules::test_mask(&lexed.toks);
        let test_lines: BTreeSet<u32> = lexed
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.line)
            .collect();
        let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
        let (pragmas, pragma_errors) = pragma::parse(&lexed.comments);
        let raw = rules::scan(&lexed.toks, &mask, |r| enabled.iter().any(|e| e == r))
            .into_iter()
            .map(|f| RawHit {
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                chain: Vec::new(),
                flow: Vec::new(),
                summary: None,
            })
            .collect();
        let module = module_of(&lf.file.rel_path);
        let crate_name = crate_names
            .get(&lf.file.crate_key)
            .cloned()
            .unwrap_or_else(|| lf.file.crate_key.clone());
        let mut parsed = parser::parse_file(&module, &lexed.toks, &mask);
        dataflow::analyze(&lexed.toks, &mut parsed);
        graph_sources.push(graph::SourceItems {
            crate_key: lf.file.crate_key.clone(),
            crate_name,
            file: lf.file.display_path.clone(),
            module: module.clone(),
            parsed,
        });
        prepped.push(Prepped {
            file: &lf.file,
            slots_pragmas: pragmas,
            slots_errors: pragma_errors,
            test_lines,
            code_lines,
            raw,
        });
    }

    let callgraph = graph::build(&graph_sources);
    let summaries = summary::compute(&callgraph);
    let chain_findings = reach::check(
        &callgraph,
        &summaries,
        &policy.graph,
        &policy.dataflow,
        &policy.summary,
    )?;
    let mut per_file: BTreeMap<String, Vec<RawHit>> = BTreeMap::new();
    for f in chain_findings {
        per_file.entry(f.file.clone()).or_default().push(RawHit {
            line: f.line,
            rule: f.rule.to_string(),
            message: f.message,
            chain: f.chain,
            flow: f.flow,
            summary: f.summary,
        });
    }

    let mut report = Report::default();
    for p in prepped {
        let display = p.file.display_path.as_str();
        let mut raw = p.raw;
        if let Some(extra) = per_file.remove(display) {
            raw.extend(extra);
        }
        let slots = pragma_slots(
            display,
            &p.slots_pragmas,
            p.slots_errors,
            &p.test_lines,
            &p.code_lines,
        );
        let outcome = settle(display, raw, slots);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(Analysis {
        report,
        graph: callgraph,
        summaries,
    })
}

/// Load and analyze every library source under `root` with `policy`.
pub fn analyze_workspace(root: &Path, policy: &policy::Policy) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for file in discover(root)? {
        let src = fs::read_to_string(&file.abs_path)?;
        files.push(LoadedFile { file, src });
    }
    let crate_names = crate_lib_names(root)?;
    analyze(&files, policy, &crate_names).map_err(io::Error::other)
}

/// Lint every library source under `root` with `policy`.
pub fn lint_workspace(root: &Path, policy: &policy::Policy) -> io::Result<Report> {
    Ok(analyze_workspace(root, policy)?.report)
}

/// Locate the workspace root by walking upward from `start` until a
/// directory containing `lint.toml` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
