//! # doe-lint — determinism & hygiene analyzer
//!
//! The sharded measurement engine's headline guarantee is that results
//! are bit-identical for any shard count (see `DESIGN.md` §"Determinism
//! contract"). That guarantee is enforced here, mechanically, rather
//! than remembered: a dependency-free lexer walks every workspace crate
//! and flags constructs that would let wall-clock time, ambient entropy
//! or hash-iteration order leak into rendered tables and figures.
//!
//! Rules (see [`rules::RULES`]):
//!
//! * **D001** — no `std::time::{Instant, SystemTime}`, `thread_rng`,
//!   `rand::random` or `from_entropy` in library code.
//! * **D002** — no `HashMap`/`HashSet` in crates whose output reaches
//!   reports or merge paths.
//! * **D003** — no `println!`/`eprintln!` (or `print!`/`eprint!`/`dbg!`)
//!   in library code.
//! * **D004** — no `.unwrap()`/`.expect()` on protocol paths.
//! * **D005** — no narrowing `as` casts in address-space indexing.
//!
//! Scope comes from `lint.toml` at the workspace root; per-site escape
//! hatches are `// doe-lint: allow(D00x) — <reason>` pragmas with a
//! mandatory reason. Binaries (`src/bin/`, `main.rs`), `tests/`,
//! `benches/`, `examples/` and `#[cfg(test)]` items are exempt by
//! construction.

pub mod lexer;
pub mod policy;
pub mod pragma;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Diagnostic severity. Only errors exist today; the enum keeps the
/// JSON schema forward-compatible with advisory rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
}

/// One unsuppressed diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D00x` contract rules, `P00x` pragma hygiene).
    pub rule: String,
    /// Explanation and remediation.
    pub message: String,
    /// Severity (always [`Severity::Error`] today).
    pub severity: Severity,
}

/// A finding that a pragma suppressed, kept for the audit trail.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// The pragma's mandatory justification.
    pub reason: String,
}

/// Outcome of a whole-workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings; non-empty means a failing run.
    pub findings: Vec<Finding>,
    /// Suppressed findings with their recorded reasons.
    pub suppressed: Vec<Suppressed>,
    /// Pragmas that suppressed nothing (reported as notes, not errors).
    pub unused_pragmas: Vec<(String, u32)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace satisfies the contract.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Outcome of linting a single source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings (contract violations and pragma errors).
    pub findings: Vec<Finding>,
    /// Suppressed findings.
    pub suppressed: Vec<Suppressed>,
    /// Lines of pragmas that matched nothing.
    pub unused_pragmas: Vec<u32>,
}

/// Lint one source text under the given rule set. `file` is used only
/// for labelling findings.
pub fn lint_source(file: &str, src: &str, enabled: &[String]) -> FileOutcome {
    let mut out = FileOutcome::default();
    let lexed = lexer::lex(src);
    let mask = rules::test_mask(&lexed.toks);

    // Lines covered by test-only items: pragmas there are inert.
    let test_lines: BTreeSet<u32> = lexed
        .toks
        .iter()
        .zip(&mask)
        .filter(|(_, m)| **m)
        .map(|(t, _)| t.line)
        .collect();

    let (pragmas, pragma_errors) = pragma::parse(&lexed.comments);
    for e in pragma_errors {
        if test_lines.contains(&e.line) {
            continue;
        }
        out.findings.push(Finding {
            file: file.to_string(),
            line: e.line,
            rule: e.rule.to_string(),
            message: e.message,
            severity: Severity::Error,
        });
    }

    // Resolve each pragma to the line it governs: its own line when code
    // shares it, otherwise the next line that carries code.
    let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let mut targeted: Vec<(u32, &pragma::Pragma, bool)> = Vec::new(); // (line, pragma, used)
    for p in &pragmas {
        if test_lines.contains(&p.line) {
            continue;
        }
        let target = if code_lines.contains(&p.line) {
            Some(p.line)
        } else {
            code_lines.range(p.line + 1..).next().copied()
        };
        match target {
            Some(t) => targeted.push((t, p, false)),
            None => out.unused_pragmas.push(p.line),
        }
    }

    let raw = rules::scan(&lexed.toks, &mask, |r| enabled.iter().any(|e| e == r));
    for f in raw {
        let slot = targeted
            .iter_mut()
            .find(|(line, p, _)| *line == f.line && p.rules.iter().any(|r| r == f.rule));
        match slot {
            Some((_, p, used)) => {
                *used = true;
                out.suppressed.push(Suppressed {
                    file: file.to_string(),
                    line: f.line,
                    rule: f.rule.to_string(),
                    reason: p.reason.clone(),
                });
            }
            None => out.findings.push(Finding {
                file: file.to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                severity: Severity::Error,
            }),
        }
    }

    for (_, p, used) in &targeted {
        if !used {
            out.unused_pragmas.push(p.line);
        }
    }
    out.unused_pragmas.sort_unstable();
    out
}

/// A library source file selected for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Policy key: directory name under `crates/`, or `root` for the
    /// workspace's umbrella package.
    pub crate_key: String,
    /// Path relative to the crate root (`src/net.rs`).
    pub rel_path: String,
    /// Path relative to the workspace root (for display).
    pub display_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Discover the library sources of every workspace crate, in a stable
/// order. Binaries, tests, benches and examples are excluded — the
/// contract governs code whose effects reach merged, rendered output.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut crate_dirs: Vec<(String, PathBuf)> = vec![("root".to_string(), root.to_path_buf())];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&crates)? {
            let entry = entry?;
            if entry.path().is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        for name in names {
            let dir = crates.join(&name);
            crate_dirs.push((name, dir));
        }
    }
    for (key, dir) in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for abs in files {
            let name = abs.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "main.rs" || name == "build.rs" {
                continue;
            }
            let rel = abs.strip_prefix(&dir).unwrap_or(&abs);
            if rel.components().any(|c| c.as_os_str() == "bin") {
                continue;
            }
            let display = abs.strip_prefix(root).unwrap_or(&abs);
            out.push(SourceFile {
                crate_key: key.clone(),
                rel_path: path_to_slash(rel),
                display_path: path_to_slash(display),
                abs_path: abs,
            });
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn path_to_slash(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every library source under `root` with `policy`.
pub fn lint_workspace(root: &Path, policy: &policy::Policy) -> io::Result<Report> {
    let mut report = Report::default();
    for file in discover(root)? {
        let enabled = policy.rules_for(&file.crate_key, &file.rel_path);
        // A file with no rules in force still gets pragma hygiene checks
        // skipped — nothing can be suppressed there.
        if enabled.is_empty() {
            continue;
        }
        let src = fs::read_to_string(&file.abs_path)?;
        let outcome = lint_source(&file.display_path, &src, &enabled);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.unused_pragmas.extend(
            outcome
                .unused_pragmas
                .into_iter()
                .map(|l| (file.display_path.clone(), l)),
        );
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Locate the workspace root by walking upward from `start` until a
/// directory containing `lint.toml` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("lint.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
