//! Item-level parsing on top of the token lexer.
//!
//! Extracts exactly as much structure as the interprocedural rules need:
//! `fn` items (free functions, inherent/trait-impl methods and trait
//! default methods) with their call expressions, plus `use` declarations
//! for alias resolution. No types, no expressions, no `syn` — the
//! extractor walks the token stream with a scope stack and records, for
//! every function body, (a) the paths and method names it calls and
//! (b) the hazard sites the graph rules care about: panic sites (D007),
//! interior-mutability writes (D006) and float accumulation (D008).
//!
//! The parser is deliberately conservative: where it cannot resolve a
//! construct it over-approximates (extra call edges) rather than dropping
//! information, so reachability verdicts err toward reporting.

use crate::lexer::{Tok, TokKind};

/// What kind of hazard a site is, one per interprocedural rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A construct that can panic at runtime (D007).
    Panic,
    /// An interior-mutability write or shared-state mutation (D006).
    SharedMut,
    /// Order-sensitive floating-point accumulation (D008).
    FloatAccum,
    /// An operation that blocks the calling thread (D009): sleeping,
    /// channel receives, synchronization waits, real I/O.
    Blocking,
    /// A heap allocation site (D012): `format!`, owned clones,
    /// `String`/`Vec`/`Box` construction.
    Alloc,
    /// A read of a shard-identity value (D015): `shard_id`, worker or
    /// thread indices — values that differ per worker and must never
    /// flow into data merged across shards.
    ShardIdent,
}

/// One hazard site inside a function body.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// 1-based source line.
    pub line: u32,
    /// Which rule family the site belongs to.
    pub kind: HazardKind,
    /// The construct, as written (`.unwrap()`, `panic!`, `.lock()`, ...).
    pub what: String,
}

/// One lock acquisition inside a function body, as the lock-order rule
/// (D013) sees it.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// 1-based source line of the `.lock()` call.
    pub line: u32,
    /// Lock identity: `Owner.field` for `self.field.lock()` receivers
    /// (the enclosing impl type names the instance), otherwise the
    /// receiver path as written (`cache.lock()` → `cache`).
    pub id: String,
    /// True when the guard is bound by a `let` in the same statement —
    /// the lock is held to end of scope, so later acquisitions in the
    /// same function happen *under* it. An unbound (temporary) guard
    /// dies at the end of its statement and only orders against locks
    /// taken in that same statement.
    pub bound: bool,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based source line of the callee name.
    pub line: u32,
    /// Path segments as written (`["PermutationShard", "new"]`); a single
    /// segment for method calls and bare calls.
    pub path: Vec<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// True when the receiver is literally `self` — lets the resolver
    /// prefer the enclosing impl's own methods.
    pub via_self: bool,
    /// Number of arguments at the call site, when the token stream lets
    /// it be counted unambiguously. `None` (generics or unparseable
    /// argument lists) disables arity narrowing for this call — the
    /// resolver falls back to the full same-name candidate set.
    pub arity: Option<usize>,
}

/// One function item with everything the graph needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Enclosing impl self-type or trait name, if any.
    pub owner: Option<String>,
    /// Module path within the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the item sits under `#[cfg(test)]`/`#[test]` — excluded
    /// from the call graph entirely.
    pub is_test: bool,
    /// True when the signature or body mentions `f32`/`f64`. Gates
    /// [`HazardKind::FloatAccum`]: `+=` on integers is the bread and
    /// butter of merge code and must not alarm.
    pub mentions_float: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<Call>,
    /// Hazard sites in the body, in source order.
    pub hazards: Vec<Hazard>,
    /// Declared parameter count, `self` excluded — pairs with
    /// [`Call::arity`] to narrow method-call resolution.
    pub arity: usize,
    /// Half-open token range of the body: first token after the opening
    /// `{` to the index of the closing `}`. The dataflow pass
    /// ([`crate::dataflow`]) re-walks this range.
    pub body: (usize, usize),
    /// Intraprocedural dataflow findings, attached after parsing by
    /// [`crate::dataflow::analyze`].
    pub flows: Vec<crate::dataflow::Flow>,
    /// Lock acquisitions in the body, in source order (D013).
    pub lock_sites: Vec<LockSite>,
    /// True when the function carries an explicit recursion bound: a
    /// parameter or compared/decremented local whose name mentions
    /// depth/fuel/budget/limit/remaining/hops/jumps/ttl (D014).
    pub recursion_guard: bool,
    /// True when the signature or body mentions `Instant`/`SystemTime` —
    /// the wall-clock bit of the effect summary.
    pub wall_clock: bool,
}

/// One `use` alias: `use a::b::c;` binds `c`, `use a::b as x;` binds `x`.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// Module path (within the crate) where the `use` appears.
    pub module: Vec<String>,
    /// The name the alias binds in that module.
    pub alias: String,
    /// Target path as written; the head may be `crate`/`self`/`super`, a
    /// sibling module or an external crate name.
    pub target: Vec<String>,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Use aliases in source order.
    pub uses: Vec<UseAlias>,
}

/// Constructs that abort on malformed runtime data. `assert!` family is
/// deliberately absent: assertions document invariants the caller
/// controls, and `debug_assert!` compiles out of release builds — the
/// D007 contract is about wire data and peer behaviour reaching an
/// abort, which is what `unwrap`/`expect`/`panic!` sites mean here.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Methods that write through shared references (interior mutability):
/// lock acquisition (the write is what the lock exists for), `RefCell`
/// borrows and atomic read-modify-write ops.
const SHARED_MUT_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Methods that block the calling thread until something else happens
/// (D009): channel receives, condvar waits, console reads. `.join()` is
/// deliberately absent — `str::join`/`Path::join` share the name and
/// would drown the signal; thread joins on event paths surface through
/// the `thread::sleep`/channel detectors that accompany them.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "read_line",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "wait_while",
];

/// Path-call suffixes that perform real (host) I/O or sleep (D009).
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("File", "open"),
    ("File", "create"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
    ("fs", "read_dir"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
    ("UdpSocket", "bind"),
    ("UnixStream", "connect"),
    ("io", "stdin"),
];

/// Allocation sites (D012). `String::new`/`Vec::new` are deliberately
/// absent (empty containers do not allocate until first growth), and
/// `Arc::clone`/`Rc::clone` path calls are refcount bumps. `.clone()`
/// stays in even though `Copy` types answer it for free: the hot-path
/// contract is "no owned clones", and a `Copy` clone reads as one.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "clone"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("String", "from"),
    ("String", "with_capacity"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Identifiers that name a shard/worker identity (D015). Reading one on
/// a merge path means per-worker layout can leak into merged data. The
/// names are deliberately specific — a bare `id` is ubiquitous and
/// would drown the rule.
const SHARD_IDENT_NAMES: &[&str] = &[
    "shard_id",
    "shard_idx",
    "shard_index",
    "worker_id",
    "worker_idx",
    "worker_index",
    "thread_id",
    "thread_idx",
];

/// Does an identifier read as an explicit recursion/fuel bound (D014)?
fn guard_name(s: &str) -> bool {
    const STEMS: &[&str] = &[
        "depth",
        "fuel",
        "budget",
        "limit",
        "remaining",
        "hops",
        "jumps",
        "ttl",
    ];
    STEMS.iter().any(|g| s.contains(g))
}

/// Keywords that look like call heads when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "where", "unsafe", "async", "await", "dyn", "pub", "const",
    "static", "type", "struct", "enum", "union", "use", "mod", "impl", "trait", "fn", "extern",
    "true", "false",
];

enum ScopeKind {
    Mod(String),
    Impl(String),
    Trait(String),
    Fn(usize),
    /// A `loop`/`while`/`for` body — `.lock()` acquired at loop depth
    /// > 0 is a blocking hazard (D009), not just a shared-mut one.
    Loop,
    Other,
}

struct Parser<'a> {
    toks: &'a [Tok],
    mask: &'a [bool],
    i: usize,
    scopes: Vec<ScopeKind>,
    file_module: Vec<String>,
    out: ParsedFile,
    /// Pending item header: the next `{` opens this scope.
    pending: Option<ScopeKind>,
    /// `.lock()` sites proven commutative (discarded-guard compound
    /// integer updates). Resolved in [`parse_file`] once the enclosing
    /// function's float mentions are final: a non-float commutative
    /// update is order-insensitive, so its SharedMut hazard is dropped.
    commutative: Vec<(usize, u32)>,
}

/// Parse one lexed file. `file_module` is the module path the file itself
/// contributes (`src/sweep.rs` → `["sweep"]`); `mask` is the test mask
/// from [`crate::rules::test_mask`].
pub fn parse_file(file_module: &[String], toks: &[Tok], mask: &[bool]) -> ParsedFile {
    let mut p = Parser {
        toks,
        mask,
        i: 0,
        scopes: Vec::new(),
        file_module: file_module.to_vec(),
        out: ParsedFile::default(),
        pending: None,
        commutative: Vec::new(),
    };
    p.run();
    let commutative = p.commutative;
    let mut parsed = p.out;
    for (idx, line) in commutative {
        // `self.counter.lock().field += k;` with no float in the fn: an
        // order-insensitive monotone update — not a shared-mutation
        // hazard. Remove exactly one `.lock()` site at that line so an
        // order-sensitive second lock on the same line keeps its hazard.
        if !parsed.fns[idx].mentions_float {
            let mut removed = false;
            parsed.fns[idx].hazards.retain(|h| {
                let hit = !removed
                    && h.line == line
                    && h.kind == HazardKind::SharedMut
                    && h.what == ".lock()";
                if hit {
                    removed = true;
                }
                !hit
            });
        }
    }
    for item in &mut parsed.fns {
        if !item.mentions_float {
            item.hazards.retain(|h| h.kind != HazardKind::FloatAccum);
        }
    }
    parsed
}

impl<'a> Parser<'a> {
    fn run(&mut self) {
        while self.i < self.toks.len() {
            let tok = &self.toks[self.i];
            match &tok.kind {
                TokKind::Punct('{') => {
                    let kind = self.pending.take().unwrap_or(ScopeKind::Other);
                    self.scopes.push(kind);
                    self.i += 1;
                }
                TokKind::Punct('}') => {
                    if let Some(ScopeKind::Fn(idx)) = self.scopes.pop() {
                        self.out.fns[idx].body.1 = self.i;
                    }
                    self.i += 1;
                }
                TokKind::Punct(';') => {
                    // A `;` before any `{` cancels a pending header
                    // (`mod x;`, trait method signatures, `impl Trait;`).
                    self.pending = None;
                    self.i += 1;
                }
                TokKind::Punct(op @ ('+' | '-' | '*' | '/'))
                    if self.toks.get(self.i + 1).is_some_and(|t| t.is_punct('=')) =>
                {
                    // Compound assignment. `->`/`>=`/`==` never reach here
                    // (different first punct); adjacency of `op` and `=` in
                    // the token stream only arises from `op=` in source.
                    if let Some(fn_idx) = self.current_fn() {
                        let what = format!("{op}=");
                        self.out.fns[fn_idx].hazards.push(Hazard {
                            line: tok.line,
                            kind: HazardKind::FloatAccum,
                            what,
                        });
                    }
                    self.i += 2;
                }
                TokKind::Ident(id) => {
                    let id = id.clone();
                    self.ident(&id);
                }
                _ => self.i += 1,
            }
        }
    }

    fn ident(&mut self, id: &str) {
        match id {
            "mod" => {
                if let Some(name) = self.toks.get(self.i + 1).and_then(|t| t.ident()) {
                    self.pending = Some(ScopeKind::Mod(name.to_string()));
                    self.i += 2;
                } else {
                    self.i += 1;
                }
            }
            "trait" if self.item_position() => {
                if let Some(name) = self.toks.get(self.i + 1).and_then(|t| t.ident()) {
                    self.pending = Some(ScopeKind::Trait(name.to_string()));
                    self.i += 2;
                    self.skip_header();
                } else {
                    self.i += 1;
                }
            }
            "impl" if self.item_position() => {
                self.i += 1;
                let ty = self.impl_self_type();
                self.pending = Some(ScopeKind::Impl(ty));
            }
            "fn" => {
                self.fn_item();
            }
            "use" if self.current_fn().is_none() => {
                self.i += 1;
                self.use_decl();
            }
            "loop" | "while" | "for" if self.current_fn().is_some() => {
                // The next `{` opens a loop body (conditions cannot carry
                // bare struct literals, so the first brace is the body).
                self.pending = Some(ScopeKind::Loop);
                self.i += 1;
            }
            _ => {
                if self.current_fn().is_some() {
                    self.body_ident(id);
                } else {
                    self.i += 1;
                }
            }
        }
    }

    /// Is the token at `self.i` in item position (vs. `impl Trait`/`dyn`
    /// type position)? Item keywords follow the start of file, a block
    /// boundary, an attribute, or visibility/qualifier keywords.
    fn item_position(&self) -> bool {
        let Some(prev) = self.i.checked_sub(1).map(|p| &self.toks[p]) else {
            return true;
        };
        match &prev.kind {
            TokKind::Punct('{' | '}' | ';' | ']' | ')') => true,
            TokKind::Ident(k) => matches!(k.as_str(), "pub" | "unsafe" | "default" | "crate"),
            _ => false,
        }
    }

    /// After `impl`, extract the self type — the last path segment at
    /// angle-bracket depth zero before the body (`impl Tr for a::b::Ty`
    /// → `Ty`, `impl Ty<T>` → `Ty`) — and leave `self.i` at the body `{`.
    fn impl_self_type(&mut self) -> String {
        let mut ty = String::new();
        let mut angle = 0i32;
        let mut in_where = false;
        while self.i < self.toks.len() {
            let tok = &self.toks[self.i];
            match &tok.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => {
                    // A `>` preceded by `-` is an arrow inside an `fn(..)`
                    // type parameter, not a generic close.
                    let arrow = self
                        .i
                        .checked_sub(1)
                        .is_some_and(|p| self.toks[p].is_punct('-'));
                    if !arrow {
                        angle -= 1;
                    }
                }
                TokKind::Punct('{') if angle <= 0 => break,
                TokKind::Punct(';') => break,
                TokKind::Ident(k) if k == "for" && angle == 0 => ty.clear(),
                TokKind::Ident(k) if k == "where" && angle == 0 => in_where = true,
                TokKind::Ident(seg) if angle == 0 && !in_where => ty = seg.clone(),
                _ => {}
            }
            self.i += 1;
        }
        ty
    }

    /// Skip trait-header bounds (`trait Foo: Bar<Baz> where ...`) up to
    /// the body `{` without treating bound idents as calls.
    fn skip_header(&mut self) {
        let mut angle = 0i32;
        while self.i < self.toks.len() {
            match &self.toks[self.i].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('{') if angle <= 0 => return,
                TokKind::Punct(';') => return,
                _ => {}
            }
            self.i += 1;
        }
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            ScopeKind::Fn(idx) => Some(*idx),
            _ => None,
        })
    }

    /// Loop nesting depth within the innermost function.
    fn loop_depth(&self) -> usize {
        let mut depth = 0usize;
        for s in self.scopes.iter().rev() {
            match s {
                ScopeKind::Loop => depth += 1,
                ScopeKind::Fn(_) => break,
                _ => {}
            }
        }
        depth
    }

    fn current_owner(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match s {
            ScopeKind::Impl(t) | ScopeKind::Trait(t) => Some(t.clone()),
            _ => None,
        })
    }

    fn current_module(&self) -> Vec<String> {
        let mut m = self.file_module.clone();
        for s in &self.scopes {
            if let ScopeKind::Mod(name) = s {
                m.push(name.clone());
            }
        }
        m
    }

    /// Handle a `fn` keyword: record the item and scan its signature to
    /// the body `{` (pushing a Fn scope) or `;` (no body).
    fn fn_item(&mut self) {
        let fn_line = self.toks[self.i].line;
        let is_test = self.mask.get(self.i).copied().unwrap_or(false);
        let Some(name) = self.toks.get(self.i + 1).and_then(|t| t.ident()) else {
            // `fn(` in type position (`fn(u8) -> u8`): not an item.
            self.i += 1;
            return;
        };
        let name = name.to_string();
        self.i += 2;
        // Scan the signature: body starts at the first `{` outside
        // parens/brackets. `->` is two puncts; treat a `>` preceded by `-`
        // as part of the arrow, not a generic close. Along the way, count
        // the declared parameters (first paren group, commas at depth 1
        // outside generics, `self` and trailing commas excluded).
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut sig_float = false;
        let mut sig_guard = false;
        let mut sig_clock = false;
        let mut commas = 0usize;
        let mut params_empty = true;
        let mut has_self = false;
        let mut before_first_sep = true;
        let mut params_done = false;
        while self.i < self.toks.len() {
            let tok = &self.toks[self.i];
            match &tok.kind {
                TokKind::Punct('(') => {
                    if paren == 0 && !params_done {
                        params_empty = self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(')'));
                    }
                    paren += 1;
                }
                TokKind::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        params_done = true;
                    }
                }
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => {
                    let arrow = self
                        .i
                        .checked_sub(1)
                        .is_some_and(|p| self.toks[p].is_punct('-'));
                    if !arrow {
                        angle -= 1;
                    }
                }
                TokKind::Punct(',') if paren == 1 && bracket == 0 && angle <= 0 && !params_done => {
                    before_first_sep = false;
                    if !self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(')')) {
                        commas += 1;
                    }
                }
                TokKind::Punct(':') if paren == 1 && angle <= 0 => before_first_sep = false,
                TokKind::Ident(s) if s == "f32" || s == "f64" => sig_float = true,
                TokKind::Ident(s) if s == "Instant" || s == "SystemTime" => sig_clock = true,
                TokKind::Ident(s)
                    if s == "self" && paren == 1 && !params_done && before_first_sep =>
                {
                    has_self = true;
                }
                // A parameter named like a bound (`depth: usize`,
                // `fuel: u32`) is an explicit recursion guard: the
                // caller hands the budget down (D014).
                TokKind::Ident(s)
                    if paren == 1
                        && angle <= 0
                        && !params_done
                        && guard_name(s)
                        && self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(':')) =>
                {
                    sig_guard = true;
                }
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    let params = if params_empty { 0 } else { commas + 1 };
                    let item = FnItem {
                        name,
                        owner: self.current_owner(),
                        module: self.current_module(),
                        line: fn_line,
                        is_test,
                        mentions_float: sig_float,
                        calls: Vec::new(),
                        hazards: Vec::new(),
                        arity: params.saturating_sub(usize::from(has_self)),
                        body: (self.i + 1, self.i + 1),
                        flows: Vec::new(),
                        lock_sites: Vec::new(),
                        recursion_guard: sig_guard,
                        wall_clock: sig_clock,
                    };
                    self.out.fns.push(item);
                    self.scopes.push(ScopeKind::Fn(self.out.fns.len() - 1));
                    self.i += 1;
                    return;
                }
                TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                    // Bodyless declaration (trait signature, extern).
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Parse a `use` declaration's tree, recording aliases, until `;`.
    fn use_decl(&mut self) {
        let module = self.current_module();
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&module, &mut prefix);
        // Consume through the terminating `;` if the tree walk stopped short.
        while self.i < self.toks.len() && !self.toks[self.i].is_punct(';') {
            self.i += 1;
        }
        self.i += 1;
    }

    fn use_tree(&mut self, module: &[String], prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.toks.get(self.i).map(|t| &t.kind) {
                Some(TokKind::Ident(seg)) => {
                    let seg = seg.clone();
                    self.i += 1;
                    if seg == "as" {
                        // `path as alias`
                        if let Some(alias) = self.toks.get(self.i).and_then(|t| t.ident()) {
                            self.out.uses.push(UseAlias {
                                module: module.to_vec(),
                                alias: alias.to_string(),
                                target: prefix.clone(),
                            });
                            self.i += 1;
                        }
                        prefix.truncate(depth_at_entry);
                        if !self.skip_use_comma() {
                            return;
                        }
                        continue;
                    }
                    if seg == "self" && !prefix.is_empty() {
                        // `use a::b::{self, ...}` binds `b`.
                        let alias = prefix.last().cloned().unwrap_or_default();
                        self.out.uses.push(UseAlias {
                            module: module.to_vec(),
                            alias,
                            target: prefix.clone(),
                        });
                        prefix.truncate(depth_at_entry);
                        if !self.skip_use_comma() {
                            return;
                        }
                        continue;
                    }
                    prefix.push(seg.clone());
                    if self.at_path_sep() {
                        self.i += 2;
                        continue;
                    }
                    // Leaf segment (possibly followed by `as`, handled above
                    // on the next loop turn).
                    if self.toks.get(self.i).and_then(|t| t.ident()) == Some("as") {
                        continue;
                    }
                    self.out.uses.push(UseAlias {
                        module: module.to_vec(),
                        alias: seg,
                        target: prefix.clone(),
                    });
                    prefix.truncate(depth_at_entry);
                    if !self.skip_use_comma() {
                        return;
                    }
                }
                Some(TokKind::Punct('{')) => {
                    self.i += 1;
                    self.use_tree(module, prefix);
                    // use_tree returns at `}`; consume it.
                    if self.toks.get(self.i).is_some_and(|t| t.is_punct('}')) {
                        self.i += 1;
                    }
                    prefix.truncate(depth_at_entry);
                    if !self.skip_use_comma() {
                        return;
                    }
                }
                Some(TokKind::Punct('*')) => {
                    // Glob import: no alias to record; the resolver falls
                    // back to suffix matching, which globs cannot defeat.
                    self.i += 1;
                    prefix.truncate(depth_at_entry);
                    if !self.skip_use_comma() {
                        return;
                    }
                }
                Some(TokKind::Punct('}')) | Some(TokKind::Punct(';')) | None => return,
                _ => {
                    self.i += 1;
                }
            }
        }
    }

    /// After a use-tree leaf: consume a `,` and report whether more
    /// siblings follow.
    fn skip_use_comma(&mut self) -> bool {
        if self.toks.get(self.i).is_some_and(|t| t.is_punct(',')) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn at_path_sep(&self) -> bool {
        self.toks.get(self.i).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(':'))
    }

    /// An identifier inside a function body: classify as macro, method
    /// call, path call or plain mention, and record hazards.
    fn body_ident(&mut self, id: &str) {
        let line = self.toks[self.i].line;
        let fn_idx = self.current_fn().expect("body_ident outside fn");
        let next_bang = self.toks.get(self.i + 1).is_some_and(|t| t.is_punct('!'));
        let prev_dot = self
            .i
            .checked_sub(1)
            .is_some_and(|p| self.toks[p].is_punct('.'));

        // A bound-named local used in a comparison or arithmetic update
        // (`depth > MAX`, `fuel -= 1`) is an explicit recursion guard.
        if guard_name(id) {
            let adj = |t: Option<&Tok>| {
                t.is_some_and(|t| matches!(t.kind, TokKind::Punct('>' | '<' | '+' | '-' | '=')))
            };
            if adj(self.i.checked_sub(1).map(|p| &self.toks[p])) || adj(self.toks.get(self.i + 1)) {
                self.out.fns[fn_idx].recursion_guard = true;
            }
        }
        // Shard-identity reads (D015): field access (`.shard_id`),
        // getter call (`.shard_id()`) or plain local/parameter use.
        if SHARD_IDENT_NAMES.contains(&id) {
            self.out.fns[fn_idx].hazards.push(Hazard {
                line,
                kind: HazardKind::ShardIdent,
                what: id.to_string(),
            });
        }

        if next_bang {
            if PANIC_MACROS.contains(&id) {
                self.out.fns[fn_idx].hazards.push(Hazard {
                    line,
                    kind: HazardKind::Panic,
                    what: format!("{id}!"),
                });
            }
            if ALLOC_MACROS.contains(&id) {
                self.out.fns[fn_idx].hazards.push(Hazard {
                    line,
                    kind: HazardKind::Alloc,
                    what: format!("{id}!"),
                });
            }
            self.i += 2;
            return;
        }

        if prev_dot {
            // `.name` — method call if `(` or `::<` follows.
            let called = self.call_follows(self.i + 1);
            if called {
                let via_self = self
                    .i
                    .checked_sub(2)
                    .is_some_and(|p| self.toks[p].ident() == Some("self"));
                if PANIC_METHODS.contains(&id) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Panic,
                        what: format!(".{id}()"),
                    });
                }
                if SHARED_MUT_METHODS.contains(&id) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::SharedMut,
                        what: format!(".{id}()"),
                    });
                }
                if BLOCKING_METHODS.contains(&id) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Blocking,
                        what: format!(".{id}()"),
                    });
                }
                if id == "lock" {
                    self.lock_site(fn_idx, line);
                }
                if id == "lock" && self.loop_depth() > 0 {
                    // Lock acquisition inside a loop: the canonical way an
                    // event handler stalls the dispatch loop under
                    // contention.
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Blocking,
                        what: ".lock() in loop".to_string(),
                    });
                }
                if ALLOC_METHODS.contains(&id) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Alloc,
                        what: format!(".{id}()"),
                    });
                }
                if id == "sum" || id == "product" {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::FloatAccum,
                        what: format!(".{id}()"),
                    });
                }
                let arity = self.call_arity(self.i + 1);
                self.out.fns[fn_idx].calls.push(Call {
                    line,
                    path: vec![id.to_string()],
                    method: true,
                    via_self,
                    arity,
                });
            }
            self.i += 1;
            return;
        }

        if NON_CALL_KEYWORDS.contains(&id) {
            self.i += 1;
            return;
        }

        // Walk a `::`-separated path, stepping over turbofish segments
        // (`Foo::<T>::new`, `collect::<Vec<(u64, u64)>>`) so the tail of
        // the path — and the call that follows — is not lost.
        let mut path = vec![id.to_string()];
        let mut j = self.i + 1;
        loop {
            if j + 2 < self.toks.len()
                && self.toks[j].is_punct(':')
                && self.toks[j + 1].is_punct(':')
            {
                if let Some(seg) = self.toks[j + 2].ident() {
                    path.push(seg.to_string());
                    j += 3;
                    continue;
                }
                if self.toks[j + 2].is_punct('<') {
                    if let Some(close) = self.match_angles(j + 2) {
                        j = close + 1;
                        continue;
                    }
                }
            }
            break;
        }
        self.i = j;
        if path.iter().any(|s| s == "f32" || s == "f64") {
            self.out.fns[fn_idx].mentions_float = true;
        }
        if path.iter().any(|s| s == "Instant" || s == "SystemTime") {
            self.out.fns[fn_idx].wall_clock = true;
        }
        if self.call_follows(j) {
            if path.len() >= 2 {
                let last = path.last().map(String::as_str).unwrap_or("");
                let first = path.first().map(String::as_str).unwrap_or("");
                let prev = path[path.len() - 2].as_str();
                if matches!(last, "make_mut" | "get_mut") && matches!(first, "Arc" | "Rc") {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::SharedMut,
                        what: format!("{first}::{last}"),
                    });
                }
                if BLOCKING_PATHS.iter().any(|&(a, b)| a == prev && b == last) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Blocking,
                        what: format!("{prev}::{last}"),
                    });
                }
                if ALLOC_PATHS.iter().any(|&(a, b)| a == prev && b == last) {
                    self.out.fns[fn_idx].hazards.push(Hazard {
                        line,
                        kind: HazardKind::Alloc,
                        what: format!("{prev}::{last}"),
                    });
                }
            }
            let arity = self.call_arity(j);
            self.out.fns[fn_idx].calls.push(Call {
                line,
                path,
                method: false,
                via_self: false,
                arity,
            });
        } else if path.len() == 1 && matches!(id, "RwLock" | "RefCell") {
            // The type's very presence on a shard path is the hazard: its
            // writes (`.write()`, `.borrow_mut()`) may hide behind
            // type-dependent method names the lexer cannot attribute.
            self.out.fns[fn_idx].hazards.push(Hazard {
                line,
                kind: HazardKind::SharedMut,
                what: id.to_string(),
            });
        }
    }

    /// Handle a `.lock()` call at `self.i` (the `lock` ident): record a
    /// [`LockSite`] when the receiver is a resolvable path, and queue
    /// the commutative-counter proof when the whole statement is a
    /// discarded-guard compound integer update.
    fn lock_site(&mut self, fn_idx: usize, line: u32) {
        let Some(dot) = self.i.checked_sub(1) else {
            return;
        };
        let (segs, recv_start) = self.lock_receiver(dot);
        let close = self
            .toks
            .get(self.i + 1)
            .filter(|t| t.is_punct('('))
            .and_then(|_| self.match_parens(self.i + 1));
        if self.stmt_starts_at(recv_start)
            && !segs.is_empty()
            && close.is_some_and(|c| self.commutative_update(c))
        {
            self.commutative.push((fn_idx, line));
        }
        if segs.is_empty() {
            // Receiver is an expression (`guard().lock()`): no stable
            // identity; the SharedMut hazard already covers the site.
            return;
        }
        let id = if segs[0] == "self" {
            let owner = self.current_owner().unwrap_or_else(|| "Self".to_string());
            if segs.len() > 1 {
                format!("{owner}.{}", segs[1..].join("."))
            } else {
                owner
            }
        } else {
            segs.join(".")
        };
        let bound = self.stmt_has_let(recv_start);
        self.out.fns[fn_idx]
            .lock_sites
            .push(LockSite { line, id, bound });
    }

    /// Walk the receiver path backwards from the `.` at `dot`:
    /// `self.stats.lock()` → (`["self", "stats"]`, index of `self`).
    /// Returns an empty path when the receiver is not an
    /// ident-dot-ident chain.
    fn lock_receiver(&self, dot: usize) -> (Vec<String>, usize) {
        let mut segs = Vec::new();
        let mut start = dot;
        let mut j = dot;
        while let Some(prev) = j.checked_sub(1) {
            let Some(seg) = self.toks[prev].ident() else {
                break;
            };
            segs.push(seg.to_string());
            start = prev;
            match prev.checked_sub(1) {
                Some(p2) if self.toks[p2].is_punct('.') => j = p2,
                _ => break,
            }
        }
        segs.reverse();
        (segs, start)
    }

    /// Does the statement containing token `from` bind a `let`? Scans
    /// backwards to the nearest statement boundary.
    fn stmt_has_let(&self, from: usize) -> bool {
        let mut k = from;
        while let Some(p) = k.checked_sub(1) {
            match &self.toks[p].kind {
                TokKind::Punct(';' | '{' | '}') => return false,
                TokKind::Ident(s) if s == "let" => return true,
                _ => {}
            }
            k = p;
        }
        false
    }

    /// Is token `from` at the start of its statement, modulo deref
    /// stars? Ensures the lock expression is the whole statement — its
    /// guard is discarded, not bound or fed into a larger expression.
    fn stmt_starts_at(&self, from: usize) -> bool {
        let mut k = from;
        while let Some(p) = k.checked_sub(1) {
            match &self.toks[p].kind {
                TokKind::Punct(';' | '{' | '}') => return true,
                TokKind::Punct('*') => {}
                _ => return false,
            }
            k = p;
        }
        true
    }

    /// Token index of the `)` matching the `(` at `open`.
    fn match_parens(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// After the guard expression ending at `close` (the `.lock()`'s
    /// closing paren): does the rest of the statement read
    /// `(.field)* op= <call-free rhs> ;` with `op` in `+ - | & ^`?
    /// Such an update commutes over integers, so its evaluation order
    /// across shards cannot change the merged value.
    fn commutative_update(&self, close: usize) -> bool {
        let mut k = close + 1;
        while self.toks.get(k).is_some_and(|t| t.is_punct('.')) {
            if self.toks.get(k + 1).and_then(|t| t.ident()).is_none() {
                return false;
            }
            k += 2;
            if self.toks.get(k).is_some_and(|t| t.is_punct('(')) {
                // A further call (`.get(..)`) — not a plain field update.
                return false;
            }
        }
        let op = matches!(
            self.toks.get(k).map(|t| &t.kind),
            Some(TokKind::Punct('+' | '-' | '|' | '&' | '^'))
        );
        if !op || !self.toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
            return false;
        }
        k += 2;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokKind::Punct(';') => return true,
                // Calls, blocks, nested assignment or macros on the RHS
                // defeat the proof; plain idents/literals/operators pass.
                TokKind::Punct('(' | ')' | '{' | '}' | '=' | '!' | '?') => return false,
                _ => {}
            }
            k += 1;
        }
        false
    }

    /// Does a call argument list start at token `j` (a `(`, or a
    /// turbofish `::<...>` followed by `(`)?
    fn call_follows(&self, j: usize) -> bool {
        if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
        // Turbofish: `::` `<` ... `>` `(` with nesting.
        if self.toks.get(j).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            if let Some(close) = self.match_angles(j + 2) {
                return self.toks.get(close + 1).is_some_and(|t| t.is_punct('('));
            }
        }
        false
    }

    /// Token index of the `>` matching the `<` at `open`, tolerating
    /// parenthesised types inside the generics (`Vec<(u64, u64)>`,
    /// `Box<fn(u8) -> u8>`) and treating an arrow's `>` as part of `->`.
    /// Bails at block/statement boundaries — a lone `<` comparison never
    /// matches.
    fn match_angles(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    let arrow = k.checked_sub(1).is_some_and(|p| self.toks[p].is_punct('-'));
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return Some(k);
                        }
                    }
                }
                TokKind::Punct('{' | '}' | ';') => return None,
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// Count the arguments of the call whose argument list starts at `j`
    /// (directly `(`, or turbofish then `(`). Commas are counted at
    /// paren depth 1 outside brackets, braces and closure parameter
    /// pipes; trailing commas are ignored. Returns `None` — "unknown,
    /// do not filter" — when generics or comparisons appear among the
    /// arguments, where a token-level comma count would lie.
    fn call_arity(&self, j: usize) -> Option<usize> {
        let open = if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
            j
        } else {
            let close = self.match_angles(j + 2)?;
            if !self.toks.get(close + 1).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            close + 1
        };
        if self.toks.get(open + 1).is_some_and(|t| t.is_punct(')')) {
            return Some(0);
        }
        let mut paren = 1i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut commas = 0usize;
        let mut in_closure = false;
        let mut k = open + 1;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        return Some(commas + 1);
                    }
                }
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('{') => brace += 1,
                TokKind::Punct('}') => brace -= 1,
                TokKind::Punct('<' | '>') if paren == 1 && brace == 0 => return None,
                TokKind::Punct('|') if paren == 1 && bracket == 0 && brace == 0 => {
                    if in_closure {
                        in_closure = false;
                    } else {
                        let opener = k == open + 1
                            || self.toks.get(k - 1).is_some_and(|p| {
                                p.is_punct(',') || p.is_punct('(') || p.ident() == Some("move")
                            });
                        if opener {
                            in_closure = true;
                        }
                    }
                }
                TokKind::Punct(',')
                    if paren == 1
                        && bracket == 0
                        && brace == 0
                        && !in_closure
                        && !self.toks.get(k + 1).is_some_and(|t| t.is_punct(')')) =>
                {
                    commas += 1;
                }
                _ => {}
            }
            k += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        parse_file(&["m".to_string()], &lexed.toks, &mask)
    }

    #[test]
    fn free_fn_and_method_extraction() {
        let src = r#"
            pub fn free(x: u64) -> u64 { helper(x) }
            struct T;
            impl T {
                fn method(&self) { self.other(); free(1); }
                fn other(&self) {}
            }
            impl std::fmt::Display for T {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, "t") }
            }
        "#;
        let p = parse(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("T")),
                ("other", Some("T")),
                ("fmt", Some("T")),
            ]
        );
        let method = &p.fns[1];
        assert!(method
            .calls
            .iter()
            .any(|c| c.method && c.via_self && c.path == ["other"]));
        assert!(method.calls.iter().any(|c| !c.method && c.path == ["free"]));
    }

    #[test]
    fn trait_default_methods_are_items_signatures_are_not() {
        let src = r#"
            pub trait Probe {
                fn send(&self) -> u8;
                fn burst(&self) -> u8 { self.send() }
            }
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "burst");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Probe"));
    }

    #[test]
    fn impl_for_takes_the_implementing_type() {
        let src = "impl<'a, T: Clone> Iterator for Walker<'a, T> { fn next(&mut self) -> Option<u8> { None } }";
        let p = parse(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Walker"));
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let src = r#"
            fn make() -> impl Iterator<Item = u8> { std::iter::empty() }
            fn after() {}
        "#;
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["make", "after"]);
        assert!(p.fns[1].owner.is_none());
    }

    #[test]
    fn panic_hazards_are_sited() {
        let src = r#"
            fn risky(v: Option<u8>) -> u8 {
                let a = v.unwrap();
                if a > 250 { panic!("too big"); }
                a
            }
        "#;
        let p = parse(src);
        let kinds: Vec<(&str, u32)> = p.fns[0]
            .hazards
            .iter()
            .map(|h| (h.what.as_str(), h.line))
            .collect();
        assert_eq!(kinds, vec![(".unwrap()", 3), ("panic!", 4)]);
    }

    #[test]
    fn shared_mut_hazards_are_sited() {
        let src = r#"
            fn tally(m: &std::sync::Mutex<u64>, c: &std::cell::RefCell<u64>) {
                *m.lock().unwrap() += 1;
                *c.borrow_mut() += 1;
                let p = Arc::make_mut(&mut shared());
            }
        "#;
        let p = parse(src);
        let shared: Vec<&str> = p.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::SharedMut)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(shared, vec![".lock()", ".borrow_mut()", "Arc::make_mut"]);
    }

    #[test]
    fn use_aliases_resolve_groups_and_renames() {
        let src = r#"
            use crate::permutation::PermutationShard;
            use netsim::{mix_seed, Network as Net};
            use super::verify::{self, verify_one};
        "#;
        let p = parse(src);
        let find = |alias: &str| -> Vec<String> {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.target.clone())
                .unwrap_or_default()
        };
        assert_eq!(
            find("PermutationShard"),
            ["crate", "permutation", "PermutationShard"]
        );
        assert_eq!(find("mix_seed"), ["netsim", "mix_seed"]);
        assert_eq!(find("Net"), ["netsim", "Network"]);
        assert_eq!(find("verify"), ["super", "verify"]);
        assert_eq!(find("verify_one"), ["super", "verify", "verify_one"]);
    }

    #[test]
    fn test_functions_are_flagged() {
        let src = r#"
            fn lib_fn() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { lib_fn(); }
            }
        "#;
        let p = parse(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn inline_mod_extends_module_path() {
        let src = "mod inner { pub fn deep() {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].module, vec!["m", "inner"]);
    }

    #[test]
    fn path_calls_keep_their_segments() {
        let src = "fn f() { crate::permutation::PermutationShard::new(1, 2, 3, 4); }";
        let p = parse(src);
        assert_eq!(
            p.fns[0].calls[0].path,
            vec!["crate", "permutation", "PermutationShard", "new"]
        );
    }

    #[test]
    fn turbofish_calls_are_calls() {
        let src = "fn f() { parse::<u64>(); v.iter().sum::<u64>(); }";
        let p = parse(src);
        let calls: Vec<&str> = p.fns[0]
            .calls
            .iter()
            .map(|c| c.path.last().unwrap().as_str())
            .collect();
        assert!(calls.contains(&"parse"));
        assert!(calls.contains(&"sum"));
    }

    #[test]
    fn float_accumulation_needs_a_float_mention() {
        let int_merge = "fn absorb(&mut self, o: &Self) { self.count += o.count; }";
        let p = parse(int_merge);
        assert!(p.fns[0].hazards.is_empty(), "{:?}", p.fns[0].hazards);

        let float_merge = r#"
            fn absorb(&mut self, o: &Self) {
                let w: f64 = o.weight();
                self.total += w;
            }
        "#;
        let p = parse(float_merge);
        let fa: Vec<(&str, u32)> = p.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::FloatAccum)
            .map(|h| (h.what.as_str(), h.line))
            .collect();
        assert_eq!(fa, vec![("+=", 4)]);

        let float_sum = "fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }";
        let p = parse(float_sum);
        assert!(p.fns[0]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::FloatAccum && h.what == ".sum()"));
    }

    #[test]
    fn mid_path_turbofish_keeps_the_segments() {
        // `Shard::<u64>::new()` — the turbofish sits between path
        // segments, not at the end; the generic args must be skipped
        // without losing the method segment.
        let src = "fn f() { Shard::<u64>::new(1); }";
        let p = parse(src);
        assert_eq!(p.fns[0].calls[0].path, vec!["Shard", "new"]);
        assert_eq!(p.fns[0].calls[0].arity, Some(1));
    }

    #[test]
    fn parens_inside_generics_do_not_end_the_turbofish() {
        // The tuple type inside the generic args contains `(`/`)`; the
        // angle matcher must tolerate them and still find the call.
        let src = "fn f(v: &[u64]) { v.iter().map(pair).collect::<Vec<(u64, u64)>>(); }";
        let p = parse(src);
        let collect = p.fns[0]
            .calls
            .iter()
            .find(|c| c.path.last().map(String::as_str) == Some("collect"))
            .expect("collect() extracted as a call");
        assert_eq!(collect.arity, Some(0));
    }

    #[test]
    fn closure_arguments_count_as_one_argument() {
        // The `|`s delimiting a closure are not comma barriers, and the
        // closure body's commas must not inflate the count.
        let src = "fn f(v: &[u64]) { v.iter().map(|e| pair(e, 1)).count(); }";
        let p = parse(src);
        let map = p.fns[0]
            .calls
            .iter()
            .find(|c| c.path.last().map(String::as_str) == Some("map"))
            .expect("map() extracted as a call");
        assert_eq!(map.arity, Some(1));

        let src = "fn f(v: &[u64]) -> u64 { v.iter().fold(0, |acc, e| acc + e) }";
        let p = parse(src);
        let fold = p.fns[0]
            .calls
            .iter()
            .find(|c| c.path.last().map(String::as_str) == Some("fold"))
            .expect("fold() extracted as a call");
        assert_eq!(fold.arity, Some(2));
    }

    #[test]
    fn fn_arity_excludes_self() {
        let src = r#"
            fn free(a: u64, b: u64) -> u64 { a + b }
            struct H;
            impl H {
                fn observe(&mut self, v: u64) { let _ = v; }
                fn clear(&mut self) {}
            }
        "#;
        let p = parse(src);
        let arity = |name: &str| p.fns.iter().find(|f| f.name == name).unwrap().arity;
        assert_eq!(arity("free"), 2);
        assert_eq!(arity("observe"), 1);
        assert_eq!(arity("clear"), 0);
    }

    #[test]
    fn generic_call_arguments_give_unknown_arity() {
        // A `<` at argument depth means the comma count is unreliable
        // (generic args vs comparison is undecidable here) — report None
        // so the graph keeps the full candidate set.
        let src = "fn f(h: &H) { h.observe(id::<u64>(5)); }";
        let p = parse(src);
        let observe = p.fns[0]
            .calls
            .iter()
            .find(|c| c.path.last().map(String::as_str) == Some("observe"))
            .expect("observe() extracted as a call");
        assert_eq!(observe.arity, None);
    }

    #[test]
    fn lock_blocks_only_inside_loops() {
        let src = r#"
            fn outside(m: &std::sync::Mutex<u64>) { *m.lock() += 1; }
            fn inside(m: &std::sync::Mutex<u64>, xs: &[u64]) {
                for x in xs {
                    *m.lock() += x;
                }
            }
        "#;
        let p = parse(src);
        assert!(
            !p.fns[0]
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::Blocking),
            "a one-shot lock is contention, not a loop stall: {:?}",
            p.fns[0].hazards
        );
        assert!(
            p.fns[1]
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::Blocking && h.what == ".lock() in loop"),
            "{:?}",
            p.fns[1].hazards
        );
    }

    #[test]
    fn blocking_and_alloc_hazards_are_sited() {
        let src = r#"
            fn waits(rx: &std::sync::mpsc::Receiver<u8>) {
                std::thread::sleep(d());
                let _ = rx.recv();
            }
            fn allocs(id: u64) -> String {
                let v = vec![id];
                format!("probe-{}", v[0])
            }
        "#;
        let p = parse(src);
        let blocking: Vec<&str> = p.fns[0]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::Blocking)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(blocking, vec!["thread::sleep", ".recv()"]);
        let alloc: Vec<&str> = p.fns[1]
            .hazards
            .iter()
            .filter(|h| h.kind == HazardKind::Alloc)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(alloc, vec!["vec!", "format!"]);
    }

    #[test]
    fn body_ranges_cover_exactly_the_braces() {
        let src = "fn a() { one(); }\nfn b() { two(); }";
        let p = parse(src);
        let lexed = lex(src);
        for f in &p.fns {
            let (start, end) = f.body;
            assert!(start < end, "{}: empty body range", f.name);
            assert!(
                lexed.toks[end].is_punct('}'),
                "{}: body end is not the closing brace",
                f.name
            );
        }
        // Disjoint: a's body ends before b's begins.
        assert!(p.fns[0].body.1 < p.fns[1].body.0);
    }

    #[test]
    fn raw_strings_do_not_desync_call_extraction() {
        // The regression class PR 3 hit: a literal containing `fn`/`{`
        // lookalikes must not corrupt the scope stack mid-file.
        let src = r####"
            fn first() { let s = r##"fn fake() { nested::call(); "## ; real_call(); }
            fn second() { second_call(); }
        "####;
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].calls.iter().any(|c| c.path == ["real_call"]));
        assert!(p.fns[1].calls.iter().any(|c| c.path == ["second_call"]));
        assert!(!p
            .fns
            .iter()
            .any(|f| f.calls.iter().any(|c| c.path.contains(&"call".to_string()))));
    }

    #[test]
    fn lock_sites_carry_identity_and_boundness() {
        let src = r#"
            struct R;
            impl R {
                fn cached(&self) -> u64 {
                    let cache = self.cache.lock();
                    self.stats.lock().hits += 1;
                    cache.len() as u64
                }
            }
            fn free(m: &Mutex<u64>) { let g = m.lock(); }
        "#;
        let p = parse(src);
        let sites: Vec<(&str, bool)> = p.fns[0]
            .lock_sites
            .iter()
            .map(|s| (s.id.as_str(), s.bound))
            .collect();
        assert_eq!(sites, vec![("R.cache", true), ("R.stats", false)]);
        let free: Vec<(&str, bool)> = p.fns[1]
            .lock_sites
            .iter()
            .map(|s| (s.id.as_str(), s.bound))
            .collect();
        assert_eq!(free, vec![("m", true)]);
    }

    #[test]
    fn commutative_counter_update_is_not_shared_mut() {
        // Discarded-guard integer `+=` through a lock commutes: the
        // shard-purity hazard is dropped by proof, not by pragma.
        let src = "struct R; impl R { fn bump(&self) { self.stats.lock().queries += 1; } }";
        let p = parse(src);
        assert!(
            !p.fns[0]
                .hazards
                .iter()
                .any(|h| h.kind == HazardKind::SharedMut),
            "{:?}",
            p.fns[0].hazards
        );
        // ...but the acquisition still participates in lock ordering.
        assert_eq!(p.fns[0].lock_sites.len(), 1);

        // A bound guard is held across later statements: not commutative.
        let bound = "struct R; impl R { fn peek(&self) { let s = self.stats.lock(); } }";
        let p = parse(bound);
        assert!(p.fns[0]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::SharedMut));

        // A call on the guard is a read-modify path, not a counter bump.
        let call = "struct R; impl R { fn get(&self) { self.map.lock().insert(1, 2); } }";
        let p = parse(call);
        assert!(p.fns[0]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::SharedMut));

        // Float accumulation does not commute.
        let float = "struct R; impl R { fn add(&self, w: f64) { self.total.lock().sum += w; } }";
        let p = parse(float);
        assert!(p.fns[0]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::SharedMut));
    }

    #[test]
    fn recursion_guards_are_detected() {
        let by_param = "fn walk(node: u64, depth: usize) { walk(node, depth + 1); }";
        let p = parse(by_param);
        assert!(p.fns[0].recursion_guard);

        let by_local = r#"
            fn decode(buf: &[u8]) {
                let mut jumps = 0u32;
                loop { jumps += 1; if jumps > 64 { break; } }
            }
        "#;
        let p = parse(by_local);
        assert!(p.fns[0].recursion_guard);

        let unguarded = "fn walk(node: u64) { walk(node); }";
        let p = parse(unguarded);
        assert!(!p.fns[0].recursion_guard);
    }

    #[test]
    fn shard_identity_reads_are_hazards() {
        let src = r#"
            fn merge(&mut self, other: &Self) {
                let key = other.shard_id;
                self.rows.push(key);
            }
            fn clean(&mut self, other: &Self) { self.rows.push(other.seq); }
        "#;
        let p = parse(src);
        assert!(p.fns[0]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::ShardIdent && h.what == "shard_id"));
        assert!(!p.fns[1]
            .hazards
            .iter()
            .any(|h| h.kind == HazardKind::ShardIdent));
    }

    #[test]
    fn wall_clock_mentions_are_flagged() {
        let p = parse("fn t() -> u64 { Instant::now().elapsed().as_micros() as u64 }");
        assert!(p.fns[0].wall_clock);
        let p = parse("fn t(sim: SimInstant) -> u64 { sim.micros() }");
        assert!(!p.fns[0].wall_clock);
    }
}
