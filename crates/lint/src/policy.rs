//! Per-crate policy from `lint.toml`.
//!
//! The build is offline and the analyzer dependency-free, so this is a
//! hand-rolled parser for the small TOML subset the policy needs:
//! `[section.path."quoted segment"]` headers and `key = [array, of,
//! strings]` assignments. Anything else is a hard error — a policy file
//! that silently half-parses would be worse than none.

use std::collections::BTreeMap;

/// Resolved lint policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Rules applied to crates without an explicit entry.
    pub default_rules: Vec<String>,
    /// Per-crate overrides, keyed by directory name under `crates/`
    /// (the workspace root package uses the key `root`).
    pub crates: BTreeMap<String, CratePolicy>,
    /// Entry points for the interprocedural rules (`[graph]` section).
    pub graph: GraphPolicy,
    /// Entry points for the dataflow rules (`[dataflow]` section).
    pub dataflow: DataflowPolicy,
    /// Entry points for the summary-backed rules (`[summary]` section).
    pub summary: SummaryPolicy,
}

/// Entry-point sets for the call-graph rules. Each entry is a `::`
/// suffix of a qualified function name (`doe_scanner::sweep::
/// syn_sweep_sharded`, `Do53TcpConn::query`); an entry matching nothing
/// is a hard configuration error. Empty sets disable the rule.
#[derive(Debug, Clone, Default)]
pub struct GraphPolicy {
    /// D006 roots: the sharded measurement runners.
    pub shard_entries: Vec<String>,
    /// D007 roots: the protocol query APIs.
    pub protocol_entries: Vec<String>,
    /// D008 roots: the shard-merge operations.
    pub merge_entries: Vec<String>,
}

/// Entry-point sets for the dataflow-backed rules (`[dataflow]`
/// section). Same suffix-match semantics as [`GraphPolicy`]: an entry
/// matching nothing is a hard configuration error, empty sets disable
/// the rule.
#[derive(Debug, Clone, Default)]
pub struct DataflowPolicy {
    /// D009 + D010 roots: the event-machine step implementations — no
    /// blocking operation may be reachable, `swap_rng` must pair, and
    /// per-machine RNG values must not reach shared `DataPlane` writes.
    pub step_entries: Vec<String>,
    /// D011 roots: functions whose call trees feed the `sched` deadline
    /// APIs — raw time values must pass the `Sim*` constructors.
    pub time_entries: Vec<String>,
    /// D012 roots: the telemetry hot-path entry points — no allocation
    /// site may be reachable.
    pub hot_entries: Vec<String>,
}

/// Entry-point sets for the effect-summary rules (`[summary]` section).
/// Same suffix-match and stale-entry semantics as [`GraphPolicy`].
#[derive(Debug, Clone, Default)]
pub struct SummaryPolicy {
    /// D013 roots: functions whose call trees are scanned for
    /// inconsistent lock-acquisition order (lock-order-graph cycles).
    pub lock_entries: Vec<String>,
    /// D014 roots: the protocol decode/encode entry points — every
    /// recursion cycle reachable from one must carry an explicit
    /// fuel/depth guard.
    pub decode_entries: Vec<String>,
    /// D015 roots: the shard-merge operations — no shard/worker/thread
    /// identity value may be read on a path they reach.
    pub identity_entries: Vec<String>,
}

/// Policy for one crate.
#[derive(Debug, Clone, Default)]
pub struct CratePolicy {
    /// Replaces the default rule set when present.
    pub rules: Option<Vec<String>>,
    /// Extra rules for specific files, keyed by path relative to the
    /// crate root (e.g. `src/net.rs`).
    pub file_rules: BTreeMap<String, Vec<String>>,
}

impl Policy {
    /// Parse a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut section: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate();
        while let Some((lineno, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lint.toml:{}: {msg}", lineno + 1);
            if let Some(inner) = line.strip_prefix('[') {
                let Some(inner) = inner.strip_suffix(']') else {
                    return Err(err("unterminated section header"));
                };
                section = split_path(inner).map_err(|m| err(&m))?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value`"));
            };
            let key = key.trim().to_string();
            // A `[` without its closing `]` on the same line starts a
            // multi-line array: accumulate until the bracket closes.
            let mut value = value.trim().to_string();
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(err("unterminated multi-line array"));
                };
                value.push_str(strip_comment(cont).trim());
            }
            let value = parse_string_array(&value).map_err(|m| err(&m))?;
            policy.apply(&section, &key, value).map_err(|m| err(&m))?;
        }
        Ok(policy)
    }

    fn apply(&mut self, section: &[String], key: &str, value: Vec<String>) -> Result<(), String> {
        let segs: Vec<&str> = section.iter().map(String::as_str).collect();
        match (segs.as_slice(), key) {
            (["default"], "rules") => self.default_rules = value,
            (["graph"], "shard_entries") => self.graph.shard_entries = value,
            (["graph"], "protocol_entries") => self.graph.protocol_entries = value,
            (["graph"], "merge_entries") => self.graph.merge_entries = value,
            (["dataflow"], "step_entries") => self.dataflow.step_entries = value,
            (["dataflow"], "time_entries") => self.dataflow.time_entries = value,
            (["dataflow"], "hot_entries") => self.dataflow.hot_entries = value,
            (["summary"], "lock_entries") => self.summary.lock_entries = value,
            (["summary"], "decode_entries") => self.summary.decode_entries = value,
            (["summary"], "identity_entries") => self.summary.identity_entries = value,
            (["crates", name], "rules") => {
                self.crates.entry(name.to_string()).or_default().rules = Some(value);
            }
            (["crates", name, "files", path], "rules") => {
                self.crates
                    .entry(name.to_string())
                    .or_default()
                    .file_rules
                    .insert(path.to_string(), value);
            }
            _ => {
                return Err(format!(
                    "unrecognized policy entry `[{}] {key}`",
                    section.join(".")
                ))
            }
        }
        Ok(())
    }

    /// The rule ids in force for `rel_path` (relative to the crate root)
    /// inside crate `crate_key`.
    pub fn rules_for(&self, crate_key: &str, rel_path: &str) -> Vec<String> {
        let entry = self.crates.get(crate_key);
        let mut rules = entry
            .and_then(|c| c.rules.clone())
            .unwrap_or_else(|| self.default_rules.clone());
        if let Some(extra) = entry.and_then(|c| c.file_rules.get(rel_path)) {
            for r in extra {
                if !rules.contains(r) {
                    rules.push(r.clone());
                }
            }
        }
        rules
    }
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split a dotted section path, honouring quoted segments that may
/// themselves contain dots (`crates.netsim.files."src/net.rs"`).
fn split_path(s: &str) -> Result<Vec<String>, String> {
    let mut segs = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '.' if !in_str => {
                if cur.trim().is_empty() {
                    return Err("empty section path segment".to_string());
                }
                segs.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err("unterminated quoted segment in section header".to_string());
    }
    if cur.trim().is_empty() {
        return Err("empty section path segment".to_string());
    }
    segs.push(cur.trim().to_string());
    Ok(segs)
}

/// Parse `["a", "b"]` into a vector of strings.
fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    let Some(inner) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
        return Err(format!("expected a `[\"...\"]` array, got `{s}`"));
    };
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some(unq) = part.strip_prefix('"').and_then(|t| t.strip_suffix('"')) else {
            return Err(format!("array element `{part}` must be a quoted string"));
        };
        out.push(unq.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # comment
        [default]
        rules = ["D001", "D003"]

        [crates.dnswire]
        rules = ["D001", "D003", "D004"]

        [crates.netsim.files."src/net.rs"]
        rules = ["D005"]

        [crates.bench]
        rules = []

        [dataflow]
        step_entries = ["StubMachine::on_event"]
        time_entries = ["StubMachine::on_event", "generate_dot_traffic"]
        hot_entries = ["Registry::add"]

        [summary]
        lock_entries = ["stub_population_sharded"]
        decode_entries = ["Message::decode"]
        identity_entries = ["Network::absorb_shard"]
    "#;

    #[test]
    fn dataflow_entry_sets_parse() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.dataflow.step_entries, vec!["StubMachine::on_event"]);
        assert_eq!(
            p.dataflow.time_entries,
            vec!["StubMachine::on_event", "generate_dot_traffic"]
        );
        assert_eq!(p.dataflow.hot_entries, vec!["Registry::add"]);
    }

    #[test]
    fn summary_entry_sets_parse() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.summary.lock_entries, vec!["stub_population_sharded"]);
        assert_eq!(p.summary.decode_entries, vec!["Message::decode"]);
        assert_eq!(p.summary.identity_entries, vec!["Network::absorb_shard"]);
    }

    #[test]
    fn defaults_apply_to_unlisted_crates() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.rules_for("tlssim", "src/lib.rs"), vec!["D001", "D003"]);
    }

    #[test]
    fn crate_override_replaces_defaults() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(
            p.rules_for("dnswire", "src/name.rs"),
            vec!["D001", "D003", "D004"]
        );
        assert!(p.rules_for("bench", "src/lib.rs").is_empty());
    }

    #[test]
    fn file_extras_stack_on_crate_rules() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(
            p.rules_for("netsim", "src/net.rs"),
            vec!["D001", "D003", "D005"]
        );
        assert_eq!(p.rules_for("netsim", "src/geo.rs"), vec!["D001", "D003"]);
    }

    #[test]
    fn unknown_entries_are_rejected() {
        assert!(Policy::parse("[nonsense]\nrules = [\"D001\"]\n").is_err());
        assert!(Policy::parse("[default]\nrules = not-an-array\n").is_err());
    }
}
