//! Suppression pragmas: `// doe-lint: allow(D00x) — <reason>`.
//!
//! A pragma suppresses findings of the listed rules on its own line (a
//! trailing comment) or, when it stands alone, on the next line that
//! carries code. The reason is mandatory — a suppression without a
//! recorded justification is itself a diagnostic (`P002`), as is a
//! malformed directive (`P001`) or an unknown rule id (`P003`).

use crate::lexer::LineComment;
use crate::rules;

/// A successfully parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule ids this pragma allows (e.g. `["D004"]`).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// A diagnostic produced while parsing pragmas.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Line the faulty comment sits on.
    pub line: u32,
    /// `P001` malformed, `P002` missing reason, `P003` unknown rule.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

/// Reason separators accepted after `allow(...)`.
const SEPARATORS: &[&str] = &["—", "–", "--", ":"];

/// Extract pragmas (and pragma errors) from a file's line comments.
/// Comments that do not start with `doe-lint:` are ignored.
pub fn parse(comments: &[LineComment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Doc comments capture as `/ ...` / `! ...`; strip those markers.
        let body = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("doe-lint:") else {
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((ids, reason)) => {
                let mut bad = false;
                for id in &ids {
                    if !rules::is_known(id) {
                        errors.push(PragmaError {
                            line: c.line,
                            rule: "P003",
                            message: format!("unknown rule id `{id}` in doe-lint pragma"),
                        });
                        bad = true;
                    }
                }
                if reason.is_empty() {
                    errors.push(PragmaError {
                        line: c.line,
                        rule: "P002",
                        message: "doe-lint pragma is missing its mandatory reason \
                                  (`// doe-lint: allow(D00x) — <why this is sound>`)"
                            .to_string(),
                    });
                    bad = true;
                }
                if !bad {
                    pragmas.push(Pragma {
                        line: c.line,
                        rules: ids,
                        reason,
                    });
                }
            }
            Err(msg) => errors.push(PragmaError {
                line: c.line,
                rule: "P001",
                message: msg,
            }),
        }
    }
    (pragmas, errors)
}

/// Parse `allow(D001, D002) — reason` into (ids, reason).
fn parse_directive(s: &str) -> Result<(Vec<String>, String), String> {
    let Some(args) = s.strip_prefix("allow") else {
        return Err(format!(
            "unrecognized doe-lint directive `{}` (only `allow(...)` is supported)",
            s.split_whitespace().next().unwrap_or("")
        ));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` in doe-lint pragma".to_string());
    };
    let ids: Vec<String> = args[..close]
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if ids.is_empty() {
        return Err("empty rule list in `allow()`".to_string());
    }
    let mut tail = args[close + 1..].trim_start();
    let mut had_separator = false;
    for sep in SEPARATORS {
        if let Some(t) = tail.strip_prefix(sep) {
            tail = t;
            had_separator = true;
            break;
        }
    }
    if !had_separator && !tail.is_empty() {
        return Err("expected `—` (or `--`) between `allow(...)` and the reason".to_string());
    }
    Ok((ids, tail.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Pragma>, Vec<PragmaError>) {
        parse(&lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (p, e) = run("// doe-lint: allow(D001, D003) — fixture exercising two rules\n");
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, vec!["D001", "D003"]);
        assert_eq!(p[0].reason, "fixture exercising two rules");
    }

    #[test]
    fn ascii_separator_accepted() {
        let (p, e) = run("// doe-lint: allow(D002) -- sorted into a Vec right below\n");
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(p[0].reason, "sorted into a Vec right below");
    }

    #[test]
    fn missing_reason_is_p002() {
        let (p, e) = run("// doe-lint: allow(D004)\n");
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "P002");
    }

    #[test]
    fn unknown_rule_is_p003() {
        let (p, e) = run("// doe-lint: allow(D999) — no such rule\n");
        assert!(p.is_empty());
        assert_eq!(e[0].rule, "P003");
    }

    #[test]
    fn malformed_directive_is_p001() {
        let (p, e) = run("// doe-lint: deny(D001) — wrong verb\n");
        assert!(p.is_empty());
        assert_eq!(e[0].rule, "P001");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (p, e) = run("// plain prose, not a directive\n/// doc text\n");
        assert!(p.is_empty() && e.is_empty());
    }
}
