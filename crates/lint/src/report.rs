//! Human and JSON rendering of a lint run.
//!
//! JSON is hand-rolled (the analyzer is dependency-free); the schema is
//! stable so `scripts/verify.sh` can archive reports under `results/`
//! and diff them across runs.

use crate::{Report, Severity};
use std::fmt::Write as _;

/// Render the human-readable report.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.rule, f.message);
    }
    if !report.unused_pragmas.is_empty() {
        for (file, line) in &report.unused_pragmas {
            let _ = writeln!(
                out,
                "{file}:{line}: note: doe-lint pragma suppresses nothing (stale?)"
            );
        }
    }
    let _ = writeln!(
        out,
        "doe-lint: {} finding(s), {} suppressed, {} file(s) scanned",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    if report.findings.is_empty() {
        let _ = writeln!(out, "doe-lint: determinism contract holds");
    }
    out
}

/// Render the machine-readable report.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule,
            match f.severity {
                Severity::Error => "error",
            },
            esc(&f.message)
        );
    }
    out.push_str("\n  ],\n  \"suppressed\": [");
    for (i, s) in report.suppressed.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"reason\": \"{}\"}}",
            esc(&s.file),
            s.line,
            s.rule,
            esc(&s.reason)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \
         \"files_scanned\": {}, \"clean\": {}}}\n}}\n",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        report.findings.is_empty()
    );
    out
}

/// Escape a string for embedding in JSON.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "D003".to_string(),
                message: "a \"quoted\" message".to_string(),
                severity: Severity::Error,
            }],
            suppressed: Vec::new(),
            unused_pragmas: Vec::new(),
            files_scanned: 1,
        };
        let j = json(&report);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"clean\": false"));
        let empty = Report {
            findings: Vec::new(),
            suppressed: Vec::new(),
            unused_pragmas: Vec::new(),
            files_scanned: 0,
        };
        assert!(json(&empty).contains("\"clean\": true"));
    }
}
