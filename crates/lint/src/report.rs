//! Human, JSON and SARIF rendering of a lint run.
//!
//! JSON is hand-rolled (the analyzer is dependency-free); the schema is
//! stable so `scripts/verify.sh` can archive reports under `results/`
//! and diff them across runs. Schema version 2 added the `chain` field:
//! interprocedural findings (D006–D012) carry the call chain from an
//! entry point to the hazard site as evidence. Version 3 added the
//! `flow` field: dataflow findings (D010/D011) additionally carry the
//! intraprocedural def-use steps from taint source to sink, in order.
//! `flow` is present on every finding (empty for non-dataflow rules) so
//! consumers never branch on key existence. Version 4 adds, per
//! finding:
//!
//! * `"fingerprint"` — a stable identity (`rule|file|entry|site`) built
//!   from line-number-free chain endpoints, so `--baseline` diffs
//!   survive unrelated edits that shift line numbers;
//! * `"summary"` — effect-summary provenance (`effect` lattice bit,
//!   condensation component `scc`, `frames` hop count) for the
//!   interprocedural rules, `null` for token rules.
//!
//! The same findings export as SARIF 2.1.0 (see [`sarif`]) for CI
//! annotation; both renderings are byte-deterministic.

use crate::{Finding, Report, Severity};
use std::fmt::Write as _;

/// Render the human-readable report.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        if !f.chain.is_empty() {
            for (i, hop) in f.chain.iter().enumerate() {
                let arrow = if i == 0 { "entry" } else { "  via" };
                let _ = writeln!(out, "    {arrow} {hop}");
            }
        }
        if !f.flow.is_empty() {
            for step in &f.flow {
                let _ = writeln!(out, "    flow {step}");
            }
        }
    }
    let _ = writeln!(
        out,
        "doe-lint: {} finding(s), {} suppressed, {} file(s) scanned",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    if report.findings.is_empty() {
        let _ = writeln!(out, "doe-lint: determinism contract holds");
    }
    out
}

/// Strip the ` (file:line)` location suffix from a chain hop, leaving
/// the qualified function name.
fn hop_name(hop: &str) -> &str {
    match hop.find(" (") {
        Some(i) => &hop[..i],
        None => hop,
    }
}

/// A finding's stable identity for baseline diffing:
/// `rule|file|entry|site`. `entry` and `site` are the first and last
/// chain hops with their `(file:line)` locations stripped — a chain
/// finding keeps its fingerprint when unrelated edits shift line
/// numbers. Token findings (no chain) use `-` and `L<line>`.
pub fn fingerprint(f: &Finding) -> String {
    let entry = f.chain.first().map_or("-", |h| hop_name(h));
    let site = match f.chain.last() {
        Some(h) => hop_name(h).to_string(),
        None => format!("L{}", f.line),
    };
    format!("{}|{}|{}|{}", f.rule, f.file, entry, site)
}

/// Render the machine-readable report.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 4,\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"fingerprint\": \"{}\", \"message\": \"{}\", \"chain\": [",
            esc(&f.file),
            f.line,
            f.rule,
            match f.severity {
                Severity::Error => "error",
            },
            esc(&fingerprint(f)),
            esc(&f.message)
        );
        for (j, hop) in f.chain.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\"", esc(hop));
        }
        out.push_str("], \"flow\": [");
        for (j, step) in f.flow.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\"", esc(step));
        }
        out.push_str("], \"summary\": ");
        match &f.summary {
            Some(n) => {
                let _ = write!(
                    out,
                    "{{\"effect\": \"{}\", \"scc\": {}, \"frames\": {}}}",
                    esc(n.effect),
                    n.scc,
                    n.frames
                );
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("\n  ],\n  \"suppressed\": [");
    for (i, s) in report.suppressed.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"reason\": \"{}\"}}",
            esc(&s.file),
            s.line,
            s.rule,
            esc(&s.reason)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \
         \"files_scanned\": {}, \"clean\": {}}}\n}}\n",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        report.findings.is_empty()
    );
    out
}

/// Render the report as SARIF 2.1.0 for CI annotation. The driver
/// advertises every contract rule; each result carries the finding's
/// stable fingerprint under `partialFingerprints` so SARIF consumers
/// dedup across runs the same way `--baseline` does. Output is
/// byte-deterministic: findings are already sorted and every map is
/// emitted in a fixed key order.
pub fn sarif(report: &Report) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"doe-lint\",\n          \
         \"version\": \"4\",\n          \"rules\": [",
    );
    for (i, (id, what)) in crate::rules::RULES.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(what)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"partialFingerprints\": {{\"doeLint/v1\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule,
            match f.severity {
                Severity::Error => "error",
            },
            esc(&f.message),
            esc(&fingerprint(f)),
            esc(&f.file),
            f.line
        );
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

/// Escape a string for embedding in JSON.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "D003".to_string(),
                message: "a \"quoted\" message".to_string(),
                severity: Severity::Error,
                chain: Vec::new(),
                flow: Vec::new(),
                summary: None,
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let j = json(&report);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"version\": 4"));
        let empty = Report {
            findings: Vec::new(),
            suppressed: Vec::new(),
            files_scanned: 0,
        };
        assert!(json(&empty).contains("\"clean\": true"));
    }

    #[test]
    fn chains_render_in_both_formats() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 9,
                rule: "D007".to_string(),
                message: "`.unwrap()` can panic".to_string(),
                severity: Severity::Error,
                chain: vec![
                    "a::entry (crates/a/src/lib.rs:1)".to_string(),
                    "a::leaf (crates/a/src/lib.rs:5)".to_string(),
                ],
                flow: Vec::new(),
                summary: None,
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let h = human(&report);
        assert!(h.contains("entry a::entry"));
        assert!(h.contains("  via a::leaf"));
        let j = json(&report);
        assert!(j.contains("\"chain\": [\"a::entry (crates/a/src/lib.rs:1)\", \"a::leaf (crates/a/src/lib.rs:5)\"]"));
        assert!(j.contains("\"flow\": []"));
    }

    #[test]
    fn flows_render_in_both_formats() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/gen.rs".to_string(),
                line: 12,
                rule: "D011".to_string(),
                message: "integer literal reaches `schedule_after`".to_string(),
                severity: Severity::Error,
                chain: vec!["a::emit (crates/x/src/gen.rs:10)".to_string()],
                flow: vec![
                    "`ms` bound from integer literal (line 11)".to_string(),
                    "`ms` flows into `schedule_after` deadline argument (line 12)".to_string(),
                ],
                summary: None,
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let h = human(&report);
        assert!(h.contains("flow `ms` bound from integer literal (line 11)"));
        let j = json(&report);
        assert!(j.contains(
            "\"flow\": [\"`ms` bound from integer literal (line 11)\", \
             \"`ms` flows into `schedule_after` deadline argument (line 12)\"]"
        ));
    }

    fn chained(line: u32, chain: &[&str]) -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line,
            rule: "D007".to_string(),
            message: "can panic".to_string(),
            severity: Severity::Error,
            chain: chain.iter().map(|s| s.to_string()).collect(),
            flow: Vec::new(),
            summary: None,
        }
    }

    #[test]
    fn fingerprints_survive_line_shifts() {
        let a = chained(
            9,
            &[
                "a::entry (crates/a/src/lib.rs:1)",
                "a::leaf (crates/a/src/lib.rs:5)",
            ],
        );
        // Same chain endpoints, every line number shifted.
        let b = chained(
            41,
            &[
                "a::entry (crates/a/src/lib.rs:30)",
                "a::leaf (crates/a/src/lib.rs:38)",
            ],
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), "D007|crates/x/src/lib.rs|a::entry|a::leaf");
        // Token findings fall back to the line anchor.
        let t = chained(9, &[]);
        assert_eq!(fingerprint(&t), "D007|crates/x/src/lib.rs|-|L9");
    }

    #[test]
    fn summary_provenance_renders_in_json() {
        let mut f = chained(9, &["a::entry (crates/a/src/lib.rs:1)"]);
        f.summary = Some(crate::reach::SummaryNote {
            effect: "panics",
            scc: 7,
            frames: 1,
        });
        let report = Report {
            findings: vec![f],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let j = json(&report);
        assert!(
            j.contains("\"summary\": {\"effect\": \"panics\", \"scc\": 7, \"frames\": 1}"),
            "{j}"
        );
    }

    #[test]
    fn sarif_export_is_valid_shaped_and_carries_fingerprints() {
        let report = Report {
            findings: vec![chained(9, &["a::entry (crates/a/src/lib.rs:1)"])],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let s = sarif(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"doe-lint\""));
        assert!(
            s.contains("\"id\": \"D015\""),
            "driver advertises all rules"
        );
        assert!(s.contains("\"ruleId\": \"D007\""));
        assert!(s.contains("\"doeLint/v1\": \"D007|crates/x/src/lib.rs|a::entry|a::entry\""));
        assert!(s.contains("\"startLine\": 9"));
        // Determinism: same report, same bytes.
        assert_eq!(s, sarif(&report));
    }
}
