//! Human and JSON rendering of a lint run.
//!
//! JSON is hand-rolled (the analyzer is dependency-free); the schema is
//! stable so `scripts/verify.sh` can archive reports under `results/`
//! and diff them across runs. Schema version 2 added the `chain` field:
//! interprocedural findings (D006–D012) carry the call chain from an
//! entry point to the hazard site as evidence. Version 3 adds the
//! `flow` field: dataflow findings (D010/D011) additionally carry the
//! intraprocedural def-use steps from taint source to sink, in order.
//! `flow` is present on every finding (empty for non-dataflow rules) so
//! consumers never branch on key existence.

use crate::{Report, Severity};
use std::fmt::Write as _;

/// Render the human-readable report.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        if !f.chain.is_empty() {
            for (i, hop) in f.chain.iter().enumerate() {
                let arrow = if i == 0 { "entry" } else { "  via" };
                let _ = writeln!(out, "    {arrow} {hop}");
            }
        }
        if !f.flow.is_empty() {
            for step in &f.flow {
                let _ = writeln!(out, "    flow {step}");
            }
        }
    }
    let _ = writeln!(
        out,
        "doe-lint: {} finding(s), {} suppressed, {} file(s) scanned",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    if report.findings.is_empty() {
        let _ = writeln!(out, "doe-lint: determinism contract holds");
    }
    out
}

/// Render the machine-readable report.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 3,\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\", \"chain\": [",
            esc(&f.file),
            f.line,
            f.rule,
            match f.severity {
                Severity::Error => "error",
            },
            esc(&f.message)
        );
        for (j, hop) in f.chain.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\"", esc(hop));
        }
        out.push_str("], \"flow\": [");
        for (j, step) in f.flow.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\"", esc(step));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"suppressed\": [");
    for (i, s) in report.suppressed.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"reason\": \"{}\"}}",
            esc(&s.file),
            s.line,
            s.rule,
            esc(&s.reason)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"summary\": {{\"findings\": {}, \"suppressed\": {}, \
         \"files_scanned\": {}, \"clean\": {}}}\n}}\n",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        report.findings.is_empty()
    );
    out
}

/// Escape a string for embedding in JSON.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "D003".to_string(),
                message: "a \"quoted\" message".to_string(),
                severity: Severity::Error,
                chain: Vec::new(),
                flow: Vec::new(),
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let j = json(&report);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"version\": 3"));
        let empty = Report {
            findings: Vec::new(),
            suppressed: Vec::new(),
            files_scanned: 0,
        };
        assert!(json(&empty).contains("\"clean\": true"));
    }

    #[test]
    fn chains_render_in_both_formats() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 9,
                rule: "D007".to_string(),
                message: "`.unwrap()` can panic".to_string(),
                severity: Severity::Error,
                chain: vec![
                    "a::entry (crates/a/src/lib.rs:1)".to_string(),
                    "a::leaf (crates/a/src/lib.rs:5)".to_string(),
                ],
                flow: Vec::new(),
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let h = human(&report);
        assert!(h.contains("entry a::entry"));
        assert!(h.contains("  via a::leaf"));
        let j = json(&report);
        assert!(j.contains("\"chain\": [\"a::entry (crates/a/src/lib.rs:1)\", \"a::leaf (crates/a/src/lib.rs:5)\"]"));
        assert!(j.contains("\"flow\": []"));
    }

    #[test]
    fn flows_render_in_both_formats() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/gen.rs".to_string(),
                line: 12,
                rule: "D011".to_string(),
                message: "integer literal reaches `schedule_after`".to_string(),
                severity: Severity::Error,
                chain: vec!["a::emit (crates/x/src/gen.rs:10)".to_string()],
                flow: vec![
                    "`ms` bound from integer literal (line 11)".to_string(),
                    "`ms` flows into `schedule_after` deadline argument (line 12)".to_string(),
                ],
            }],
            suppressed: Vec::new(),
            files_scanned: 1,
        };
        let h = human(&report);
        assert!(h.contains("flow `ms` bound from integer literal (line 11)"));
        let j = json(&report);
        assert!(j.contains(
            "\"flow\": [\"`ms` bound from integer literal (line 11)\", \
             \"`ms` flows into `schedule_after` deadline argument (line 12)\"]"
        ));
    }
}
