//! The lock-order graph (D013): static deadlock detection from
//! held-lock-set summaries.
//!
//! An edge `A → B` means some function acquires `B` while `A` is held:
//!
//! * a `let`-bound guard (`let g = self.a.lock();`) holds its lock to
//!   end of scope, so every later `.lock()` in the same body — and
//!   every lock in the summary lock-set of an **exact** callee invoked
//!   on a later line — is acquired under it;
//! * an unbound (temporary) guard dies at its statement's end, so it
//!   only orders against acquisitions on the same source line.
//!
//! Two threads taking the same pair of locks along different edges of a
//! cycle can each hold one lock and wait forever on the other — the
//! static analogue of the PR 9 shards-8 replay flake. Every cycle is
//! reported once, with one witness chain per hop so the diagnostic
//! shows *both* acquisition orders, not just the existence of a cycle.
//! A self-edge `A → A` is reported too: re-acquiring a held
//! non-reentrant mutex deadlocks against itself.
//!
//! Edges derive only from functions in the caller-supplied reachable
//! set (the `[summary] lock_entries` cone) and only through exact call
//! edges, so name collisions in the over-approximated method graph
//! cannot fabricate an ordering.

use crate::graph::CallGraph;
use crate::summary::Summaries;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-order edge with its witness.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// Rendered witness: which function, which lines, through which
    /// callee (if interprocedural).
    pub witness: String,
    /// Node index of the witnessing function.
    pub node: usize,
    /// 1-based line of the second acquisition (the finding anchor).
    pub line: u32,
}

/// One lock-order cycle: the locks in cycle order (starting at the
/// lexicographically smallest) and one witness edge per hop.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// Lock identities in cycle order.
    pub locks: Vec<String>,
    /// `witnesses[i]` justifies the hop `locks[i] → locks[(i+1) % n]`.
    pub witnesses: Vec<LockEdge>,
}

/// Collect lock-order edges from every reachable function.
pub fn build_edges(graph: &CallGraph, summaries: &Summaries, reachable: &[bool]) -> Vec<LockEdge> {
    let mut edges: Vec<LockEdge> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        for (si, s) in node.lock_sites.iter().enumerate() {
            // Later direct acquisitions in the same body.
            for t in node.lock_sites.iter().skip(si + 1) {
                let ordered = if s.bound {
                    t.line >= s.line
                } else {
                    t.line == s.line
                };
                if !ordered {
                    continue;
                }
                edges.push(LockEdge {
                    held: s.id.clone(),
                    acquired: t.id.clone(),
                    witness: format!(
                        "{} ({}): holds `{}` (line {}), acquires `{}` (line {})",
                        node.qualified(),
                        node.file,
                        s.id,
                        s.line,
                        t.id,
                        t.line
                    ),
                    node: i,
                    line: t.line,
                });
            }
            // Locks acquired inside exact callees invoked while held.
            for &(v, call_line, exact) in &graph.adj[i] {
                if !exact || v == i {
                    continue;
                }
                let ordered = if s.bound {
                    call_line >= s.line
                } else {
                    call_line == s.line
                };
                if !ordered {
                    continue;
                }
                for acquired in &summaries.per_fn[v].lock_set {
                    edges.push(LockEdge {
                        held: s.id.clone(),
                        acquired: acquired.clone(),
                        witness: format!(
                            "{} ({}): holds `{}` (line {}), calls {} (line {}) which acquires `{}`",
                            node.qualified(),
                            node.file,
                            s.id,
                            s.line,
                            graph.nodes[v].qualified(),
                            call_line,
                            acquired
                        ),
                        node: i,
                        line: call_line,
                    });
                }
            }
        }
    }
    // Deterministic order; one witness per (held, acquired) pair — the
    // first in (file, line) order wins.
    edges.sort_by(|a, b| {
        (&a.held, &a.acquired, &graph.nodes[a.node].file, a.line).cmp(&(
            &b.held,
            &b.acquired,
            &graph.nodes[b.node].file,
            b.line,
        ))
    });
    edges.dedup_by(|a, b| a.held == b.held && a.acquired == b.acquired);
    edges
}

/// Find every cycle in the lock-order graph. One cycle is reported per
/// strongly connected component (the shortest cycle through the
/// component's smallest lock), plus every self-edge.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    let mut locks: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        locks.insert(&e.held);
        locks.insert(&e.acquired);
        adj.entry(&e.held)
            .or_default()
            .entry(&e.acquired)
            .or_insert(e);
    }

    let mut out: Vec<LockCycle> = Vec::new();
    // Self-edges first: `A → A` is a one-hop cycle.
    for e in edges {
        if e.held == e.acquired {
            out.push(LockCycle {
                locks: vec![e.held.clone()],
                witnesses: vec![e.clone()],
            });
        }
    }

    // Proper cycles: for each lock (smallest first), BFS for the
    // shortest path back to itself; claim every lock on the found cycle
    // so each component reports once.
    let mut claimed: BTreeSet<&str> = BTreeSet::new();
    for &start in &locks {
        if claimed.contains(start) {
            continue;
        }
        let Some(path) = shortest_cycle(&adj, start) else {
            continue;
        };
        if path.len() < 2 {
            continue; // self-edges handled above
        }
        let mut witnesses = Vec::new();
        for (k, from) in path.iter().enumerate() {
            let to = &path[(k + 1) % path.len()];
            let e = adj[from.as_str()][to.as_str()];
            witnesses.push(e.clone());
        }
        for l in &path {
            claimed.insert(locks.get(l.as_str()).copied().unwrap_or_default());
        }
        out.push(LockCycle {
            locks: path,
            witnesses,
        });
    }
    out
}

/// Shortest cycle through `start` (BFS over sorted neighbours), as the
/// lock sequence `[start, …]` without repeating `start` at the end.
fn shortest_cycle(
    adj: &BTreeMap<&str, BTreeMap<&str, &LockEdge>>,
    start: &str,
) -> Option<Vec<String>> {
    let mut pred: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<&str> = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        if let Some(next) = adj.get(u) {
            for (&v, _) in next.iter() {
                if v == start {
                    // Found the way back; unwind.
                    let mut path = vec![u.to_string()];
                    let mut cur = u;
                    while cur != start {
                        cur = pred[cur];
                        path.push(cur.to_string());
                    }
                    path.reverse();
                    if path.len() < 2 && u == start {
                        // `start → start` with no intermediate hops is a
                        // self-edge, not a proper cycle.
                        return None;
                    }
                    return Some(path);
                }
                if v != u && !pred.contains_key(v) {
                    pred.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceItems};
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::rules::test_mask;
    use crate::summary::compute;

    fn graph_of(src: &str) -> CallGraph {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = Vec::new();
        let mut parsed = parse_file(&module, &lexed.toks, &mask);
        crate::dataflow::analyze(&lexed.toks, &mut parsed);
        build(&[SourceItems {
            crate_key: "a".to_string(),
            crate_name: "a".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            module,
            parsed,
        }])
    }

    fn all(graph: &CallGraph) -> Vec<bool> {
        vec![true; graph.nodes.len()]
    }

    #[test]
    fn opposite_acquisition_orders_form_a_cycle_with_both_witnesses() {
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn ba(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                }
            }
            "#,
        );
        let s = compute(&g);
        let edges = build_edges(&g, &s, &all(&g));
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        let c = &cycles[0];
        assert_eq!(c.locks, vec!["W.alpha".to_string(), "W.beta".to_string()]);
        assert_eq!(c.witnesses.len(), 2);
        assert!(c.witnesses[0].witness.contains("a::W::ab"));
        assert!(c.witnesses[1].witness.contains("a::W::ba"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn one(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn two(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
            }
            "#,
        );
        let s = compute(&g);
        let cycles = find_cycles(&build_edges(&g, &s, &all(&g)));
        assert!(cycles.is_empty(), "{cycles:?}");
    }

    #[test]
    fn temporary_guards_do_not_order_across_statements() {
        // Both statements drop their guard before the next line: no
        // ordering, no cycle.
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn ab(&self) {
                    self.alpha.lock().n += 1;
                    self.beta.lock().n += 1;
                }
                fn ba(&self) {
                    self.beta.lock().n += 1;
                    self.alpha.lock().n += 1;
                }
            }
            "#,
        );
        let s = compute(&g);
        let cycles = find_cycles(&build_edges(&g, &s, &all(&g)));
        assert!(cycles.is_empty(), "{cycles:?}");
    }

    #[test]
    fn interprocedural_cycle_through_exact_callee() {
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    self.take_beta();
                }
                fn ba(&self) {
                    let b = self.beta.lock();
                    self.take_alpha();
                }
                fn take_beta(&self) { let b = self.beta.lock(); }
                fn take_alpha(&self) { let a = self.alpha.lock(); }
            }
            "#,
        );
        let s = compute(&g);
        let edges = build_edges(&g, &s, &all(&g));
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].witnesses[0].witness.contains("calls"));
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_self_cycle() {
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn twice(&self) {
                    let a = self.alpha.lock();
                    let b = self.alpha.lock();
                }
            }
            "#,
        );
        let s = compute(&g);
        let cycles = find_cycles(&build_edges(&g, &s, &all(&g)));
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["W.alpha".to_string()]);
    }

    #[test]
    fn unreachable_functions_contribute_no_edges() {
        let g = graph_of(
            r#"
            struct W;
            impl W {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
            }
            "#,
        );
        let s = compute(&g);
        let none = vec![false; g.nodes.len()];
        assert!(build_edges(&g, &s, &none).is_empty());
    }
}
