//! Reachability over the call graph: the interprocedural rules.
//!
//! Hazard rules, one BFS each, driven by the `[graph]` section of
//! `lint.toml`:
//!
//! * **D006 shard purity** — from the sharded measurement entry points,
//!   no interior-mutability write or shared-state mutation is reachable,
//!   except inside `ShardCtx` itself (per-shard state is the sanctioned
//!   mutation channel).
//! * **D007 transitive panic reachability** — from the protocol entry
//!   points, no panic site is reachable through any call chain.
//! * **D008 float-accumulation hazard** — from the merge entry points,
//!   no order-sensitive floating-point accumulation is reachable;
//!   shard-merge results must not depend on shard layout.
//!
//! Plus the scheduler-era rules rooted at the `[dataflow]` section:
//!
//! * **D009 non-blocking step** — from the event-machine step entry
//!   points, no blocking operation (sleeps, channel receives, real I/O,
//!   lock-in-loop) is reachable; one stalled handler would skew every
//!   virtual-time measurement behind it.
//! * **D010 RNG confinement** — on functions reachable from the step
//!   entry points, the dataflow pass's `swap_rng`-pairing and RNG-leak
//!   findings (see [`crate::dataflow`]) become errors.
//! * **D011 time-unit hygiene** — on functions reachable from the
//!   time entry points, raw-time flows into `sched` deadline APIs
//!   become errors.
//! * **D012 hot-path allocation freedom** — from the telemetry hot-path
//!   entry points, no allocation site is reachable.
//!
//! Every finding carries its full call chain (entry → … → hazard site)
//! as evidence — dataflow findings additionally carry the def-use steps
//! from taint source to sink — so a diagnostic is actionable without
//! re-running the analysis by hand. BFS visits neighbours in sorted
//! order over a deterministic graph, so chains are stable across runs.
//!
//! Since v4 the hazard rules are *re-rooted on effect summaries* (see
//! [`crate::summary`]): a rule's BFS only runs when some entry's
//! propagated summary carries the relevant effect bit, every finding
//! records which summary bit convicted it (rule, SCC, frame count), and
//! the `ShardCtx` exemption became a real boundary — the D006 walk does
//! not traverse *through* exempt nodes, matching the summary clamp.
//! Three summary-native rules ride on top, rooted in `[summary]`:
//!
//! * **D013 lock-order consistency** — the lock-order graph built from
//!   held-lock-set summaries (see [`crate::lockorder`]) must be
//!   acyclic; a cycle is a static deadlock and is reported with one
//!   witness chain per edge.
//! * **D014 bounded recursion on decode paths** — every exact-edge
//!   recursion cycle reachable from a protocol decode/encode entry must
//!   contain an explicit fuel/depth guard.
//! * **D015 shard-identity independence** — no shard/worker/thread
//!   identity value may be read on a path reachable from a merge entry.

use crate::graph::{CallGraph, FnNode};
use crate::parser::HazardKind;
use crate::policy::{DataflowPolicy, GraphPolicy, SummaryPolicy};
use crate::summary::{exempt, EffectSummary, Summaries};

/// Why a finding fired, in effect-summary terms: which lattice bit
/// convicted it, computed in which condensation component, propagated
/// over how many frames (chain hops or cycle edges).
#[derive(Debug, Clone)]
pub struct SummaryNote {
    /// The effect-lattice field (`panics`, `held-lock-set`, ...).
    pub effect: &'static str,
    /// Condensation component id of the convicted function.
    pub scc: usize,
    /// Chain hops (hazard rules) or cycle edges (D013/D014).
    pub frames: usize,
}

/// One interprocedural finding, attributed to the hazard site.
#[derive(Debug, Clone)]
pub struct ChainFinding {
    /// Workspace-relative file of the hazard site.
    pub file: String,
    /// 1-based line of the hazard site.
    pub line: u32,
    /// `D006` … `D015`.
    pub rule: &'static str,
    /// Explanation with the rendered chain.
    pub message: String,
    /// Call chain as `fn (file:line)` hops, entry first, hazard fn last.
    /// For D013 the hops are the cycle's witness edges instead.
    pub chain: Vec<String>,
    /// For dataflow rules: the def-use steps from source to sink. Empty
    /// for hazard-site rules.
    pub flow: Vec<String>,
    /// Effect-summary provenance.
    pub summary: Option<SummaryNote>,
}

/// Run every configured interprocedural rule. Fails when an entry in
/// any policy section matches no graph node — a stale entry list would
/// silently un-prove the contract.
pub fn check(
    graph: &CallGraph,
    summaries: &Summaries,
    policy: &GraphPolicy,
    dataflow: &DataflowPolicy,
    summary_pol: &SummaryPolicy,
) -> Result<Vec<ChainFinding>, String> {
    let mut out = Vec::new();
    if !policy.shard_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.shard_entries, "[graph] shard_entries")?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D006",
            "mutates-shared",
            |s| s.mutates_shared,
            |h| h.kind == HazardKind::SharedMut,
            exempt,
            "mutates shared state on a sharded measurement path; results would \
             depend on shard layout — route per-shard effects through `ShardCtx`",
        ));
    }
    if !policy.protocol_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.protocol_entries, "[graph] protocol_entries")?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D007",
            "panics",
            |s| s.panics,
            |h| h.kind == HazardKind::Panic,
            |_| false,
            "can panic and is reachable from a protocol entry point; malformed \
             wire data must surface as a typed error, not an abort",
        ));
    }
    if !policy.merge_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.merge_entries, "[graph] merge_entries")?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D008",
            "float-accum",
            |_| true, // FloatAccum is not a summary bit: always walk.
            |h| h.kind == HazardKind::FloatAccum,
            |_| false,
            "accumulates floats on a shard-merge path; summation order depends \
             on shard layout — accumulate in integers or fold in sorted order",
        ));
    }
    if !dataflow.step_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.step_entries, "[dataflow] step_entries")?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D009",
            "blocks",
            |s| s.blocks,
            |h| h.kind == HazardKind::Blocking,
            |_| false,
            "blocks the calling thread and is reachable from an event-machine \
             step; a stalled handler skews every virtual-time measurement \
             behind it — model the wait as a scheduled event instead",
        ));
        out.extend(flow_scan(
            graph,
            summaries,
            &entries,
            "D010",
            "rng-escapes",
            |s| s.rng_escapes,
            "violates per-machine RNG confinement on an event-machine step \
             path; shard outputs would depend on machine interleaving",
        ));
    }
    if !dataflow.time_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.time_entries, "[dataflow] time_entries")?;
        out.extend(flow_scan(
            graph,
            summaries,
            &entries,
            "D011",
            "raw-time",
            |_| true, // raw-time flows are not a summary bit: always walk.
            "feeds a unit-less time value to the scheduler on a path the \
             virtual clock governs — construct it via SimInstant/SimDuration",
        ));
    }
    if !dataflow.hot_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.hot_entries, "[dataflow] hot_entries")?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D012",
            "allocates",
            |s| s.allocates,
            |h| h.kind == HazardKind::Alloc,
            |_| false,
            "allocates on the telemetry hot path; the alloc-free per-probe \
             budget (~23 ns) holds only if no reachable site touches the heap",
        ));
    }
    if !summary_pol.lock_entries.is_empty() {
        let entries = resolve_entries(graph, &summary_pol.lock_entries, "[summary] lock_entries")?;
        out.extend(lock_order_scan(graph, summaries, &entries));
    }
    if !summary_pol.decode_entries.is_empty() {
        let entries = resolve_entries(
            graph,
            &summary_pol.decode_entries,
            "[summary] decode_entries",
        )?;
        out.extend(recursion_scan(graph, summaries, &entries));
    }
    if !summary_pol.identity_entries.is_empty() {
        let entries = resolve_entries(
            graph,
            &summary_pol.identity_entries,
            "[summary] identity_entries",
        )?;
        out.extend(scan(
            graph,
            summaries,
            &entries,
            "D015",
            "shard-ident",
            |s| s.shard_ident,
            |h| h.kind == HazardKind::ShardIdent,
            |_| false,
            "reads a shard/worker identity value on a merge path; merged \
             results would depend on worker layout — key the data on a \
             layout-independent value (global index, address, name)",
        ));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Ok(out)
}

/// D013: build the lock-order graph over the cone of `entries` and
/// report every cycle with all of its witness chains.
fn lock_order_scan(
    graph: &CallGraph,
    summaries: &Summaries,
    entries: &[usize],
) -> Vec<ChainFinding> {
    let (seen, _) = bfs(graph, entries, false, |_| false);
    let edges = crate::lockorder::build_edges(graph, summaries, &seen);
    let mut out = Vec::new();
    for cycle in crate::lockorder::find_cycles(&edges) {
        let anchor = &cycle.witnesses[0];
        let node = &graph.nodes[anchor.node];
        let witnesses: Vec<String> = cycle.witnesses.iter().map(|w| w.witness.clone()).collect();
        let message = if cycle.locks.len() == 1 {
            format!(
                "lock `{}` re-acquired while already held; a non-reentrant \
                 mutex deadlocks against itself [witness: {}]",
                cycle.locks[0],
                witnesses.join(" | ")
            )
        } else {
            format!(
                "inconsistent lock-acquisition order: cycle {} -> {} — two \
                 workers taking opposite edges deadlock [witnesses: {}]",
                cycle.locks.join(" -> "),
                cycle.locks[0],
                witnesses.join(" | ")
            )
        };
        out.push(ChainFinding {
            file: node.file.clone(),
            line: anchor.line,
            rule: "D013",
            message,
            chain: witnesses,
            flow: Vec::new(),
            summary: Some(SummaryNote {
                effect: "held-lock-set",
                scc: summaries.per_fn[anchor.node].scc,
                frames: cycle.witnesses.len(),
            }),
        });
    }
    out
}

/// D014: every cyclic exact-edge SCC reachable from a decode entry must
/// contain an explicit fuel/depth guard.
fn recursion_scan(
    graph: &CallGraph,
    summaries: &Summaries,
    entries: &[usize],
) -> Vec<ChainFinding> {
    let (seen, pred) = bfs(graph, entries, true, |_| false);
    let mut out = Vec::new();
    for scc in &summaries.exact_sccs {
        let Some(&anchor) = scc.iter().find(|&&u| seen[u]) else {
            continue;
        };
        if scc.iter().any(|&u| graph.nodes[u].recursion_guard) {
            continue;
        }
        let node = &graph.nodes[anchor];
        let cycle: Vec<String> = scc.iter().map(|&u| graph.nodes[u].qualified()).collect();
        let chain = chain_to(graph, &pred, anchor);
        let rendered = chain
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push(ChainFinding {
            file: node.file.clone(),
            line: node.line,
            rule: "D014",
            message: format!(
                "recursion cycle {{{}}} on a decode/encode path carries no \
                 fuel/depth guard; adversarial wire data (compression-pointer \
                 loops, nested records) must hit an explicit bound, not the \
                 stack limit [chain: {rendered}]",
                cycle.join(" -> ")
            ),
            chain,
            flow: Vec::new(),
            summary: Some(SummaryNote {
                effect: "max-self-recursion",
                scc: summaries.per_fn[anchor].scc,
                frames: scc.len(),
            }),
        });
    }
    out
}

/// Map entry patterns (`doe_scanner::sweep::syn_sweep_sharded`,
/// `Do53TcpConn::query`) to node indices by suffix match on the
/// qualified name.
pub fn resolve_entries(
    graph: &CallGraph,
    patterns: &[String],
    what: &str,
) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::new();
    for pat in patterns {
        let segs: Vec<&str> = pat.split("::").collect();
        let mut hits: Vec<usize> = Vec::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            let mut full: Vec<&str> = vec![&n.crate_name];
            full.extend(n.module.iter().map(String::as_str));
            if let Some(o) = &n.owner {
                full.push(o);
            }
            full.push(&n.name);
            if full.len() >= segs.len() && full[full.len() - segs.len()..] == segs[..] {
                hits.push(i);
            }
        }
        if hits.is_empty() {
            return Err(format!(
                "lint.toml {what}: entry `{pat}` matches no function in \
                 the workspace call graph (renamed or removed?)"
            ));
        }
        out.extend(hits);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Deterministic BFS over the call graph. `exact_only` restricts the
/// walk to exact edges (D014); `boundary` nodes are still *reached*
/// (their own hazards can matter to the caller) but their out-edges are
/// not expanded — effects behind an exemption boundary are sanctioned
/// by construction, matching the summary clamp.
fn bfs(
    graph: &CallGraph,
    entries: &[usize],
    exact_only: bool,
    boundary: impl Fn(&FnNode) -> bool,
) -> (Vec<bool>, Vec<Option<(usize, u32)>>) {
    let n = graph.nodes.len();
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n]; // (caller, call line)
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in entries {
        seen[e] = true;
    }
    while let Some(u) = queue.pop_front() {
        if boundary(&graph.nodes[u]) {
            continue;
        }
        for &(v, line, exact) in &graph.adj[u] {
            if exact_only && !exact {
                continue;
            }
            if !seen[v] {
                seen[v] = true;
                pred[v] = Some((u, line));
                queue.push_back(v);
            }
        }
    }
    (seen, pred)
}

/// BFS from `entries`; emit one finding per hazard site on a reached
/// node that passes `hazard_filter` and is not `exempt`. The walk only
/// runs when some entry's propagated summary carries the `bit` — the
/// summary is the proof obligation, the BFS just reconstructs the
/// witness chain.
#[allow(clippy::too_many_arguments)]
fn scan(
    graph: &CallGraph,
    summaries: &Summaries,
    entries: &[usize],
    rule: &'static str,
    effect: &'static str,
    bit: impl Fn(&EffectSummary) -> bool,
    hazard_filter: impl Fn(&crate::parser::Hazard) -> bool,
    exempt: impl Fn(&FnNode) -> bool,
    why: &str,
) -> Vec<ChainFinding> {
    if !entries.iter().any(|&e| bit(&summaries.per_fn[e])) {
        return Vec::new();
    }
    let (seen, pred) = bfs(graph, entries, false, &exempt);

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !seen[i] || exempt(node) {
            continue;
        }
        for h in node.hazards.iter().filter(|h| hazard_filter(h)) {
            let chain = chain_to(graph, &pred, i);
            let rendered = chain
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(ChainFinding {
                file: node.file.clone(),
                line: h.line,
                rule,
                message: format!("`{}` {why} [chain: {rendered}]", h.what),
                summary: Some(SummaryNote {
                    effect,
                    scc: summaries.per_fn[i].scc,
                    frames: chain.len(),
                }),
                chain,
                flow: Vec::new(),
            });
        }
    }
    out
}

/// BFS from `entries`; emit one finding per dataflow flow (see
/// [`crate::dataflow`]) of rule `rule` on a reached node. `bit` is the
/// summary pre-filter, as in [`scan`].
fn flow_scan(
    graph: &CallGraph,
    summaries: &Summaries,
    entries: &[usize],
    rule: &'static str,
    effect: &'static str,
    bit: impl Fn(&EffectSummary) -> bool,
    why: &str,
) -> Vec<ChainFinding> {
    if !entries.iter().any(|&e| bit(&summaries.per_fn[e])) {
        return Vec::new();
    }
    let (seen, pred) = bfs(graph, entries, false, |_| false);

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        for fl in node.flows.iter().filter(|f| f.kind.rule() == rule) {
            let chain = chain_to(graph, &pred, i);
            let rendered = chain
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(" -> ");
            let steps = fl.steps.join("; ");
            out.push(ChainFinding {
                file: node.file.clone(),
                line: fl.line,
                rule,
                message: format!("{} — {why} [flow: {steps}] [chain: {rendered}]", fl.what),
                summary: Some(SummaryNote {
                    effect,
                    scc: summaries.per_fn[i].scc,
                    frames: chain.len(),
                }),
                chain,
                flow: fl.steps.clone(),
            });
        }
    }
    out
}

/// Walk the predecessor map back to an entry and render each hop.
fn chain_to(graph: &CallGraph, pred: &[Option<(usize, u32)>], end: usize) -> Vec<String> {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = end;
    let mut guard = 0usize;
    loop {
        let node = &graph.nodes[cur];
        hops.push(format!(
            "{} ({}:{})",
            node.qualified(),
            node.file,
            node.line
        ));
        match pred[cur] {
            Some((prev, _)) if guard < graph.nodes.len() => {
                cur = prev;
                guard += 1;
            }
            _ => break,
        }
    }
    hops.reverse();
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceItems};
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::policy::GraphPolicy;
    use crate::rules::test_mask;

    fn items(module: &[&str], src: &str) -> SourceItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = module.iter().map(|s| s.to_string()).collect();
        let mut parsed = parse_file(&module, &lexed.toks, &mask);
        crate::dataflow::analyze(&lexed.toks, &mut parsed);
        SourceItems {
            crate_key: "a".to_string(),
            crate_name: "a".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            module: module.clone(),
            parsed,
        }
    }

    fn gp(shard: &[&str], proto: &[&str], merge: &[&str]) -> GraphPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        GraphPolicy {
            shard_entries: v(shard),
            protocol_entries: v(proto),
            merge_entries: v(merge),
        }
    }

    fn dp(step: &[&str], time: &[&str], hot: &[&str]) -> crate::policy::DataflowPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        crate::policy::DataflowPolicy {
            step_entries: v(step),
            time_entries: v(time),
            hot_entries: v(hot),
        }
    }

    fn sp(lock: &[&str], decode: &[&str], ident: &[&str]) -> SummaryPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        SummaryPolicy {
            lock_entries: v(lock),
            decode_entries: v(decode),
            identity_entries: v(ident),
        }
    }

    fn full_check(
        g: &CallGraph,
        gpol: &GraphPolicy,
        dpol: &DataflowPolicy,
        spol: &SummaryPolicy,
    ) -> Result<Vec<ChainFinding>, String> {
        let summaries = crate::summary::compute(g);
        super::check(g, &summaries, gpol, dpol, spol)
    }

    fn check(g: &CallGraph, gpol: &GraphPolicy) -> Result<Vec<ChainFinding>, String> {
        full_check(
            g,
            gpol,
            &DataflowPolicy::default(),
            &SummaryPolicy::default(),
        )
    }

    fn dcheck(g: &CallGraph, dpol: &DataflowPolicy) -> Result<Vec<ChainFinding>, String> {
        full_check(g, &GraphPolicy::default(), dpol, &SummaryPolicy::default())
    }

    fn scheck(g: &CallGraph, spol: &SummaryPolicy) -> Result<Vec<ChainFinding>, String> {
        full_check(g, &GraphPolicy::default(), &DataflowPolicy::default(), spol)
    }

    #[test]
    fn panic_two_calls_away_is_reported_with_chain() {
        let src = r#"
            pub fn entry(x: Option<u8>) { mid(x); }
            fn mid(x: Option<u8>) { leaf(x); }
            fn leaf(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D007");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].chain.len(), 3);
        assert!(f[0].chain[0].starts_with("a::entry "));
        assert!(f[0].chain[2].starts_with("a::leaf "));
        assert!(f[0].message.contains("a::entry"));
    }

    #[test]
    fn unreachable_panics_stay_silent() {
        let src = r#"
            pub fn entry() {}
            fn elsewhere(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_purity_exempts_shardctx_methods() {
        let src = r#"
            pub struct ShardCtx { n: u64 }
            impl ShardCtx {
                pub fn charge(&self, c: &std::sync::atomic::AtomicU64) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
            pub fn run_sharded(ctx: &ShardCtx, c: &std::sync::atomic::AtomicU64) {
                ctx.charge(c);
            }
            pub fn rogue(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
            pub fn run_rogue(c: &std::sync::atomic::AtomicU64) { rogue(c); }
        "#;
        let g = build(&[items(&[], src)]);
        let clean = check(&g, &gp(&["a::run_sharded"], &[], &[])).unwrap();
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = check(&g, &gp(&["a::run_rogue"], &[], &[])).unwrap();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].rule, "D006");
    }

    #[test]
    fn float_accumulation_on_merge_path_is_caught() {
        let src = r#"
            pub struct Stats { total: f64 }
            impl Stats {
                pub fn absorb(&mut self, o: &Stats) { self.add(o.total); }
                fn add(&mut self, w: f64) { self.total += w; }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &[], &["Stats::absorb"])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D008");
        assert!(f[0].message.contains("+="));
    }

    #[test]
    fn stale_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = check(&g, &gp(&[], &["a::no_such_fn"], &[])).unwrap_err();
        assert!(err.contains("no_such_fn"));
    }

    #[test]
    fn stale_dataflow_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = dcheck(&g, &dp(&["a::gone"], &[], &[])).unwrap_err();
        assert!(err.contains("[dataflow] step_entries"), "{err}");
        assert!(err.contains("gone"));
    }

    #[test]
    fn blocking_reachable_from_step_is_d009() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self) { helper(); }
            }
            fn helper() { std::thread::sleep(core::time::Duration::from_millis(1)); }
            fn unrelated() { std::thread::sleep(core::time::Duration::from_millis(1)); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = dcheck(&g, &dp(&["M::on_event"], &[], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D009");
        assert!(f[0].message.contains("thread::sleep"));
        assert_eq!(f[0].chain.len(), 2);
    }

    #[test]
    fn lock_in_loop_reachable_from_step_is_d009() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self, q: &std::sync::Mutex<u8>) {
                    for _ in 0..4 {
                        let g = q.lock();
                    }
                }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = dcheck(&g, &dp(&["M::on_event"], &[], &[])).unwrap();
        assert!(
            f.iter()
                .any(|x| x.rule == "D009" && x.message.contains("lock() in loop")),
            "{f:?}"
        );
    }

    #[test]
    fn raw_time_flow_reachable_from_time_entry_is_d011() {
        let src = r#"
            pub fn runner(net: &mut Net) { emit(net); }
            fn emit(net: &mut Net) {
                let delay = 500;
                net.schedule_after(delay, Event::Tick);
            }
            fn dormant(net: &mut Net) {
                let delay = 500;
                net.schedule_after(delay, Event::Tick);
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = dcheck(&g, &dp(&[], &["a::runner"], &[])).unwrap();
        // Only the reachable copy of the flow is reported.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D011");
        assert!(!f[0].flow.is_empty());
        assert!(f[0]
            .flow
            .iter()
            .any(|s| s.contains("`delay` bound from integer literal")));
        assert!(f[0].message.contains("[flow:"));
    }

    #[test]
    fn unbalanced_swap_reachable_from_step_is_d010() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self, net: &mut Net) {
                    net.swap_rng(&mut self.rng);
                    self.step();
                }
                fn step(&mut self) {}
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = dcheck(&g, &dp(&["M::on_event"], &[], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D010");
        assert!(f[0].flow.iter().any(|s| s.contains("swap_rng")));
    }

    #[test]
    fn alloc_reachable_from_hot_entry_is_d012() {
        let src = r#"
            pub struct Registry;
            impl Registry {
                pub fn add(&mut self, v: u64) { self.render(v); }
                fn render(&mut self, v: u64) { let s = format!("{v}"); }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = dcheck(&g, &dp(&[], &[], &["Registry::add"])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D012");
        assert!(f[0].message.contains("format!"));
    }

    #[test]
    fn findings_carry_summary_provenance() {
        let src = r#"
            pub fn entry(x: Option<u8>) { mid(x); }
            fn mid(x: Option<u8>) { leaf(x); }
            fn leaf(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert_eq!(f.len(), 1);
        let note = f[0].summary.as_ref().expect("provenance");
        assert_eq!(note.effect, "panics");
        assert_eq!(note.frames, 3);
    }

    #[test]
    fn exemption_is_a_boundary_not_a_skip() {
        // `rogue` is only reachable *through* the exempt ShardCtx
        // method: the boundary stops the walk, so the hazard behind it
        // is sanctioned along with the method itself.
        let src = r#"
            pub struct ShardCtx { n: u64 }
            impl ShardCtx {
                pub fn charge(&self, c: &std::sync::atomic::AtomicU64) { rogue(c); }
            }
            pub fn run_sharded(ctx: &ShardCtx, c: &std::sync::atomic::AtomicU64) {
                ctx.charge(c);
            }
            fn rogue(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&["a::run_sharded"], &[], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn opposite_lock_orders_reachable_from_lock_entry_are_d013() {
        let src = r#"
            pub struct W;
            impl W {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn ba(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                }
            }
            pub fn runner(w: &W) { w.ab(); w.ba(); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = scheck(&g, &sp(&["a::runner"], &[], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D013");
        assert!(
            f[0].message.contains("W.alpha -> W.beta -> W.alpha"),
            "{}",
            f[0].message
        );
        // Both witness chains are in the finding, not just the cycle.
        assert_eq!(f[0].chain.len(), 2);
        assert!(f[0].message.contains("a::W::ab"));
        assert!(f[0].message.contains("a::W::ba"));
        let note = f[0].summary.as_ref().unwrap();
        assert_eq!(note.effect, "held-lock-set");
        assert_eq!(note.frames, 2);
    }

    #[test]
    fn lock_cycle_outside_the_entry_cone_is_silent() {
        let src = r#"
            pub struct W;
            impl W {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn ba(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                }
            }
            pub fn runner(w: &W) { w.ab(); }
        "#;
        let g = build(&[items(&[], src)]);
        // Only `ab` is in the cone: no opposite order, no cycle.
        let f = scheck(&g, &sp(&["a::runner"], &[], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unguarded_recursion_on_decode_path_is_d014() {
        let src = r#"
            pub fn decode(buf: &[u8]) { parse_name(buf); }
            fn parse_name(buf: &[u8]) { parse_label(buf); }
            fn parse_label(buf: &[u8]) { parse_name(buf); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = scheck(&g, &sp(&[], &["a::decode"], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D014");
        assert!(f[0].message.contains("a::parse_name"), "{}", f[0].message);
        assert!(f[0].message.contains("a::parse_label"));
        assert!(f[0].chain[0].starts_with("a::decode "));
        assert_eq!(f[0].summary.as_ref().unwrap().effect, "max-self-recursion");
        assert_eq!(f[0].summary.as_ref().unwrap().frames, 2);
    }

    #[test]
    fn fuel_guarded_recursion_is_clean() {
        let src = r#"
            pub fn decode(buf: &[u8]) { parse_name(buf, 64); }
            fn parse_name(buf: &[u8], depth: u32) { parse_label(buf, depth); }
            fn parse_label(buf: &[u8], n: u32) { parse_name(buf, n); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = scheck(&g, &sp(&[], &["a::decode"], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recursion_cycle_off_the_decode_path_is_silent() {
        let src = r#"
            pub fn decode(buf: &[u8]) { let n = buf.len(); }
            fn walker(buf: &[u8]) { walker(buf); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = scheck(&g, &sp(&[], &["a::decode"], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_identity_read_on_merge_path_is_d015() {
        let src = r#"
            pub struct Stats;
            impl Stats {
                pub fn absorb(&mut self, o: &Stats) { self.key(o); }
                fn key(&mut self, o: &Stats) { let k = o.shard_id; }
            }
            pub fn unrelated(o: &Stats) { let k = o.shard_id; }
        "#;
        let g = build(&[items(&[], src)]);
        let f = scheck(&g, &sp(&[], &[], &["Stats::absorb"])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D015");
        assert!(f[0].message.contains("shard_id"));
        assert_eq!(f[0].chain.len(), 2);
        assert_eq!(f[0].summary.as_ref().unwrap().effect, "shard-ident");
    }

    #[test]
    fn stale_summary_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = scheck(&g, &sp(&["a::vanished"], &[], &[])).unwrap_err();
        assert!(err.contains("[summary] lock_entries"), "{err}");
        assert!(err.contains("vanished"));
    }
}
