//! Reachability over the call graph: the interprocedural rules.
//!
//! Three rules, one BFS each, all driven by the `[graph]` section of
//! `lint.toml`:
//!
//! * **D006 shard purity** — from the sharded measurement entry points,
//!   no interior-mutability write or shared-state mutation is reachable,
//!   except inside `ShardCtx` itself (per-shard state is the sanctioned
//!   mutation channel).
//! * **D007 transitive panic reachability** — from the protocol entry
//!   points, no panic site is reachable through any call chain.
//! * **D008 float-accumulation hazard** — from the merge entry points,
//!   no order-sensitive floating-point accumulation is reachable;
//!   shard-merge results must not depend on shard layout.
//!
//! Every finding carries its full call chain (entry → … → hazard site)
//! as evidence, so a diagnostic is actionable without re-running the
//! analysis by hand. BFS visits neighbours in sorted order over a
//! deterministic graph, so chains are stable across runs.

use crate::graph::CallGraph;
use crate::parser::HazardKind;
use crate::policy::GraphPolicy;

/// One interprocedural finding, attributed to the hazard site.
#[derive(Debug, Clone)]
pub struct ChainFinding {
    /// Workspace-relative file of the hazard site.
    pub file: String,
    /// 1-based line of the hazard site.
    pub line: u32,
    /// `D006` / `D007` / `D008`.
    pub rule: &'static str,
    /// Explanation with the rendered chain.
    pub message: String,
    /// Call chain as `fn (file:line)` hops, entry first, hazard fn last.
    pub chain: Vec<String>,
}

/// Run every configured interprocedural rule. Fails when an entry in the
/// policy matches no graph node — a stale entry list would silently
/// un-prove the contract.
pub fn check(graph: &CallGraph, policy: &GraphPolicy) -> Result<Vec<ChainFinding>, String> {
    let mut out = Vec::new();
    if !policy.shard_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.shard_entries, "shard_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D006",
            |h| h.kind == HazardKind::SharedMut,
            |node| node.owner.as_deref() == Some("ShardCtx"),
            "mutates shared state on a sharded measurement path; results would \
             depend on shard layout — route per-shard effects through `ShardCtx`",
        ));
    }
    if !policy.protocol_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.protocol_entries, "protocol_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D007",
            |h| h.kind == HazardKind::Panic,
            |_| false,
            "can panic and is reachable from a protocol entry point; malformed \
             wire data must surface as a typed error, not an abort",
        ));
    }
    if !policy.merge_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.merge_entries, "merge_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D008",
            |h| h.kind == HazardKind::FloatAccum,
            |_| false,
            "accumulates floats on a shard-merge path; summation order depends \
             on shard layout — accumulate in integers or fold in sorted order",
        ));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Ok(out)
}

/// Map entry patterns (`doe_scanner::sweep::syn_sweep_sharded`,
/// `Do53TcpConn::query`) to node indices by suffix match on the
/// qualified name.
pub fn resolve_entries(
    graph: &CallGraph,
    patterns: &[String],
    what: &str,
) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::new();
    for pat in patterns {
        let segs: Vec<&str> = pat.split("::").collect();
        let mut hits: Vec<usize> = Vec::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            let mut full: Vec<&str> = vec![&n.crate_name];
            full.extend(n.module.iter().map(String::as_str));
            if let Some(o) = &n.owner {
                full.push(o);
            }
            full.push(&n.name);
            if full.len() >= segs.len() && full[full.len() - segs.len()..] == segs[..] {
                hits.push(i);
            }
        }
        if hits.is_empty() {
            return Err(format!(
                "lint.toml [graph] {what}: entry `{pat}` matches no function in \
                 the workspace call graph (renamed or removed?)"
            ));
        }
        out.extend(hits);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// BFS from `entries`; emit one finding per hazard site on a reached
/// node that passes `hazard_filter` and is not `exempt`.
fn scan(
    graph: &CallGraph,
    entries: &[usize],
    rule: &'static str,
    hazard_filter: impl Fn(&crate::parser::Hazard) -> bool,
    exempt: impl Fn(&crate::graph::FnNode) -> bool,
    why: &str,
) -> Vec<ChainFinding> {
    let n = graph.nodes.len();
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n]; // (caller, call line)
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in entries {
        seen[e] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &(v, line) in &graph.adj[u] {
            if !seen[v] {
                seen[v] = true;
                pred[v] = Some((u, line));
                queue.push_back(v);
            }
        }
    }

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !seen[i] || exempt(node) {
            continue;
        }
        for h in node.hazards.iter().filter(|h| hazard_filter(h)) {
            let chain = chain_to(graph, &pred, i);
            let rendered = chain
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(ChainFinding {
                file: node.file.clone(),
                line: h.line,
                rule,
                message: format!("`{}` {why} [chain: {rendered}]", h.what),
                chain,
            });
        }
    }
    out
}

/// Walk the predecessor map back to an entry and render each hop.
fn chain_to(graph: &CallGraph, pred: &[Option<(usize, u32)>], end: usize) -> Vec<String> {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = end;
    let mut guard = 0usize;
    loop {
        let node = &graph.nodes[cur];
        hops.push(format!(
            "{} ({}:{})",
            node.qualified(),
            node.file,
            node.line
        ));
        match pred[cur] {
            Some((prev, _)) if guard < graph.nodes.len() => {
                cur = prev;
                guard += 1;
            }
            _ => break,
        }
    }
    hops.reverse();
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceItems};
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::policy::GraphPolicy;
    use crate::rules::test_mask;

    fn items(module: &[&str], src: &str) -> SourceItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = module.iter().map(|s| s.to_string()).collect();
        SourceItems {
            crate_key: "a".to_string(),
            crate_name: "a".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            module: module.clone(),
            parsed: parse_file(&module, &lexed.toks, &mask),
        }
    }

    fn gp(shard: &[&str], proto: &[&str], merge: &[&str]) -> GraphPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        GraphPolicy {
            shard_entries: v(shard),
            protocol_entries: v(proto),
            merge_entries: v(merge),
        }
    }

    #[test]
    fn panic_two_calls_away_is_reported_with_chain() {
        let src = r#"
            pub fn entry(x: Option<u8>) { mid(x); }
            fn mid(x: Option<u8>) { leaf(x); }
            fn leaf(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D007");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].chain.len(), 3);
        assert!(f[0].chain[0].starts_with("a::entry "));
        assert!(f[0].chain[2].starts_with("a::leaf "));
        assert!(f[0].message.contains("a::entry"));
    }

    #[test]
    fn unreachable_panics_stay_silent() {
        let src = r#"
            pub fn entry() {}
            fn elsewhere(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_purity_exempts_shardctx_methods() {
        let src = r#"
            pub struct ShardCtx { n: u64 }
            impl ShardCtx {
                pub fn charge(&self, c: &std::sync::atomic::AtomicU64) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
            pub fn run_sharded(ctx: &ShardCtx, c: &std::sync::atomic::AtomicU64) {
                ctx.charge(c);
            }
            pub fn rogue(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
            pub fn run_rogue(c: &std::sync::atomic::AtomicU64) { rogue(c); }
        "#;
        let g = build(&[items(&[], src)]);
        let clean = check(&g, &gp(&["a::run_sharded"], &[], &[])).unwrap();
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = check(&g, &gp(&["a::run_rogue"], &[], &[])).unwrap();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].rule, "D006");
    }

    #[test]
    fn float_accumulation_on_merge_path_is_caught() {
        let src = r#"
            pub struct Stats { total: f64 }
            impl Stats {
                pub fn absorb(&mut self, o: &Stats) { self.add(o.total); }
                fn add(&mut self, w: f64) { self.total += w; }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &[], &["Stats::absorb"])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D008");
        assert!(f[0].message.contains("+="));
    }

    #[test]
    fn stale_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = check(&g, &gp(&[], &["a::no_such_fn"], &[])).unwrap_err();
        assert!(err.contains("no_such_fn"));
    }
}
