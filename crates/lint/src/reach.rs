//! Reachability over the call graph: the interprocedural rules.
//!
//! Hazard rules, one BFS each, driven by the `[graph]` section of
//! `lint.toml`:
//!
//! * **D006 shard purity** — from the sharded measurement entry points,
//!   no interior-mutability write or shared-state mutation is reachable,
//!   except inside `ShardCtx` itself (per-shard state is the sanctioned
//!   mutation channel).
//! * **D007 transitive panic reachability** — from the protocol entry
//!   points, no panic site is reachable through any call chain.
//! * **D008 float-accumulation hazard** — from the merge entry points,
//!   no order-sensitive floating-point accumulation is reachable;
//!   shard-merge results must not depend on shard layout.
//!
//! Plus the scheduler-era rules rooted at the `[dataflow]` section:
//!
//! * **D009 non-blocking step** — from the event-machine step entry
//!   points, no blocking operation (sleeps, channel receives, real I/O,
//!   lock-in-loop) is reachable; one stalled handler would skew every
//!   virtual-time measurement behind it.
//! * **D010 RNG confinement** — on functions reachable from the step
//!   entry points, the dataflow pass's `swap_rng`-pairing and RNG-leak
//!   findings (see [`crate::dataflow`]) become errors.
//! * **D011 time-unit hygiene** — on functions reachable from the
//!   time entry points, raw-time flows into `sched` deadline APIs
//!   become errors.
//! * **D012 hot-path allocation freedom** — from the telemetry hot-path
//!   entry points, no allocation site is reachable.
//!
//! Every finding carries its full call chain (entry → … → hazard site)
//! as evidence — dataflow findings additionally carry the def-use steps
//! from taint source to sink — so a diagnostic is actionable without
//! re-running the analysis by hand. BFS visits neighbours in sorted
//! order over a deterministic graph, so chains are stable across runs.

use crate::graph::CallGraph;
use crate::parser::HazardKind;
use crate::policy::{DataflowPolicy, GraphPolicy};

/// One interprocedural finding, attributed to the hazard site.
#[derive(Debug, Clone)]
pub struct ChainFinding {
    /// Workspace-relative file of the hazard site.
    pub file: String,
    /// 1-based line of the hazard site.
    pub line: u32,
    /// `D006` … `D012`.
    pub rule: &'static str,
    /// Explanation with the rendered chain.
    pub message: String,
    /// Call chain as `fn (file:line)` hops, entry first, hazard fn last.
    pub chain: Vec<String>,
    /// For dataflow rules: the def-use steps from source to sink. Empty
    /// for hazard-site rules.
    pub flow: Vec<String>,
}

/// Run every configured interprocedural rule. Fails when an entry in
/// either policy section matches no graph node — a stale entry list
/// would silently un-prove the contract.
pub fn check(
    graph: &CallGraph,
    policy: &GraphPolicy,
    dataflow: &DataflowPolicy,
) -> Result<Vec<ChainFinding>, String> {
    let mut out = Vec::new();
    if !policy.shard_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.shard_entries, "[graph] shard_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D006",
            |h| h.kind == HazardKind::SharedMut,
            |node| node.owner.as_deref() == Some("ShardCtx"),
            "mutates shared state on a sharded measurement path; results would \
             depend on shard layout — route per-shard effects through `ShardCtx`",
        ));
    }
    if !policy.protocol_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.protocol_entries, "[graph] protocol_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D007",
            |h| h.kind == HazardKind::Panic,
            |_| false,
            "can panic and is reachable from a protocol entry point; malformed \
             wire data must surface as a typed error, not an abort",
        ));
    }
    if !policy.merge_entries.is_empty() {
        let entries = resolve_entries(graph, &policy.merge_entries, "[graph] merge_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D008",
            |h| h.kind == HazardKind::FloatAccum,
            |_| false,
            "accumulates floats on a shard-merge path; summation order depends \
             on shard layout — accumulate in integers or fold in sorted order",
        ));
    }
    if !dataflow.step_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.step_entries, "[dataflow] step_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D009",
            |h| h.kind == HazardKind::Blocking,
            |_| false,
            "blocks the calling thread and is reachable from an event-machine \
             step; a stalled handler skews every virtual-time measurement \
             behind it — model the wait as a scheduled event instead",
        ));
        out.extend(flow_scan(
            graph,
            &entries,
            "D010",
            "violates per-machine RNG confinement on an event-machine step \
             path; shard outputs would depend on machine interleaving",
        ));
    }
    if !dataflow.time_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.time_entries, "[dataflow] time_entries")?;
        out.extend(flow_scan(
            graph,
            &entries,
            "D011",
            "feeds a unit-less time value to the scheduler on a path the \
             virtual clock governs — construct it via SimInstant/SimDuration",
        ));
    }
    if !dataflow.hot_entries.is_empty() {
        let entries = resolve_entries(graph, &dataflow.hot_entries, "[dataflow] hot_entries")?;
        out.extend(scan(
            graph,
            &entries,
            "D012",
            |h| h.kind == HazardKind::Alloc,
            |_| false,
            "allocates on the telemetry hot path; the alloc-free per-probe \
             budget (~23 ns) holds only if no reachable site touches the heap",
        ));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Ok(out)
}

/// Map entry patterns (`doe_scanner::sweep::syn_sweep_sharded`,
/// `Do53TcpConn::query`) to node indices by suffix match on the
/// qualified name.
pub fn resolve_entries(
    graph: &CallGraph,
    patterns: &[String],
    what: &str,
) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::new();
    for pat in patterns {
        let segs: Vec<&str> = pat.split("::").collect();
        let mut hits: Vec<usize> = Vec::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            let mut full: Vec<&str> = vec![&n.crate_name];
            full.extend(n.module.iter().map(String::as_str));
            if let Some(o) = &n.owner {
                full.push(o);
            }
            full.push(&n.name);
            if full.len() >= segs.len() && full[full.len() - segs.len()..] == segs[..] {
                hits.push(i);
            }
        }
        if hits.is_empty() {
            return Err(format!(
                "lint.toml {what}: entry `{pat}` matches no function in \
                 the workspace call graph (renamed or removed?)"
            ));
        }
        out.extend(hits);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// BFS from `entries`; emit one finding per hazard site on a reached
/// node that passes `hazard_filter` and is not `exempt`.
fn scan(
    graph: &CallGraph,
    entries: &[usize],
    rule: &'static str,
    hazard_filter: impl Fn(&crate::parser::Hazard) -> bool,
    exempt: impl Fn(&crate::graph::FnNode) -> bool,
    why: &str,
) -> Vec<ChainFinding> {
    let n = graph.nodes.len();
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n]; // (caller, call line)
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in entries {
        seen[e] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &(v, line) in &graph.adj[u] {
            if !seen[v] {
                seen[v] = true;
                pred[v] = Some((u, line));
                queue.push_back(v);
            }
        }
    }

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !seen[i] || exempt(node) {
            continue;
        }
        for h in node.hazards.iter().filter(|h| hazard_filter(h)) {
            let chain = chain_to(graph, &pred, i);
            let rendered = chain
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(ChainFinding {
                file: node.file.clone(),
                line: h.line,
                rule,
                message: format!("`{}` {why} [chain: {rendered}]", h.what),
                chain,
                flow: Vec::new(),
            });
        }
    }
    out
}

/// BFS from `entries`; emit one finding per dataflow flow (see
/// [`crate::dataflow`]) of rule `rule` on a reached node.
fn flow_scan(
    graph: &CallGraph,
    entries: &[usize],
    rule: &'static str,
    why: &str,
) -> Vec<ChainFinding> {
    let n = graph.nodes.len();
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
    for &e in entries {
        seen[e] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &(v, line) in &graph.adj[u] {
            if !seen[v] {
                seen[v] = true;
                pred[v] = Some((u, line));
                queue.push_back(v);
            }
        }
    }

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        for fl in node.flows.iter().filter(|f| f.kind.rule() == rule) {
            let chain = chain_to(graph, &pred, i);
            let rendered = chain
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(" -> ");
            let steps = fl.steps.join("; ");
            out.push(ChainFinding {
                file: node.file.clone(),
                line: fl.line,
                rule,
                message: format!("{} — {why} [flow: {steps}] [chain: {rendered}]", fl.what),
                chain,
                flow: fl.steps.clone(),
            });
        }
    }
    out
}

/// Walk the predecessor map back to an entry and render each hop.
fn chain_to(graph: &CallGraph, pred: &[Option<(usize, u32)>], end: usize) -> Vec<String> {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = end;
    let mut guard = 0usize;
    loop {
        let node = &graph.nodes[cur];
        hops.push(format!(
            "{} ({}:{})",
            node.qualified(),
            node.file,
            node.line
        ));
        match pred[cur] {
            Some((prev, _)) if guard < graph.nodes.len() => {
                cur = prev;
                guard += 1;
            }
            _ => break,
        }
    }
    hops.reverse();
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceItems};
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::policy::GraphPolicy;
    use crate::rules::test_mask;

    fn items(module: &[&str], src: &str) -> SourceItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = module.iter().map(|s| s.to_string()).collect();
        let mut parsed = parse_file(&module, &lexed.toks, &mask);
        crate::dataflow::analyze(&lexed.toks, &mut parsed);
        SourceItems {
            crate_key: "a".to_string(),
            crate_name: "a".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            module: module.clone(),
            parsed,
        }
    }

    fn gp(shard: &[&str], proto: &[&str], merge: &[&str]) -> GraphPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        GraphPolicy {
            shard_entries: v(shard),
            protocol_entries: v(proto),
            merge_entries: v(merge),
        }
    }

    fn dp(step: &[&str], time: &[&str], hot: &[&str]) -> crate::policy::DataflowPolicy {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        crate::policy::DataflowPolicy {
            step_entries: v(step),
            time_entries: v(time),
            hot_entries: v(hot),
        }
    }

    fn check(g: &CallGraph, gpol: &GraphPolicy) -> Result<Vec<ChainFinding>, String> {
        super::check(g, gpol, &crate::policy::DataflowPolicy::default())
    }

    #[test]
    fn panic_two_calls_away_is_reported_with_chain() {
        let src = r#"
            pub fn entry(x: Option<u8>) { mid(x); }
            fn mid(x: Option<u8>) { leaf(x); }
            fn leaf(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D007");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].chain.len(), 3);
        assert!(f[0].chain[0].starts_with("a::entry "));
        assert!(f[0].chain[2].starts_with("a::leaf "));
        assert!(f[0].message.contains("a::entry"));
    }

    #[test]
    fn unreachable_panics_stay_silent() {
        let src = r#"
            pub fn entry() {}
            fn elsewhere(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &["a::entry"], &[])).unwrap();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_purity_exempts_shardctx_methods() {
        let src = r#"
            pub struct ShardCtx { n: u64 }
            impl ShardCtx {
                pub fn charge(&self, c: &std::sync::atomic::AtomicU64) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
            pub fn run_sharded(ctx: &ShardCtx, c: &std::sync::atomic::AtomicU64) {
                ctx.charge(c);
            }
            pub fn rogue(c: &std::sync::atomic::AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }
            pub fn run_rogue(c: &std::sync::atomic::AtomicU64) { rogue(c); }
        "#;
        let g = build(&[items(&[], src)]);
        let clean = check(&g, &gp(&["a::run_sharded"], &[], &[])).unwrap();
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = check(&g, &gp(&["a::run_rogue"], &[], &[])).unwrap();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].rule, "D006");
    }

    #[test]
    fn float_accumulation_on_merge_path_is_caught() {
        let src = r#"
            pub struct Stats { total: f64 }
            impl Stats {
                pub fn absorb(&mut self, o: &Stats) { self.add(o.total); }
                fn add(&mut self, w: f64) { self.total += w; }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = check(&g, &gp(&[], &[], &["Stats::absorb"])).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D008");
        assert!(f[0].message.contains("+="));
    }

    #[test]
    fn stale_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = check(&g, &gp(&[], &["a::no_such_fn"], &[])).unwrap_err();
        assert!(err.contains("no_such_fn"));
    }

    #[test]
    fn stale_dataflow_entry_is_a_hard_error() {
        let g = build(&[items(&[], "pub fn entry() {}")]);
        let err = super::check(&g, &gp(&[], &[], &[]), &dp(&["a::gone"], &[], &[])).unwrap_err();
        assert!(err.contains("[dataflow] step_entries"), "{err}");
        assert!(err.contains("gone"));
    }

    #[test]
    fn blocking_reachable_from_step_is_d009() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self) { helper(); }
            }
            fn helper() { std::thread::sleep(core::time::Duration::from_millis(1)); }
            fn unrelated() { std::thread::sleep(core::time::Duration::from_millis(1)); }
        "#;
        let g = build(&[items(&[], src)]);
        let f = super::check(&g, &gp(&[], &[], &[]), &dp(&["M::on_event"], &[], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D009");
        assert!(f[0].message.contains("thread::sleep"));
        assert_eq!(f[0].chain.len(), 2);
    }

    #[test]
    fn lock_in_loop_reachable_from_step_is_d009() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self, q: &std::sync::Mutex<u8>) {
                    for _ in 0..4 {
                        let g = q.lock();
                    }
                }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = super::check(&g, &gp(&[], &[], &[]), &dp(&["M::on_event"], &[], &[])).unwrap();
        assert!(
            f.iter()
                .any(|x| x.rule == "D009" && x.message.contains("lock() in loop")),
            "{f:?}"
        );
    }

    #[test]
    fn raw_time_flow_reachable_from_time_entry_is_d011() {
        let src = r#"
            pub fn runner(net: &mut Net) { emit(net); }
            fn emit(net: &mut Net) {
                let delay = 500;
                net.schedule_after(delay, Event::Tick);
            }
            fn dormant(net: &mut Net) {
                let delay = 500;
                net.schedule_after(delay, Event::Tick);
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = super::check(&g, &gp(&[], &[], &[]), &dp(&[], &["a::runner"], &[])).unwrap();
        // Only the reachable copy of the flow is reported.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D011");
        assert!(!f[0].flow.is_empty());
        assert!(f[0]
            .flow
            .iter()
            .any(|s| s.contains("`delay` bound from integer literal")));
        assert!(f[0].message.contains("[flow:"));
    }

    #[test]
    fn unbalanced_swap_reachable_from_step_is_d010() {
        let src = r#"
            pub struct M;
            impl M {
                pub fn on_event(&mut self, net: &mut Net) {
                    net.swap_rng(&mut self.rng);
                    self.step();
                }
                fn step(&mut self) {}
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = super::check(&g, &gp(&[], &[], &[]), &dp(&["M::on_event"], &[], &[])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D010");
        assert!(f[0].flow.iter().any(|s| s.contains("swap_rng")));
    }

    #[test]
    fn alloc_reachable_from_hot_entry_is_d012() {
        let src = r#"
            pub struct Registry;
            impl Registry {
                pub fn add(&mut self, v: u64) { self.render(v); }
                fn render(&mut self, v: u64) { let s = format!("{v}"); }
            }
        "#;
        let g = build(&[items(&[], src)]);
        let f = super::check(&g, &gp(&[], &[], &[]), &dp(&[], &[], &["Registry::add"])).unwrap();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D012");
        assert!(f[0].message.contains("format!"));
    }
}
