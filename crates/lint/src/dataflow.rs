//! Intraprocedural dataflow: def-use chains over local bindings with a
//! small taint lattice, walked per function over the token range the
//! parser recorded in [`crate::parser::FnItem::body`].
//!
//! Two taint facts propagate through `let` bindings in program order:
//!
//! * **raw time** (D011) — a value rooted at a top-level integer literal
//!   or a `std::time::Duration`, neither of which carries the virtual
//!   clock's unit. Sinks are the `sched` deadline APIs (`schedule`,
//!   `schedule_at`, `schedule_after`); the `SimInstant`/`SimDuration`
//!   constructors are sanitizers — their presence anywhere in an
//!   initializer or argument shields the span.
//! * **per-machine RNG** (D010) — a value drawn from an RNG stream
//!   (`.gen()`, `.sample()`, ...). Sinks are shared `DataPlane` writes
//!   (`plane_mut`): per-machine randomness leaking into shared state
//!   couples shard outputs to machine interleaving.
//!
//! The lattice is deliberately two-point per fact (`Clean` < `Raw`):
//! joins happen implicitly — a binding is tainted if any
//! program-order initializer taints it, and shadowing re-binds. Taint
//! only propagates at expression depth zero: a tainted name passed
//! *into* a call is laundered (the callee may well construct the proper
//! type), which keeps the rule's false-positive rate near zero at the
//! cost of missing identity wrappers.
//!
//! Independently, D010's pairing half is a path-sensitive parity walk
//! over the body's brace tree: every `swap_rng` toggles the "foreign
//! RNG installed" bit, `if`/`else` chains must agree on the toggle
//! parity, `match`/loop bodies must be net-neutral, and every exit
//! (`?`, `return`, fall-off-the-end) must see even parity.
//!
//! Findings attach to [`crate::parser::FnItem::flows`]; the graph layer
//! reports them only for functions reachable from the `[dataflow]`
//! entry sets, each carrying a human-readable step chain.

use std::collections::HashMap;

use crate::lexer::Tok;
use crate::parser::ParsedFile;

/// What a flow finding proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// `swap_rng` parity differs across paths or an exit path leaves a
    /// foreign RNG installed (D010).
    RngUnbalanced,
    /// A per-machine RNG value reaches a shared `DataPlane` write (D010).
    RngLeak,
    /// A raw integer literal or `std::time::Duration` reaches a `sched`
    /// deadline API without passing a `Sim*` constructor (D011).
    RawTime,
}

impl FlowKind {
    /// The rule this flow surfaces under.
    pub fn rule(self) -> &'static str {
        match self {
            FlowKind::RngUnbalanced | FlowKind::RngLeak => "D010",
            FlowKind::RawTime => "D011",
        }
    }

    /// Stable machine key for JSON output.
    pub fn key(self) -> &'static str {
        match self {
            FlowKind::RngUnbalanced => "rng_unbalanced",
            FlowKind::RngLeak => "rng_leak",
            FlowKind::RawTime => "raw_time",
        }
    }
}

/// One dataflow finding inside a function body.
#[derive(Debug, Clone)]
pub struct Flow {
    /// 1-based source line of the sink (or problematic exit).
    pub line: u32,
    /// Which invariant the flow violates.
    pub kind: FlowKind,
    /// One-line description of the violation.
    pub what: String,
    /// Human-readable def-use steps from source to sink, in order.
    pub steps: Vec<String>,
}

/// `sched` deadline APIs whose first argument must be virtual-clock
/// typed (D011 sinks).
const TIME_SINKS: &[&str] = &["schedule", "schedule_at", "schedule_after"];

/// Virtual-clock constructors/types: their presence anywhere in a span
/// sanitizes it — the value demonstrably went through the typed API.
const SANITIZERS: &[&str] = &["SimDuration", "SimInstant", "SimTime"];

/// RNG draw methods: a binding initialized through one carries
/// per-machine randomness (D010 leak source).
const RNG_METHODS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "sample",
    "next_u32",
    "next_u64",
];

/// Run the dataflow pass over every parsed function, attaching findings
/// to [`crate::parser::FnItem::flows`]. `toks` must be the same token
/// stream `parsed` was built from; nested fn bodies (closures-turned-fns,
/// inner test helpers) are excluded from the enclosing fn's walk.
pub fn analyze(toks: &[Tok], parsed: &mut ParsedFile) {
    let ranges: Vec<(usize, usize)> = parsed.fns.iter().map(|f| f.body).collect();
    for (idx, item) in parsed.fns.iter_mut().enumerate() {
        let (start, end) = item.body;
        if start >= end || end > toks.len() {
            continue;
        }
        // Visible tokens: the body range minus any *other* fn's body
        // strictly nested inside it.
        let mut view = Vec::with_capacity(end - start);
        let mut k = start;
        'tokens: while k < end {
            for (j, &(s2, e2)) in ranges.iter().enumerate() {
                if j != idx
                    && (s2, e2) != (start, end)
                    && s2 >= start
                    && e2 <= end
                    && k >= s2
                    && k < e2
                {
                    k = e2;
                    continue 'tokens;
                }
            }
            view.push(k);
            k += 1;
        }
        let scan = FnScan { toks, view: &view };
        let mut flows = scan.run(item.line);
        flows.sort_by_key(|f| f.line);
        item.flows = flows;
    }
}

/// Per-binding taint state. Both facts are tracked independently; a
/// re-`let` of the same name replaces the whole entry (shadowing).
#[derive(Debug, Clone, Default)]
struct Binding {
    /// Raw-time taint: (root description, def-use steps so far).
    time: Option<(String, Vec<String>)>,
    /// Per-machine RNG taint: def-use steps so far.
    rng: Option<Vec<String>>,
}

/// Raw-time taint verdict for one expression span.
enum Taint {
    Clean,
    /// `desc` names the taint root ("integer literal"); `src` names the
    /// immediate carrier at this span ("`delay_ms`" or the root itself).
    Raw {
        desc: String,
        src: String,
        steps: Vec<String>,
    },
}

struct FnScan<'a> {
    toks: &'a [Tok],
    /// Absolute token indices visible to this function, in order.
    view: &'a [usize],
}

impl<'a> FnScan<'a> {
    fn tok(&self, vi: usize) -> &Tok {
        &self.toks[self.view[vi]]
    }

    fn ident_at(&self, vi: usize) -> Option<&str> {
        self.view
            .get(vi)
            .map(|&t| &self.toks[t])
            .and_then(Tok::ident)
    }

    fn punct_at(&self, vi: usize, c: char) -> bool {
        self.view.get(vi).is_some_and(|&t| self.toks[t].is_punct(c))
    }

    /// Does a call start right after the name at `vi` (`(` or `::<`)?
    fn called_at(&self, vi: usize) -> bool {
        self.punct_at(vi + 1, '(') || (self.punct_at(vi + 1, ':') && self.punct_at(vi + 2, ':'))
    }

    fn run(&self, fn_line: u32) -> Vec<Flow> {
        let mut flows = Vec::new();
        let bindings = self.bindings();
        self.time_sinks(&bindings, &mut flows);
        self.rng_leaks(&bindings, &mut flows);
        if (0..self.view.len()).any(|i| self.ident_at(i) == Some("swap_rng")) {
            let mut swaps = Vec::new();
            let total = self.swap_parity(0, self.view.len(), 0, &mut swaps, &mut flows);
            if !total.is_multiple_of(2) {
                flows.push(self.unbalanced(
                    fn_line,
                    &swaps,
                    "function returns with the per-machine RNG still installed",
                ));
            }
        }
        flows
    }

    // ---- binding environment -------------------------------------------

    /// One forward pass building the def-use environment: only simple
    /// `let [mut] name [: ty] = init;` statements bind (patterns are
    /// skipped), later bindings shadow earlier ones.
    fn bindings(&self) -> HashMap<String, Binding> {
        let mut map: HashMap<String, Binding> = HashMap::new();
        let mut i = 0;
        while i < self.view.len() {
            if self.ident_at(i) != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if self.ident_at(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = self.ident_at(j) else {
                i += 1;
                continue;
            };
            // Simple-ident patterns only: the name must be followed by
            // `:` (type), `=` (init) — `Some(x)`, tuples and struct
            // patterns are not bindings we track.
            let name = name.to_string();
            let line = self.tok(j).line;
            let Some(eq) = self.find_init_eq(j + 1) else {
                i = j + 1;
                continue;
            };
            let semi = self.find_semi(eq + 1);
            let span = (eq + 1, semi);
            let time = match self.taint_of(span, &map) {
                Taint::Clean => None,
                Taint::Raw {
                    desc, mut steps, ..
                } => {
                    steps.push(format!("`{name}` bound from {desc} (line {line})"));
                    Some((desc, steps))
                }
            };
            let rng = self.rng_source(span, &map).map(|mut steps| {
                steps.push(format!(
                    "`{name}` derived from the per-machine RNG (line {line})"
                ));
                steps
            });
            map.insert(name, Binding { time, rng });
            i = semi + 1;
        }
        map
    }

    /// From just after the bound name: the view index of the
    /// initializer's `=`, skipping a type annotation. `None` when the
    /// statement has no initializer or the pattern is not simple.
    fn find_init_eq(&self, from: usize) -> Option<usize> {
        // Immediately after the name only `:` or `=` keep this a simple
        // binding.
        if !(self.punct_at(from, '=') || self.punct_at(from, ':')) {
            return None;
        }
        if self.punct_at(from, ':') && self.punct_at(from + 1, ':') {
            return None; // path pattern `let E::V = ...`
        }
        let (mut paren, mut bracket, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
        let mut k = from;
        while k < self.view.len() {
            let tok = self.tok(k);
            match tok.kind {
                crate::lexer::TokKind::Punct('(') => paren += 1,
                crate::lexer::TokKind::Punct(')') => paren -= 1,
                crate::lexer::TokKind::Punct('[') => bracket += 1,
                crate::lexer::TokKind::Punct(']') => bracket -= 1,
                crate::lexer::TokKind::Punct('{') => brace += 1,
                crate::lexer::TokKind::Punct('}') => brace -= 1,
                crate::lexer::TokKind::Punct('<') => angle += 1,
                crate::lexer::TokKind::Punct('>') => {
                    let arrow = k.checked_sub(1).is_some_and(|p| self.punct_at(p, '-'));
                    if !arrow {
                        angle -= 1;
                    }
                }
                crate::lexer::TokKind::Punct('=')
                    if paren == 0 && bracket == 0 && brace == 0 && angle <= 0 =>
                {
                    let compound = k
                        .checked_sub(1)
                        .is_some_and(|p| "<>!+-*/%&|^=".chars().any(|c| self.punct_at(p, c)));
                    let next_eq = self.punct_at(k + 1, '=') || self.punct_at(k + 1, '>');
                    if !compound && !next_eq {
                        return Some(k);
                    }
                }
                crate::lexer::TokKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                    return None;
                }
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// View index of the `;` terminating the statement starting at
    /// `from` (depth-0 in parens/brackets/braces), or `view.len()`.
    fn find_semi(&self, from: usize) -> usize {
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        let mut k = from;
        while k < self.view.len() {
            match self.tok(k).kind {
                crate::lexer::TokKind::Punct('(') => paren += 1,
                crate::lexer::TokKind::Punct(')') => paren -= 1,
                crate::lexer::TokKind::Punct('[') => bracket += 1,
                crate::lexer::TokKind::Punct(']') => bracket -= 1,
                crate::lexer::TokKind::Punct('{') => brace += 1,
                crate::lexer::TokKind::Punct('}') => {
                    brace -= 1;
                    if brace < 0 {
                        return k; // fell off the enclosing block
                    }
                }
                crate::lexer::TokKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                    return k;
                }
                _ => {}
            }
            k += 1;
        }
        self.view.len()
    }

    // ---- raw-time taint (D011) -----------------------------------------

    /// Taint verdict for the half-open view span. Sanitizer idents
    /// anywhere shield the whole span; otherwise the first depth-0 hit
    /// wins: an integer literal, a `Duration` mention, or a tainted
    /// binding name.
    fn taint_of(&self, span: (usize, usize), map: &HashMap<String, Binding>) -> Taint {
        for vi in span.0..span.1.min(self.view.len()) {
            if let Some(id) = self.ident_at(vi) {
                if SANITIZERS.contains(&id) {
                    return Taint::Clean;
                }
            }
        }
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        for vi in span.0..span.1.min(self.view.len()) {
            let tok = self.tok(vi);
            let depth0 = paren == 0 && bracket == 0 && brace == 0;
            match tok.kind {
                crate::lexer::TokKind::Punct('(') => paren += 1,
                crate::lexer::TokKind::Punct(')') => paren -= 1,
                crate::lexer::TokKind::Punct('[') => bracket += 1,
                crate::lexer::TokKind::Punct(']') => bracket -= 1,
                crate::lexer::TokKind::Punct('{') => brace += 1,
                crate::lexer::TokKind::Punct('}') => brace -= 1,
                _ if depth0 => {
                    let after_dot = vi.checked_sub(1).is_some_and(|p| self.punct_at(p, '.'));
                    if tok.is_num_literal() && !after_dot {
                        return Taint::Raw {
                            desc: "integer literal".to_string(),
                            src: "integer literal".to_string(),
                            steps: Vec::new(),
                        };
                    }
                    if let Some(id) = tok.ident() {
                        if id == "Duration" {
                            return Taint::Raw {
                                desc: "std::time::Duration value".to_string(),
                                src: "std::time::Duration value".to_string(),
                                steps: Vec::new(),
                            };
                        }
                        if !after_dot {
                            if let Some(Binding {
                                time: Some((desc, steps)),
                                ..
                            }) = map.get(id)
                            {
                                return Taint::Raw {
                                    desc: desc.clone(),
                                    src: format!("`{id}`"),
                                    steps: steps.clone(),
                                };
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Taint::Clean
    }

    /// Report every deadline-API call whose first argument is raw-time
    /// tainted.
    fn time_sinks(&self, map: &HashMap<String, Binding>, flows: &mut Vec<Flow>) {
        for i in 0..self.view.len() {
            let Some(id) = self.ident_at(i) else { continue };
            if !TIME_SINKS.contains(&id) || !self.punct_at(i + 1, '(') {
                continue;
            }
            if self.punct_at(i + 2, ')') {
                continue; // no arguments
            }
            let line = self.tok(i).line;
            let span = (i + 2, self.first_arg_end(i + 1));
            if let Taint::Raw {
                desc,
                src,
                mut steps,
            } = self.taint_of(span, map)
            {
                steps.push(format!(
                    "{src} flows into `{id}` deadline argument (line {line})"
                ));
                flows.push(Flow {
                    line,
                    kind: FlowKind::RawTime,
                    what: format!("{desc} reaches `{id}` without a Sim* constructor"),
                    steps,
                });
            }
        }
    }

    /// End (exclusive, view index) of the first argument of the call
    /// whose `(` sits at view index `open`.
    fn first_arg_end(&self, open: usize) -> usize {
        let (mut paren, mut bracket, mut brace) = (1i32, 0i32, 0i32);
        let mut k = open + 1;
        while k < self.view.len() {
            match self.tok(k).kind {
                crate::lexer::TokKind::Punct('(') => paren += 1,
                crate::lexer::TokKind::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        return k;
                    }
                }
                crate::lexer::TokKind::Punct('[') => bracket += 1,
                crate::lexer::TokKind::Punct(']') => bracket -= 1,
                crate::lexer::TokKind::Punct('{') => brace += 1,
                crate::lexer::TokKind::Punct('}') => brace -= 1,
                crate::lexer::TokKind::Punct(',') if paren == 1 && bracket == 0 && brace == 0 => {
                    return k;
                }
                _ => {}
            }
            k += 1;
        }
        self.view.len()
    }

    // ---- per-machine RNG (D010) ----------------------------------------

    /// Does the span draw from an RNG stream — directly (`.gen(...)`) or
    /// through an rng-tainted binding? Returns the def-use steps of the
    /// source when it does.
    fn rng_source(
        &self,
        span: (usize, usize),
        map: &HashMap<String, Binding>,
    ) -> Option<Vec<String>> {
        for vi in span.0..span.1.min(self.view.len()) {
            let Some(id) = self.ident_at(vi) else {
                continue;
            };
            let after_dot = vi.checked_sub(1).is_some_and(|p| self.punct_at(p, '.'));
            if after_dot && RNG_METHODS.contains(&id) && self.called_at(vi) {
                return Some(vec![format!(
                    "per-machine RNG drawn via `.{id}()` (line {})",
                    self.tok(vi).line
                )]);
            }
            if !after_dot {
                if let Some(Binding {
                    rng: Some(steps), ..
                }) = map.get(id)
                {
                    return Some(steps.clone());
                }
            }
        }
        None
    }

    /// Report statements that write an RNG-derived value into the shared
    /// `DataPlane` (`plane_mut(...)` receivers).
    fn rng_leaks(&self, map: &HashMap<String, Binding>, flows: &mut Vec<Flow>) {
        for i in 0..self.view.len() {
            if self.ident_at(i) != Some("plane_mut") || !self.punct_at(i + 1, '(') {
                continue;
            }
            let line = self.tok(i).line;
            // Statement span: from the previous statement/block boundary
            // to the terminating `;`.
            let mut s = i;
            while s > 0 {
                let t = self.tok(s - 1);
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                s -= 1;
            }
            let e = self.find_semi(s);
            if let Some(mut steps) = self.rng_source((s, e), map) {
                steps.push(format!(
                    "flows into shared `DataPlane` write via `plane_mut` (line {line})"
                ));
                flows.push(Flow {
                    line,
                    kind: FlowKind::RngLeak,
                    what: "per-machine RNG value reaches a shared DataPlane write".to_string(),
                    steps,
                });
            }
        }
    }

    // ---- swap_rng pairing (D010) ---------------------------------------

    fn unbalanced(&self, line: u32, swaps: &[u32], exit: &str) -> Flow {
        let mut steps: Vec<String> = swaps
            .iter()
            .map(|l| format!("`swap_rng` call (line {l})"))
            .collect();
        steps.push(format!("{exit} (line {line})"));
        Flow {
            line,
            kind: FlowKind::RngUnbalanced,
            what: "swap_rng not restored on all exit paths".to_string(),
            steps,
        }
    }

    /// View index of the `}` matching the `{` at view index `open`.
    fn brace_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.view.len() {
            if self.punct_at(k, '{') {
                depth += 1;
            } else if self.punct_at(k, '}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        self.view.len()
    }

    /// First `{` at or after `from` (the body of an `if`/`match`/loop
    /// header — conditions cannot carry bare struct literals).
    fn next_brace(&self, from: usize, end: usize) -> Option<usize> {
        (from..end.min(self.view.len())).find(|&k| self.punct_at(k, '{'))
    }

    /// Walk `[i, end)` at one brace level, returning the number of
    /// `swap_rng` calls on the straight-line path. `prefix` is the call
    /// count accumulated on the path into this block; exits check
    /// `(prefix + local) % 2`. Branch constructs recurse and must agree.
    fn swap_parity(
        &self,
        mut i: usize,
        end: usize,
        prefix: u32,
        swaps: &mut Vec<u32>,
        flows: &mut Vec<Flow>,
    ) -> u32 {
        let mut local: u32 = 0;
        while i < end {
            let line = self.tok(i).line;
            match self.ident_at(i) {
                Some("swap_rng") if self.punct_at(i + 1, '(') => {
                    swaps.push(line);
                    local += 1;
                    i += 1;
                }
                Some("if") => {
                    let mut parities: Vec<u32> = Vec::new();
                    let mut has_else = false;
                    let mut k = i;
                    while let Some(open) = self.next_brace(k, end) {
                        let close = self.brace_close(open);
                        parities.push(
                            self.swap_parity(open + 1, close, prefix + local, swaps, flows) % 2,
                        );
                        k = close + 1;
                        if self.ident_at(k) == Some("else") {
                            if self.ident_at(k + 1) == Some("if") {
                                k += 1; // chain continues at the `if`
                                continue;
                            }
                            if let Some(eopen) = self.next_brace(k, end) {
                                let eclose = self.brace_close(eopen);
                                parities.push(
                                    self.swap_parity(
                                        eopen + 1,
                                        eclose,
                                        prefix + local,
                                        swaps,
                                        flows,
                                    ) % 2,
                                );
                                has_else = true;
                                k = eclose + 1;
                            }
                        }
                        break;
                    }
                    let first = parities.first().copied().unwrap_or(0);
                    if parities.iter().any(|&p| p != first) {
                        flows.push(self.unbalanced(
                            line,
                            swaps,
                            "swap_rng parity differs across if/else branches",
                        ));
                    } else if !has_else && first != 0 {
                        flows.push(self.unbalanced(
                            line,
                            swaps,
                            "if-branch swaps the RNG but the fall-through path does not",
                        ));
                    } else {
                        local += first;
                    }
                    i = k;
                }
                Some("match" | "loop" | "while" | "for") => {
                    let kw = self.ident_at(i).unwrap_or_default().to_string();
                    let Some(open) = self.next_brace(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let close = self.brace_close(open);
                    let inner = self.swap_parity(open + 1, close, prefix + local, swaps, flows);
                    if !inner.is_multiple_of(2) {
                        flows.push(self.unbalanced(
                            line,
                            swaps,
                            &format!("`{kw}` body changes swap_rng parity"),
                        ));
                    }
                    i = close + 1;
                }
                Some("return") => {
                    if !(prefix + local).is_multiple_of(2) {
                        flows.push(self.unbalanced(
                            line,
                            swaps,
                            "`return` leaves the per-machine RNG installed",
                        ));
                    }
                    i += 1;
                }
                _ => {
                    if self.punct_at(i, '?') && self.ident_at(i + 1) != Some("Sized") {
                        if !(prefix + local).is_multiple_of(2) {
                            flows.push(self.unbalanced(
                                line,
                                swaps,
                                "`?` early return leaves the per-machine RNG installed",
                            ));
                        }
                        i += 1;
                    } else if self.punct_at(i, '{') {
                        let close = self.brace_close(i);
                        local += self.swap_parity(i + 1, close, prefix + local, swaps, flows);
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn flows_of(src: &str) -> Vec<Flow> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let mut parsed = crate::parser::parse_file(&["m".to_string()], &lexed.toks, &mask);
        analyze(&lexed.toks, &mut parsed);
        parsed.fns.iter().flat_map(|f| f.flows.clone()).collect()
    }

    #[test]
    fn raw_literal_into_deadline_is_flagged_with_chain() {
        let src = r#"
            fn f(&mut self) {
                let delay_ms = 500;
                let d = delay_ms;
                self.net.schedule_after(d, Event::Tick);
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FlowKind::RawTime);
        assert_eq!(fs[0].line, 5);
        // Lattice join propagated through two bindings: the chain keeps
        // the root description and both def steps.
        assert_eq!(fs[0].steps.len(), 3, "{:?}", fs[0].steps);
        assert!(fs[0].steps[0].contains("`delay_ms` bound from integer literal"));
        assert!(fs[0].steps[1].contains("`d` bound from integer literal"));
        assert!(fs[0].steps[2].contains("`d` flows into `schedule_after`"));
    }

    #[test]
    fn sim_constructors_sanitize() {
        let src = r#"
            fn f(&mut self) {
                let d = SimDuration::from_micros(500);
                self.net.schedule_after(d, Event::Tick);
                self.net.schedule_after(SimDuration::from_micros(250), Event::Tock);
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn nested_literals_are_launder_clean() {
        // A literal inside a call's argument list is the callee's
        // business — `day_instant(start, 3)` may well build a SimInstant.
        let src = r#"
            fn f(&mut self) {
                self.net.schedule_at(day_instant(self.start, 3), Event::Roll);
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn std_duration_taints() {
        let src = r#"
            fn f(&mut self) {
                let d = Duration::from_millis(5);
                self.net.schedule_after(d, Event::Tick);
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FlowKind::RawTime);
        assert!(fs[0].what.contains("Duration"));
    }

    #[test]
    fn shadowing_rebinding_clears_taint() {
        let src = r#"
            fn f(&mut self) {
                let d = 500;
                let d = SimDuration::from_micros(700);
                self.net.schedule_after(d, Event::Tick);
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn question_mark_between_swaps_is_flagged() {
        let src = r#"
            fn f(&mut self) -> Result<(), E> {
                self.net.swap_rng(&mut self.rng);
                self.work()?;
                self.net.swap_rng(&mut self.rng);
                Ok(())
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FlowKind::RngUnbalanced);
        assert_eq!(fs[0].line, 4);
        assert!(fs[0].steps.iter().any(|s| s.contains("`?` early return")));
    }

    #[test]
    fn question_mark_after_restore_is_clean() {
        let src = r#"
            fn f(&mut self) -> Result<(), E> {
                self.net.swap_rng(&mut self.rng);
                let r = self.work();
                self.net.swap_rng(&mut self.rng);
                r?;
                Ok(())
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn balanced_if_else_swaps_are_clean() {
        let src = r#"
            fn f(&mut self) {
                if self.fast {
                    self.net.swap_rng(&mut self.rng);
                    self.step_fast();
                    self.net.swap_rng(&mut self.rng);
                } else if self.slow {
                    self.net.swap_rng(&mut self.rng);
                    self.step_slow();
                    self.net.swap_rng(&mut self.rng);
                } else {
                    self.idle();
                }
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn missing_swap_out_in_one_branch_is_flagged() {
        let src = r#"
            fn f(&mut self) {
                self.net.swap_rng(&mut self.rng);
                if self.fast {
                    self.net.swap_rng(&mut self.rng);
                }
                self.tail();
            }
        "#;
        let fs = flows_of(src);
        assert!(
            fs.iter().any(|f| f.kind == FlowKind::RngUnbalanced),
            "{fs:?}"
        );
    }

    #[test]
    fn fall_off_end_with_rng_installed_is_flagged() {
        let src = r#"
            fn f(&mut self) {
                self.net.swap_rng(&mut self.rng);
                self.step();
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FlowKind::RngUnbalanced);
        assert!(fs[0].steps.iter().any(|s| s.contains("function returns")));
    }

    #[test]
    fn rng_value_into_plane_mut_is_flagged() {
        let src = r#"
            fn f(&mut self) {
                let jitter = self.rng.gen_range(0..9);
                self.net.plane_mut(self.shard).record(jitter);
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FlowKind::RngLeak);
        assert!(fs[0].steps[0].contains("per-machine RNG drawn via `.gen_range()`"));
        assert!(fs[0]
            .steps
            .iter()
            .any(|s| s.contains("`jitter` derived from the per-machine RNG")));
    }

    #[test]
    fn untainted_plane_mut_write_is_clean() {
        let src = r#"
            fn f(&mut self) {
                let count = self.outstanding;
                self.net.plane_mut(self.shard).record(count);
            }
        "#;
        assert!(flows_of(src).is_empty());
    }

    #[test]
    fn turbofish_rng_draw_is_a_source() {
        let src = r#"
            fn f(&mut self) {
                let v = self.rng.gen::<u64>();
                self.net.plane_mut(self.shard).record(v);
            }
        "#;
        let fs = flows_of(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FlowKind::RngLeak);
    }

    #[test]
    fn nested_fn_bodies_are_excluded() {
        // The inner helper's literal-to-sink flow must not attach to the
        // outer fn; the outer fn is clean.
        let src = r#"
            fn outer(&mut self) {
                fn inner(net: &mut Net) {
                    let ms = 9;
                    net.schedule_after(ms, Event::Tick);
                }
                inner(&mut self.net);
            }
        "#;
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let mut parsed = crate::parser::parse_file(&["m".to_string()], &lexed.toks, &mask);
        analyze(&lexed.toks, &mut parsed);
        let outer = parsed.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = parsed.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.flows.is_empty(), "{:?}", outer.flows);
        assert_eq!(inner.flows.len(), 1);
    }
}
