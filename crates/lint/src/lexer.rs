//! A minimal Rust lexer for static analysis.
//!
//! Produces a stream of identifier/punctuation tokens with line numbers.
//! String, byte-string, raw-string and char literals collapse into a
//! single [`TokKind::Literal`] token (their contents can never trigger a
//! rule), block comments vanish entirely, and line comments are captured
//! verbatim so pragma directives (`// doe-lint: allow(...)`) survive to
//! the suppression pass.
//!
//! The lexer is deliberately lossy — it does not distinguish keywords
//! from identifiers, nor parse expressions. Rules are written as token
//! window patterns (see [`crate::rules`]), which is exactly as much
//! structure as the determinism contract needs.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `(`, ...).
    Punct(char),
    /// Any literal: string, raw string, byte string, char or number.
    Literal(LitKind),
}

/// The broad class of a literal. The dataflow pass needs to tell a raw
/// integer (a virtual-time hazard, D011) from string/char text (never
/// one); finer classification stays out of scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// Numeric literal (`500`, `1.5`, `0xFF`, `3u64`).
    Num,
    /// String, raw-string, byte-string or char literal.
    Text,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True if this token is any literal.
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokKind::Literal(_))
    }

    /// True if this token is a numeric literal.
    pub fn is_num_literal(&self) -> bool {
        matches!(self.kind, TokKind::Literal(LitKind::Num))
    }
}

/// A `//` comment (includes `///` and `//!` doc comments), text after
/// the slashes, untrimmed.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based source line.
    pub line: u32,
    /// Comment body (everything after the leading `//`).
    pub text: String,
}

/// Lexer output: code tokens plus captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Tokenize `src`. Never fails: unrecognized bytes lex as punctuation.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = cs[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek(&cs, i + 1) == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while j < n && cs[j] != '\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: cs[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if peek(&cs, i + 1) == Some('*') => {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if cs[i] == '/' && peek(&cs, i + 1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if cs[i] == '*' && peek(&cs, i + 1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if cs[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal(LitKind::Text),
                });
                i = skip_quoted(&cs, i, &mut line);
            }
            '\'' => i = lex_quote(&cs, i, &mut line, &mut out),
            c if c == '_' || c.is_alphabetic() => {
                if let Some(end) = raw_string_end(&cs, i, &mut line) {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Literal(LitKind::Text),
                    });
                    i = end;
                } else if c == 'r'
                    && peek(&cs, i + 1) == Some('#')
                    && peek(&cs, i + 2).is_some_and(|x| x == '_' || x.is_alphabetic())
                {
                    // Raw identifier `r#type`: lexes as the bare identifier so
                    // item extraction sees `fn r#try` as a fn named `try`.
                    let start = i + 2;
                    i = start;
                    while i < n && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident(cs[start..i].iter().collect()),
                    });
                } else {
                    let start = i;
                    while i < n && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Ident(cs[start..i].iter().collect()),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal(LitKind::Num),
                });
                i += 1;
                while i < n {
                    let d = cs[i];
                    if d == '_' || d.is_alphanumeric() {
                        i += 1;
                    } else if d == '.' && peek(&cs, i + 1).is_some_and(|x| x.is_ascii_digit()) {
                        // `1.5` continues the literal; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            other => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

fn peek(cs: &[char], i: usize) -> Option<char> {
    cs.get(i).copied()
}

/// Skip a `"..."` literal starting at the opening quote; returns the
/// index just past the closing quote, counting embedded newlines.
fn skip_quoted(cs: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = cs.len();
    i += 1; // opening quote
    while i < n {
        match cs[i] {
            '\\' => {
                // A `\` line continuation still ends a source line; losing
                // the count here desyncs every diagnostic below it.
                if peek(cs, i + 1) == Some('\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Disambiguate `'a'` / `'\n'` (char literals) from `'static` / `'_`
/// (lifetimes). Lifetimes produce no token; char literals collapse to
/// [`TokKind::Literal`].
fn lex_quote(cs: &[char], i: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let n = cs.len();
    match peek(cs, i + 1) {
        Some('\\') => {
            // Escaped char literal: `'\\'`, `'\''`, `'\u{7f}'`. The
            // backslash escapes exactly the char at i+2, so the scan for
            // the closing quote starts at i+3 (escape payloads like
            // `u{..}` contain no quotes).
            out.toks.push(Tok {
                line: *line,
                kind: TokKind::Literal(LitKind::Text),
            });
            let mut j = i + 3;
            while j < n && cs[j] != '\'' {
                j += 1;
            }
            (j + 1).min(n)
        }
        Some(c) if peek(cs, i + 2) == Some('\'') && c != '\'' => {
            // Any single-char literal: 'a', '{', '.', ...
            out.toks.push(Tok {
                line: *line,
                kind: TokKind::Literal(LitKind::Text),
            });
            i + 3
        }
        Some(c) if c == '_' || c.is_alphanumeric() => {
            // Lifetime: consume the identifier, no closing quote.
            let mut j = i + 1;
            while j < n && (cs[j] == '_' || cs[j].is_alphanumeric()) {
                j += 1;
            }
            j
        }
        _ => {
            out.toks.push(Tok {
                line: *line,
                kind: TokKind::Punct('\''),
            });
            i + 1
        }
    }
}

/// If position `i` begins a raw / byte / byte-raw string (`r"`, `r#"`,
/// `br"`, `b"`, ...), return the index just past its end.
fn raw_string_end(cs: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let n = cs.len();
    let mut j = i;
    match cs[j] {
        'b' => {
            j += 1;
            if peek(cs, j) == Some('r') {
                j += 1;
            } else if peek(cs, j) == Some('"') {
                // b"..." — ordinary escapes.
                return Some(skip_quoted(cs, j, line));
            } else if peek(cs, j) == Some('\'') {
                // b'x' byte literal.
                let mut k = j + 1;
                while k < n && cs[k] != '\'' {
                    k += if cs[k] == '\\' { 2 } else { 1 };
                }
                return Some((k + 1).min(n));
            } else {
                return None;
            }
        }
        'r' => j += 1,
        _ => return None,
    }
    // Here: after `r` or `br`. Count hashes, then require a quote.
    let mut hashes = 0usize;
    while peek(cs, j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    if peek(cs, j) != Some('"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks. No escapes in raw strings.
    while j < n {
        if cs[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if cs[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && peek(cs, k) == Some('#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "thread_rng() in a string";
            let r = r#"SystemTime in a raw string"#;
            let b = b"println! bytes";
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for banned in ["HashMap", "Instant", "thread_rng", "SystemTime", "println"] {
            assert!(!ids.contains(&banned.to_string()), "{banned} leaked");
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // Lifetime names vanish — they can never trigger a rule, and
        // treating `'a` as an unterminated char literal would eat code.
        assert!(!ids.contains(&"a".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"line\nbreak\";\nmarker();\n";
        let lexed = lex(src);
        let marker = lexed
            .toks
            .iter()
            .find(|t| t.ident() == Some("marker"))
            .unwrap();
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "code();\n// doe-lint: allow(D001) — why\nmore();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("doe-lint"));
    }

    #[test]
    fn escaped_char_literals_do_not_swallow_code() {
        // Regression: `'\\'` once skipped past its closing quote and ate
        // everything to the next apostrophe.
        let src = "let a = '\\\\'; let b = '\\''; after_literals();";
        let ids = idents(src);
        assert!(ids.contains(&"after_literals".to_string()), "{ids:?}");
    }

    #[test]
    fn punctuation_char_literals_keep_brace_balance() {
        let src = "match c { '{' => 1, '}' => 2, _ => 3 }";
        let lexed = lex(src);
        let open = lexed.toks.iter().filter(|t| t.is_punct('{')).count();
        let close = lexed.toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(open, 1);
        assert_eq!(close, 1);
    }

    #[test]
    fn range_does_not_swallow_dots() {
        let src = "for i in 0..n { f(i); }";
        let lexed = lex(src);
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_idents() {
        // Regression: `r#try` once lexed as `r`, `#`, `try` — the stray `#`
        // desynced attribute detection and the call-expression extractor.
        let src = "fn r#try() { r#match(); }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "try", "match"]);
        assert!(!lex(src).toks.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn hashed_raw_strings_hide_comment_lookalikes() {
        // Regression: a `//` or `"#` inside an `r##"…"##` body must not
        // terminate the literal early or spawn a phantom comment.
        let src = "let s = r##\"no // comment, stray \"# quote\"##; after_raw();\n// real\n";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed.toks.iter().filter_map(|t| t.ident()).collect();
        assert!(ids.contains(&"after_raw"), "{ids:?}");
        assert!(!ids.contains(&"comment"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("real"));
    }

    #[test]
    fn nested_block_comment_with_quotes_does_not_desync() {
        // Regression: an apostrophe or quote inside `/* /* */ */` once left
        // the lexer inside a phantom string for the rest of the file.
        let src = "/* outer \" /* inner ' */ still \" out */ survivor();";
        let ids = idents(src);
        assert_eq!(ids, vec!["survivor"]);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_count() {
        // Regression: `"a \` + newline continuation swallowed the newline
        // without counting it, shifting every later diagnostic up a line.
        let src = "let s = \"a \\\nb\";\nmarker();\n";
        let lexed = lex(src);
        let marker = lexed
            .toks
            .iter()
            .find(|t| t.ident() == Some("marker"))
            .unwrap();
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn lifetimes_in_generic_positions_do_not_eat_tokens() {
        let src = "impl<'a, T: Iterator<Item = &'a str> + 'a> Wrap<'a, T> { fn g(&'a self) {} }";
        let ids = idents(src);
        assert!(ids.contains(&"Wrap".to_string()));
        assert!(ids.contains(&"g".to_string()));
        // `'a` never lexes as a char literal or identifier.
        assert!(!ids.contains(&"a".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.toks.iter().filter(|t| t.is_punct('{')).count(), 2);
        assert_eq!(lexed.toks.iter().filter(|t| t.is_punct('}')).count(), 2);
    }
}
