//! The workspace call graph.
//!
//! Nodes are the non-test `fn` items the parser extracted; edges come
//! from resolving each call expression against the workspace. Resolution
//! is module-path and `use`-alias aware and chases crate-root re-exports
//! (`netsim::mix_seed` → `netsim::net::mix_seed`); method calls resolve
//! conservatively to **every** workspace method of that name (narrowed
//! to the enclosing impl for `self.` receivers), so reachability over
//! the graph over-approximates the dynamic call relation — a verdict of
//! "unreachable" is trustworthy, a verdict of "reachable" names a chain
//! that must be either fixed or justified with a pragma.
//!
//! Everything here iterates in sorted orders over index-stable inputs,
//! so the graph — and its JSON rendering — is byte-identical across
//! runs.

use crate::parser::{Call, Hazard, HazardKind, LockSite, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Parsed items of one source file, tagged with where they live.
#[derive(Debug)]
pub struct SourceItems {
    /// Policy key (directory under `crates/`, or `root`).
    pub crate_key: String,
    /// The crate's library name (`doe_scanner`), as paths reference it.
    pub crate_name: String,
    /// Workspace-relative display path.
    pub file: String,
    /// Module path the file contributes (`src/a/b.rs` → `["a", "b"]`).
    pub module: Vec<String>,
    /// The parser's output for this file.
    pub parsed: ParsedFile,
}

/// One function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Policy key of the owning crate.
    pub crate_key: String,
    /// Library name of the owning crate.
    pub crate_name: String,
    /// Module path within the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Enclosing impl self-type or trait name, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Hazard sites in the body.
    pub hazards: Vec<Hazard>,
    /// Declared parameter count (`self` excluded) — lets method-call
    /// resolution drop same-name candidates whose signature cannot
    /// match the call site.
    pub arity: usize,
    /// Intraprocedural dataflow findings, reported only when the node is
    /// reachable from the relevant `[dataflow]` entry set.
    pub flows: Vec<crate::dataflow::Flow>,
    /// Lock acquisitions in the body (D013).
    pub lock_sites: Vec<LockSite>,
    /// True when the function carries an explicit recursion bound (D014).
    pub recursion_guard: bool,
    /// True when the function mentions `Instant`/`SystemTime` — the
    /// wall-clock bit of its effect summary.
    pub wall_clock: bool,
}

impl FnNode {
    /// Fully qualified display name (`doe_scanner::sweep::syn_sweep_sharded`).
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![&self.crate_name];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(o) = &self.owner {
            parts.push(o);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// One resolved call edge. `line` is the call site.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Caller node index.
    pub from: usize,
    /// Callee node index.
    pub to: usize,
    /// 1-based call-site line (in the caller's file).
    pub line: u32,
    /// True when resolution pinned a unique target: a path anchored in a
    /// concrete module, or a `self.` receiver narrowed to exactly one
    /// method. Broad method fan-out and suffix fallback are inexact —
    /// the cycle-sensitive passes (D013 held-edges, D014 recursion SCCs)
    /// run on exact edges only, so name collisions cannot fabricate
    /// cycles.
    pub exact: bool,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes, in (file, line) order — index-stable across runs.
    pub nodes: Vec<FnNode>,
    /// Edges, sorted by (from, to), deduplicated to one edge per pair
    /// (preferring an exact resolution over an inexact one).
    pub edges: Vec<Edge>,
    /// Adjacency: `adj[from]` lists `(to, call line, exact)` in sorted
    /// order.
    pub adj: Vec<Vec<(usize, u32, bool)>>,
}

/// Build the graph from every file's parsed items.
pub fn build(sources: &[SourceItems]) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut calls: Vec<Vec<Call>> = Vec::new();
    // Aliases per (crate_key, module path): alias → target segments.
    let mut aliases: BTreeMap<(String, String), BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let mut crate_names: BTreeSet<String> = BTreeSet::new();
    let mut name_to_key: BTreeMap<String, String> = BTreeMap::new();

    for s in sources {
        crate_names.insert(s.crate_name.clone());
        name_to_key.insert(s.crate_name.clone(), s.crate_key.clone());
        for u in &s.parsed.uses {
            aliases
                .entry((s.crate_key.clone(), u.module.join("::")))
                .or_default()
                .insert(u.alias.clone(), u.target.clone());
        }
        for f in &s.parsed.fns {
            if f.is_test {
                continue;
            }
            nodes.push(FnNode {
                crate_key: s.crate_key.clone(),
                crate_name: s.crate_name.clone(),
                module: f.module.clone(),
                owner: f.owner.clone(),
                name: f.name.clone(),
                file: s.file.clone(),
                line: f.line,
                hazards: f.hazards.clone(),
                arity: f.arity,
                flows: f.flows.clone(),
                lock_sites: f.lock_sites.clone(),
                recursion_guard: f.recursion_guard,
                wall_clock: f.wall_clock,
            });
            calls.push(f.calls.clone());
        }
    }

    // Lookup indexes. Keys are owned strings for simplicity; the graph is
    // built once per run.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut exact: BTreeMap<(&str, String, &str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(i);
        if let Some(o) = &n.owner {
            by_owner.entry((o, &n.name)).or_default().push(i);
        }
        exact
            .entry((
                &n.crate_name,
                n.module.join("::"),
                n.owner.as_deref().unwrap_or(""),
                &n.name,
            ))
            .or_default()
            .push(i);
    }

    let ctx = Resolver {
        nodes: &nodes,
        by_name: &by_name,
        by_owner: &by_owner,
        exact: &exact,
        aliases: &aliases,
        crate_names: &crate_names,
        name_to_key: &name_to_key,
    };

    let mut edges: Vec<Edge> = Vec::new();
    for (from, node_calls) in calls.iter().enumerate() {
        for call in node_calls {
            for (to, exact) in ctx.resolve(&nodes[from], call) {
                edges.push(Edge {
                    from,
                    to,
                    line: call.line,
                    exact,
                });
            }
        }
    }
    // One edge per (from, to): an exact resolution beats an inexact one,
    // then the earliest call site wins.
    edges.sort_by_key(|e| (e.from, e.to, !e.exact, e.line));
    edges.dedup_by_key(|e| (e.from, e.to));

    let mut adj: Vec<Vec<(usize, u32, bool)>> = vec![Vec::new(); nodes.len()];
    for e in &edges {
        adj[e.from].push((e.to, e.line, e.exact));
    }

    CallGraph { nodes, edges, adj }
}

struct Resolver<'a> {
    nodes: &'a [FnNode],
    by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    by_owner: &'a BTreeMap<(&'a str, &'a str), Vec<usize>>,
    exact: &'a BTreeMap<(&'a str, String, &'a str, &'a str), Vec<usize>>,
    aliases: &'a BTreeMap<(String, String), BTreeMap<String, Vec<String>>>,
    crate_names: &'a BTreeSet<String>,
    name_to_key: &'a BTreeMap<String, String>,
}

impl<'a> Resolver<'a> {
    /// Resolve one call to `(node index, exact)` pairs. A path hit
    /// anchored through modules/aliases is exact; the suffix fallback
    /// and broad method fan-out are not.
    fn resolve(&self, from: &FnNode, call: &Call) -> Vec<(usize, bool)> {
        if call.method {
            return self.resolve_method(from, call);
        }
        let mut out = self.resolve_path(
            &from.crate_key,
            &from.crate_name,
            &from.module,
            &call.path,
            0,
        );
        let mut exact = true;
        if out.is_empty() {
            out = self.resolve_suffix(&from.crate_name, &call.path);
            exact = false;
        }
        out.sort_unstable();
        out.dedup();
        let exact = exact && out.len() == 1;
        out.into_iter().map(|i| (i, exact)).collect()
    }

    /// `.name(...)`: every workspace method of that name; a literal
    /// `self.` receiver narrows to the enclosing impl when it defines
    /// the method (otherwise the call targets a field or a trait method
    /// provided elsewhere — fall through to the broad set). When the
    /// call site's argument count is known, candidates whose declared
    /// arity cannot match are dropped — unless that would empty the set
    /// (default arguments don't exist, but macros and `impl Trait`
    /// receivers keep the fallback honest).
    fn resolve_method(&self, from: &FnNode, call: &Call) -> Vec<(usize, bool)> {
        let name = call.path.last().map(String::as_str).unwrap_or("");
        if call.via_self {
            if let Some(owner) = &from.owner {
                if let Some(own) = self.by_owner.get(&(owner.as_str(), name)) {
                    let narrowed = self.narrow_arity(own.clone(), call.arity);
                    // A unique self-method is an exact target; two types
                    // sharing an owner name keep the edge inexact.
                    let exact = narrowed.len() == 1;
                    return narrowed.into_iter().map(|i| (i, exact)).collect();
                }
            }
        }
        let mut out: Vec<usize> = Vec::new();
        for ((_, n), idxs) in self.by_owner.iter() {
            if *n == name {
                out.extend_from_slice(idxs);
            }
        }
        out.sort_unstable();
        out.dedup();
        self.narrow_arity(out, call.arity)
            .into_iter()
            .map(|i| (i, false))
            .collect()
    }

    /// Keep candidates whose declared arity matches the call site's
    /// argument count; fall back to the full set rather than dropping
    /// edges the parser merely failed to count.
    fn narrow_arity(&self, cands: Vec<usize>, arity: Option<usize>) -> Vec<usize> {
        let Some(a) = arity else { return cands };
        let narrowed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].arity == a)
            .collect();
        if narrowed.is_empty() {
            cands
        } else {
            narrowed
        }
    }

    /// Resolve a `::` path relative to (`crate_key`, `module`). `depth`
    /// bounds alias/re-export chasing.
    fn resolve_path(
        &self,
        crate_key: &str,
        crate_name: &str,
        module: &[String],
        path: &[String],
        depth: u8,
    ) -> Vec<usize> {
        if depth > 4 || path.is_empty() {
            return Vec::new();
        }
        let head = path[0].as_str();

        // `crate::` / `self::` / `super::` anchors.
        if head == "crate" {
            return self.in_crate(crate_key, crate_name, &[], &path[1..], depth);
        }
        if head == "self" {
            return self.in_crate(crate_key, crate_name, module, &path[1..], depth);
        }
        if head == "super" {
            let up = module.len().saturating_sub(1);
            return self.resolve_path(crate_key, crate_name, &module[..up], &path[1..], depth);
        }

        // A `use` alias in the calling module (or the crate root) rewrites
        // the head: `use crate::permutation::PermutationShard;` makes
        // `PermutationShard::new` mean `crate::permutation::…::new`.
        for scope in [module.join("::"), String::new()] {
            if let Some(map) = self.aliases.get(&(crate_key.to_string(), scope)) {
                if let Some(target) = map.get(head) {
                    if target.first().map(String::as_str) != Some(head) || target.len() > 1 {
                        let mut full = target.clone();
                        full.extend_from_slice(&path[1..]);
                        let hit =
                            self.resolve_path(crate_key, crate_name, module, &full, depth + 1);
                        if !hit.is_empty() {
                            return hit;
                        }
                    }
                }
            }
        }

        // Another workspace crate by library name.
        if self.crate_names.contains(head) {
            let key = self.name_to_key.get(head).cloned().unwrap_or_default();
            return self.in_crate(&key, head, &[], &path[1..], depth);
        }

        // Unanchored path: try relative to the calling module, then the
        // crate root (2015-style absolute paths and glob-imported mods).
        let rel = self.in_crate(crate_key, crate_name, module, path, depth);
        if !rel.is_empty() {
            return rel;
        }
        self.in_crate(crate_key, crate_name, &[], path, depth)
    }

    /// Resolve `segs` as an item of `crate_name` under module `base`:
    /// either `mods… :: fn` or `mods… :: Type :: method`, then through
    /// the target crate's root re-exports.
    fn in_crate(
        &self,
        crate_key: &str,
        crate_name: &str,
        base: &[String],
        segs: &[String],
        depth: u8,
    ) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        let (mods, name) = segs.split_at(segs.len() - 1);
        let name = name[0].as_str();
        let mut module: Vec<String> = base.to_vec();

        // Free function: all leading segments are modules.
        module.extend(mods.iter().cloned());
        if let Some(hit) = self.exact.get(&(crate_name, module.join("::"), "", name)) {
            return hit.clone();
        }
        // Associated function: the last leading segment is a type.
        if let Some((ty, mods)) = mods.split_last() {
            let mut module: Vec<String> = base.to_vec();
            module.extend(mods.iter().cloned());
            if let Some(hit) = self
                .exact
                .get(&(crate_name, module.join("::"), ty.as_str(), name))
            {
                return hit.clone();
            }
        }
        // Crate-root re-export: `pub use net::mix_seed;` in lib.rs lets
        // `netsim::mix_seed` resolve even though the item lives in `net`.
        if base.is_empty() {
            if let Some(map) = self.aliases.get(&(crate_key.to_string(), String::new())) {
                if let Some(target) = map.get(segs[0].as_str()) {
                    let mut full = target.clone();
                    full.extend_from_slice(&segs[1..]);
                    if full != segs {
                        return self.resolve_path(crate_key, crate_name, &[], &full, depth + 1);
                    }
                }
            }
        }
        Vec::new()
    }

    /// Last resort for paths no anchor resolves (glob imports, method
    /// calls through type aliases): match `Type::name` against every
    /// workspace impl, or a bare name against free functions of the
    /// calling crate.
    fn resolve_suffix(&self, crate_name: &str, path: &[String]) -> Vec<usize> {
        if path.len() >= 2 {
            let ty = path[path.len() - 2].as_str();
            let name = path[path.len() - 1].as_str();
            if ty.chars().next().is_some_and(char::is_uppercase) {
                if let Some(hit) = self.by_owner.get(&(ty, name)) {
                    return hit.clone();
                }
            }
            return Vec::new();
        }
        let name = path[0].as_str();
        self.by_name
            .get(name)
            .map(|idxs| {
                idxs.iter()
                    .copied()
                    .filter(|&i| {
                        self.nodes[i].crate_name == crate_name && self.nodes[i].owner.is_none()
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Render the graph as deterministic JSON (the `results/callgraph.json`
/// artifact). Node order is build order; edges are sorted.
pub fn to_json(g: &CallGraph) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n  \"nodes\": [");
    for (i, n) in g.nodes.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"id\": {i}, \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}",
            crate::report::esc(&n.qualified()),
            crate::report::esc(&n.file),
            n.line,
        );
        if n.hazards.is_empty() {
            out.push('}');
        } else {
            out.push_str(", \"hazards\": [");
            for (j, h) in n.hazards.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(
                    out,
                    "{sep}{{\"kind\": \"{}\", \"what\": \"{}\", \"line\": {}}}",
                    hazard_kind(h.kind),
                    crate::report::esc(&h.what),
                    h.line
                );
            }
            out.push_str("]}");
        }
    }
    out.push_str("\n  ],\n  \"edges\": [");
    for (i, e) in g.edges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    [{}, {}, {}, {}]",
            e.from,
            e.to,
            e.line,
            u8::from(e.exact)
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"summary\": {{\"nodes\": {}, \"edges\": {}}}\n}}\n",
        g.nodes.len(),
        g.edges.len()
    );
    out
}

/// Stable string for a hazard kind.
pub fn hazard_kind(k: HazardKind) -> &'static str {
    match k {
        HazardKind::Panic => "panic",
        HazardKind::SharedMut => "shared_mut",
        HazardKind::FloatAccum => "float_accum",
        HazardKind::Blocking => "blocking",
        HazardKind::Alloc => "alloc",
        HazardKind::ShardIdent => "shard_ident",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::rules::test_mask;

    fn items(crate_key: &str, crate_name: &str, module: &[&str], src: &str) -> SourceItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let module: Vec<String> = module.iter().map(|s| s.to_string()).collect();
        SourceItems {
            crate_key: crate_key.to_string(),
            crate_name: crate_name.to_string(),
            file: format!("crates/{crate_key}/src/x.rs"),
            module: module.clone(),
            parsed: parse_file(&module, &lexed.toks, &mask),
        }
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.from].qualified(), g.nodes[e.to].qualified()))
            .collect()
    }

    #[test]
    fn same_module_bare_calls_link() {
        let g = build(&[items(
            "a",
            "a",
            &["m"],
            "fn top() { helper(); } fn helper() {}",
        )]);
        assert_eq!(
            edge_names(&g),
            vec![("a::m::top".to_string(), "a::m::helper".to_string())]
        );
    }

    #[test]
    fn cross_crate_calls_resolve_through_use_aliases() {
        let lib = items("netsim", "netsim", &[], "pub use net::mix_seed;");
        let net = items(
            "netsim",
            "netsim",
            &["net"],
            "pub fn mix_seed(s: u64) -> u64 { s }",
        );
        let user = items(
            "scanner",
            "doe_scanner",
            &["sweep"],
            "use netsim::mix_seed;\nfn go() { mix_seed(1); netsim::mix_seed(2); }",
        );
        let g = build(&[lib, net, user]);
        let edges = edge_names(&g);
        assert_eq!(
            edges,
            vec![(
                "doe_scanner::sweep::go".to_string(),
                "netsim::net::mix_seed".to_string()
            )]
        );
    }

    #[test]
    fn method_calls_over_approximate_and_self_narrows() {
        let src = r#"
            struct A;
            struct B;
            impl A {
                fn run(&self) { self.step(); }
                fn step(&self) {}
            }
            impl B {
                fn step(&self) {}
                fn kick(&self, a: &A) { a.step(); }
            }
        "#;
        let g = build(&[items("a", "a", &[], src)]);
        let edges = edge_names(&g);
        // self.step() narrows to A::step only.
        assert!(edges.contains(&("a::A::run".to_string(), "a::A::step".to_string())));
        assert!(!edges.contains(&("a::A::run".to_string(), "a::B::step".to_string())));
        // a.step() through a non-self receiver hits every `step` method.
        assert!(edges.contains(&("a::B::kick".to_string(), "a::A::step".to_string())));
        assert!(edges.contains(&("a::B::kick".to_string(), "a::B::step".to_string())));
    }

    #[test]
    fn type_method_paths_resolve_exactly() {
        let a = items(
            "a",
            "a",
            &["perm"],
            "pub struct Shard; impl Shard { pub fn new() -> Shard { Shard } }",
        );
        let b = items("a", "a", &["run"], "fn go() { crate::perm::Shard::new(); }");
        let g = build(&[a, b]);
        assert_eq!(
            edge_names(&g),
            vec![("a::run::go".to_string(), "a::perm::Shard::new".to_string())]
        );
    }

    #[test]
    fn arity_narrows_same_name_methods() {
        let src = r#"
            struct H;
            struct R;
            impl H {
                fn observe(&mut self, v: u64) {}
            }
            impl R {
                fn observe(&mut self, k: u8, v: u64) {}
            }
            fn go(h: &mut H) { h.observe(5); }
        "#;
        let g = build(&[items("a", "a", &[], src)]);
        let edges = edge_names(&g);
        assert!(edges.contains(&("a::go".to_string(), "a::H::observe".to_string())));
        assert!(
            !edges.contains(&("a::go".to_string(), "a::R::observe".to_string())),
            "{edges:?}"
        );
    }

    #[test]
    fn unknown_arity_keeps_the_full_candidate_set() {
        // A generic argument defeats comma counting; the resolver must
        // keep over-approximating rather than dropping edges.
        let src = r#"
            struct H;
            struct R;
            impl H {
                fn observe(&mut self, v: u64) {}
            }
            impl R {
                fn observe(&mut self, k: u8, v: u64) {}
            }
            fn go(h: &mut H) { h.observe(id::<u64>(5)); }
        "#;
        let g = build(&[items("a", "a", &[], src)]);
        let edges = edge_names(&g);
        assert!(edges.contains(&("a::go".to_string(), "a::H::observe".to_string())));
        assert!(edges.contains(&("a::go".to_string(), "a::R::observe".to_string())));
    }

    #[test]
    fn edge_exactness_tracks_resolution_quality() {
        let src = r#"
            struct A;
            struct B;
            impl A {
                fn run(&self) { self.step(); }
                fn step(&self) {}
            }
            impl B {
                fn step(&self) {}
                fn kick(&self, a: &A) { a.step(); }
            }
            fn free() { helper(); }
            fn helper() {}
        "#;
        let g = build(&[items("a", "a", &[], src)]);
        let exact_of = |from: &str, to: &str| {
            g.edges
                .iter()
                .find(|e| g.nodes[e.from].qualified() == from && g.nodes[e.to].qualified() == to)
                .map(|e| e.exact)
                .unwrap_or_else(|| panic!("no edge {from} -> {to}"))
        };
        // self.step() narrowed to the unique A::step: exact.
        assert!(exact_of("a::A::run", "a::A::step"));
        // a.step() fans out to every `step`: inexact.
        assert!(!exact_of("a::B::kick", "a::A::step"));
        assert!(!exact_of("a::B::kick", "a::B::step"));
        // A path-resolved free call: exact.
        assert!(exact_of("a::free", "a::helper"));
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { lib(); }
            }
        "#;
        let g = build(&[items("a", "a", &[], src)]);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn json_is_deterministic() {
        let mk = || {
            build(&[items(
                "a",
                "a",
                &[],
                "fn f() { g(); h.lock(); } fn g() { x.unwrap(); }",
            )])
        };
        let one = to_json(&mk());
        let two = to_json(&mk());
        assert_eq!(one, two);
        assert!(one.contains("\"shared_mut\""));
        assert!(one.contains("\"panic\""));
    }
}
