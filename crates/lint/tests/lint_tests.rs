//! Fixture-based self-tests for the determinism analyzer.
//!
//! Each rule gets three fixtures — violating, clean, and pragma-suppressed
//! — plus checks for pragma hygiene, `lint.toml` scoping, and a meta-test
//! asserting the live workspace itself lints clean.

use doe_lint::policy::Policy;
use doe_lint::{lint_source, lint_workspace, FileOutcome};
use std::path::Path;

const ALL_RULES: &[&str] = &["D001", "D002", "D003", "D004", "D005"];

fn lint(src: &str, rules: &[&str]) -> FileOutcome {
    let enabled: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
    lint_source("fixture.rs", src, &enabled)
}

fn assert_rule_triple(rule: &str, violation: &str, clean: &str, suppressed: &str) {
    let v = lint(violation, ALL_RULES);
    assert!(
        !v.findings.is_empty(),
        "{rule}: violation fixture produced no findings"
    );
    assert!(
        v.findings.iter().all(|f| f.rule == rule),
        "{rule}: violation fixture tripped other rules: {:?}",
        v.findings
    );
    assert!(v.suppressed.is_empty());

    let c = lint(clean, ALL_RULES);
    assert!(
        c.findings.is_empty(),
        "{rule}: clean fixture produced findings: {:?}",
        c.findings
    );

    let s = lint(suppressed, ALL_RULES);
    assert!(
        s.findings.is_empty(),
        "{rule}: suppressed fixture still has findings: {:?}",
        s.findings
    );
    assert!(
        !s.suppressed.is_empty(),
        "{rule}: suppressed fixture recorded no suppressions"
    );
    assert!(
        s.suppressed
            .iter()
            .all(|sup| sup.rule == rule && !sup.reason.trim().is_empty()),
        "{rule}: suppression missing rule or reason: {:?}",
        s.suppressed
    );
    assert!(
        s.unused_pragmas.is_empty(),
        "{rule}: suppressed fixture left unused pragmas: {:?}",
        s.unused_pragmas
    );
}

#[test]
fn d001_wall_clock_and_entropy() {
    assert_rule_triple(
        "D001",
        include_str!("fixtures/d001_violation.rs"),
        include_str!("fixtures/d001_clean.rs"),
        include_str!("fixtures/d001_suppressed.rs"),
    );
}

#[test]
fn d002_hash_iteration_order() {
    assert_rule_triple(
        "D002",
        include_str!("fixtures/d002_violation.rs"),
        include_str!("fixtures/d002_clean.rs"),
        include_str!("fixtures/d002_suppressed.rs"),
    );
}

#[test]
fn d003_console_output() {
    assert_rule_triple(
        "D003",
        include_str!("fixtures/d003_violation.rs"),
        include_str!("fixtures/d003_clean.rs"),
        include_str!("fixtures/d003_suppressed.rs"),
    );
}

#[test]
fn d004_panicking_extraction() {
    assert_rule_triple(
        "D004",
        include_str!("fixtures/d004_violation.rs"),
        include_str!("fixtures/d004_clean.rs"),
        include_str!("fixtures/d004_suppressed.rs"),
    );
}

#[test]
fn d005_narrowing_casts() {
    assert_rule_triple(
        "D005",
        include_str!("fixtures/d005_violation.rs"),
        include_str!("fixtures/d005_clean.rs"),
        include_str!("fixtures/d005_suppressed.rs"),
    );
}

#[test]
fn disabled_rules_do_not_fire() {
    // The D001 violation fixture is silent when only D003 is in force.
    let out = lint(include_str!("fixtures/d001_violation.rs"), &["D003"]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn pragma_missing_reason_is_a_finding() {
    let src = "pub fn f() -> u16 {\n    // doe-lint: allow(D005)\n    3usize as u16\n}\n";
    let out = lint(src, ALL_RULES);
    // The malformed pragma suppresses nothing, so both the hygiene error
    // and the underlying D005 finding surface.
    assert!(out.findings.iter().any(|f| f.rule == "P002"), "{out:?}");
    assert!(out.findings.iter().any(|f| f.rule == "D005"), "{out:?}");
}

#[test]
fn pragma_unknown_rule_is_a_finding() {
    let src = "// doe-lint: allow(D999) — no such rule\npub fn f() {}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "P003"), "{out:?}");
}

#[test]
fn pragma_malformed_directive_is_a_finding() {
    let src = "// doe-lint: deny(D001) — wrong verb\npub fn f() {}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "P001"), "{out:?}");
}

#[test]
fn pragma_for_wrong_rule_does_not_suppress() {
    let src = "pub fn f() -> u16 {\n    \
               // doe-lint: allow(D001) — fixture: wrong rule id on purpose\n    \
               3usize as u16\n}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "D005"), "{out:?}");
    assert_eq!(out.unused_pragmas.len(), 1);
}

#[test]
fn unused_pragma_is_a_note_not_an_error() {
    let src = "// doe-lint: allow(D003) — fixture: nothing to suppress here\npub fn f() {}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    // Notes carry the pragma's own line.
    assert_eq!(out.unused_pragmas, vec![1]);
}

#[test]
fn test_modules_are_exempt() {
    let src = "pub fn lib_code() {}\n\n\
               #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
               #[test]\n    fn t() {\n        \
               let mut m = HashMap::new();\n        \
               m.insert(1, std::time::Instant::now());\n        \
               println!(\"{}\", m.len());\n        \
               m.get(&1).unwrap();\n    }\n}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn policy_scoping_controls_what_fires() {
    let toml = r#"
        [default]
        rules = ["D001", "D003"]

        [crates.scanner]
        rules = ["D001", "D002", "D003", "D005"]

        [crates.netsim.files."src/net.rs"]
        rules = ["D005"]

        [crates.bench]
        rules = []
    "#;
    let policy = Policy::parse(toml).expect("sample policy parses");

    // A HashMap in an unlisted crate is fine (D002 off by default)...
    let hash_src = include_str!("fixtures/d002_violation.rs");
    let default_rules = policy.rules_for("tlssim", "src/lib.rs");
    assert!(lint_source("f.rs", hash_src, &default_rules)
        .findings
        .is_empty());

    // ...but fires in the scanner, whose output feeds reports.
    let scanner_rules = policy.rules_for("scanner", "src/sweep.rs");
    let out = lint_source("f.rs", hash_src, &scanner_rules);
    assert!(out.findings.iter().all(|f| f.rule == "D002"));
    assert!(!out.findings.is_empty());

    // File-scoped extras apply to exactly that file.
    let cast_src = include_str!("fixtures/d005_violation.rs");
    let net_rules = policy.rules_for("netsim", "src/net.rs");
    assert!(!lint_source("f.rs", cast_src, &net_rules)
        .findings
        .is_empty());
    let geo_rules = policy.rules_for("netsim", "src/geo.rs");
    assert!(lint_source("f.rs", cast_src, &geo_rules)
        .findings
        .is_empty());

    // Empty rule set means the crate is fully out of scope.
    assert!(policy.rules_for("bench", "src/lib.rs").is_empty());
}

/// The meta-test: the live workspace must satisfy its own contract, and
/// every recorded suppression must carry a justification.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let policy_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    let policy = Policy::parse(&policy_text).expect("workspace lint.toml parses");
    let report = lint_workspace(&root, &policy).expect("workspace lints");
    assert!(
        report.clean(),
        "workspace has unsuppressed findings:\n{}",
        doe_lint::report::human(&report)
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report
            .suppressed
            .iter()
            .all(|s| !s.reason.trim().is_empty()),
        "a suppression lost its reason: {:?}",
        report.suppressed
    );
}
