//! Fixture-based self-tests for the determinism analyzer.
//!
//! Each token rule gets three fixtures — violating, clean, and
//! pragma-suppressed — and the call-graph rules (D006–D008), the
//! dataflow rules (D009–D012) and the effect-summary rules (D013–D015)
//! get the same triple driven through the whole-workspace `analyze`
//! entry point. On top of that: pragma hygiene (including stale pragmas
//! as P004 errors), `lint.toml` scoping, byte-determinism of the
//! exported call graph, v4 report and SARIF export, and meta-tests
//! asserting the live workspace satisfies its own contract and that the
//! summary fixpoint covers every function in the graph.

use doe_lint::policy::Policy;
use doe_lint::{
    analyze, lint_source, lint_workspace, Analysis, FileOutcome, LoadedFile, SourceFile,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const ALL_RULES: &[&str] = &["D001", "D002", "D003", "D004", "D005"];

fn lint(src: &str, rules: &[&str]) -> FileOutcome {
    let enabled: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
    lint_source("fixture.rs", src, &enabled)
}

fn assert_rule_triple(rule: &str, violation: &str, clean: &str, suppressed: &str) {
    let v = lint(violation, ALL_RULES);
    assert!(
        !v.findings.is_empty(),
        "{rule}: violation fixture produced no findings"
    );
    assert!(
        v.findings.iter().all(|f| f.rule == rule),
        "{rule}: violation fixture tripped other rules: {:?}",
        v.findings
    );
    assert!(v.suppressed.is_empty());

    let c = lint(clean, ALL_RULES);
    assert!(
        c.findings.is_empty(),
        "{rule}: clean fixture produced findings: {:?}",
        c.findings
    );

    let s = lint(suppressed, ALL_RULES);
    assert!(
        s.findings.is_empty(),
        "{rule}: suppressed fixture still has findings: {:?}",
        s.findings
    );
    assert!(
        !s.suppressed.is_empty(),
        "{rule}: suppressed fixture recorded no suppressions"
    );
    assert!(
        s.suppressed
            .iter()
            .all(|sup| sup.rule == rule && !sup.reason.trim().is_empty()),
        "{rule}: suppression missing rule or reason: {:?}",
        s.suppressed
    );
}

#[test]
fn d001_wall_clock_and_entropy() {
    assert_rule_triple(
        "D001",
        include_str!("fixtures/d001_violation.rs"),
        include_str!("fixtures/d001_clean.rs"),
        include_str!("fixtures/d001_suppressed.rs"),
    );
}

#[test]
fn d002_hash_iteration_order() {
    assert_rule_triple(
        "D002",
        include_str!("fixtures/d002_violation.rs"),
        include_str!("fixtures/d002_clean.rs"),
        include_str!("fixtures/d002_suppressed.rs"),
    );
}

#[test]
fn d003_console_output() {
    assert_rule_triple(
        "D003",
        include_str!("fixtures/d003_violation.rs"),
        include_str!("fixtures/d003_clean.rs"),
        include_str!("fixtures/d003_suppressed.rs"),
    );
}

#[test]
fn d004_panicking_extraction() {
    assert_rule_triple(
        "D004",
        include_str!("fixtures/d004_violation.rs"),
        include_str!("fixtures/d004_clean.rs"),
        include_str!("fixtures/d004_suppressed.rs"),
    );
}

#[test]
fn d005_narrowing_casts() {
    assert_rule_triple(
        "D005",
        include_str!("fixtures/d005_violation.rs"),
        include_str!("fixtures/d005_clean.rs"),
        include_str!("fixtures/d005_suppressed.rs"),
    );
}

// ---------------------------------------------------------------------
// Call-graph rules: fixtures run through the whole-workspace `analyze`
// entry point with the fixture file standing in as a one-crate workspace.

fn analyze_policy_fixture(src: &str, policy: &Policy) -> Analysis {
    let files = vec![LoadedFile {
        file: SourceFile {
            crate_key: "fixture".to_string(),
            rel_path: "src/lib.rs".to_string(),
            display_path: "crates/fixture/src/lib.rs".to_string(),
            abs_path: PathBuf::new(),
        },
        src: src.to_string(),
    }];
    let mut names = BTreeMap::new();
    names.insert("fixture".to_string(), "fixture_lib".to_string());
    analyze(&files, policy, &names).expect("fixture analysis succeeds")
}

fn analyze_fixture(src: &str, shard: &[&str], proto: &[&str], merge: &[&str]) -> Analysis {
    let mut policy = Policy::default();
    policy.graph.shard_entries = shard.iter().map(|s| s.to_string()).collect();
    policy.graph.protocol_entries = proto.iter().map(|s| s.to_string()).collect();
    policy.graph.merge_entries = merge.iter().map(|s| s.to_string()).collect();
    analyze_policy_fixture(src, &policy)
}

fn assert_graph_triple(rule: &str, entry: &[&str], violation: &str, clean: &str, suppressed: &str) {
    let pick = |r: &str| -> (Vec<&str>, Vec<&str>, Vec<&str>) {
        match r {
            "D006" => (entry.to_vec(), Vec::new(), Vec::new()),
            "D007" => (Vec::new(), entry.to_vec(), Vec::new()),
            _ => (Vec::new(), Vec::new(), entry.to_vec()),
        }
    };
    let (s, p, m) = pick(rule);

    let v = analyze_fixture(violation, &s, &p, &m).report;
    assert!(
        !v.findings.is_empty(),
        "{rule}: violation fixture produced no findings"
    );
    assert!(
        v.findings.iter().all(|f| f.rule == rule),
        "{rule}: violation fixture tripped other rules: {:?}",
        v.findings
    );
    // Chain evidence: every interprocedural finding names its entry point.
    assert!(
        v.findings
            .iter()
            .all(|f| !f.chain.is_empty()
                && f.chain[0].contains(entry[0].rsplit("::").next().unwrap())),
        "{rule}: finding lacks a chain rooted at the entry: {:?}",
        v.findings
    );

    let c = analyze_fixture(clean, &s, &p, &m).report;
    assert!(
        c.findings.is_empty(),
        "{rule}: clean fixture produced findings: {:?}",
        c.findings
    );

    let sup = analyze_fixture(suppressed, &s, &p, &m).report;
    assert!(
        sup.findings.is_empty(),
        "{rule}: suppressed fixture still has findings: {:?}",
        sup.findings
    );
    assert!(
        sup.suppressed.iter().any(|x| x.rule == rule),
        "{rule}: suppressed fixture recorded no {rule} suppression: {:?}",
        sup.suppressed
    );
}

#[test]
fn d006_shard_purity() {
    assert_graph_triple(
        "D006",
        &["fixture_lib::sweep_sharded"],
        include_str!("fixtures/d006_violation.rs"),
        include_str!("fixtures/d006_clean.rs"),
        include_str!("fixtures/d006_suppressed.rs"),
    );
}

#[test]
fn d007_transitive_panic_reachability() {
    assert_graph_triple(
        "D007",
        &["fixture_lib::proto_query"],
        include_str!("fixtures/d007_violation.rs"),
        include_str!("fixtures/d007_clean.rs"),
        include_str!("fixtures/d007_suppressed.rs"),
    );
}

#[test]
fn d008_float_accumulation_on_merge_paths() {
    assert_graph_triple(
        "D008",
        &["fixture_lib::merge_shards"],
        include_str!("fixtures/d008_violation.rs"),
        include_str!("fixtures/d008_clean.rs"),
        include_str!("fixtures/d008_suppressed.rs"),
    );
}

// ---------------------------------------------------------------------
// Dataflow rules (D009–D012): same triple shape, rooted at the
// `[dataflow]` entry sets. `flow_rule` says whether the finding must
// carry intraprocedural def-use evidence (D010/D011) or is a reachable
// hazard with a call chain only (D009/D012).

fn analyze_dataflow_fixture(src: &str, step: &[&str], time: &[&str], hot: &[&str]) -> Analysis {
    let mut policy = Policy::default();
    policy.dataflow.step_entries = step.iter().map(|s| s.to_string()).collect();
    policy.dataflow.time_entries = time.iter().map(|s| s.to_string()).collect();
    policy.dataflow.hot_entries = hot.iter().map(|s| s.to_string()).collect();
    analyze_policy_fixture(src, &policy)
}

fn assert_dataflow_triple(
    rule: &str,
    entry: &[&str],
    violation: &str,
    clean: &str,
    suppressed: &str,
) {
    let pick = |r: &str| -> (Vec<&str>, Vec<&str>, Vec<&str>) {
        match r {
            "D009" | "D010" => (entry.to_vec(), Vec::new(), Vec::new()),
            "D011" => (Vec::new(), entry.to_vec(), Vec::new()),
            _ => (Vec::new(), Vec::new(), entry.to_vec()),
        }
    };
    let (s, t, h) = pick(rule);
    let flow_rule = matches!(rule, "D010" | "D011");

    let v = analyze_dataflow_fixture(violation, &s, &t, &h).report;
    assert!(
        !v.findings.is_empty(),
        "{rule}: violation fixture produced no findings"
    );
    assert!(
        v.findings.iter().all(|f| f.rule == rule),
        "{rule}: violation fixture tripped other rules: {:?}",
        v.findings
    );
    assert!(
        v.findings
            .iter()
            .all(|f| !f.chain.is_empty()
                && f.chain[0].contains(entry[0].rsplit("::").next().unwrap())),
        "{rule}: finding lacks a chain rooted at the entry: {:?}",
        v.findings
    );
    assert!(
        v.findings.iter().all(|f| f.flow.is_empty() != flow_rule),
        "{rule}: def-use flow evidence mismatch (expected flow: {flow_rule}): {:?}",
        v.findings
    );

    let c = analyze_dataflow_fixture(clean, &s, &t, &h).report;
    assert!(
        c.findings.is_empty(),
        "{rule}: clean fixture produced findings: {:?}",
        c.findings
    );

    let sup = analyze_dataflow_fixture(suppressed, &s, &t, &h).report;
    assert!(
        sup.findings.is_empty(),
        "{rule}: suppressed fixture still has findings: {:?}",
        sup.findings
    );
    assert!(
        sup.suppressed.iter().any(|x| x.rule == rule),
        "{rule}: suppressed fixture recorded no {rule} suppression: {:?}",
        sup.suppressed
    );
}

#[test]
fn d009_blocking_in_event_step() {
    assert_dataflow_triple(
        "D009",
        &["fixture_lib::on_event"],
        include_str!("fixtures/d009_violation.rs"),
        include_str!("fixtures/d009_clean.rs"),
        include_str!("fixtures/d009_suppressed.rs"),
    );
}

#[test]
fn d010_rng_confinement() {
    assert_dataflow_triple(
        "D010",
        &["fixture_lib::on_event"],
        include_str!("fixtures/d010_violation.rs"),
        include_str!("fixtures/d010_clean.rs"),
        include_str!("fixtures/d010_suppressed.rs"),
    );
}

#[test]
fn d011_raw_time_into_deadline() {
    assert_dataflow_triple(
        "D011",
        &["fixture_lib::emit"],
        include_str!("fixtures/d011_violation.rs"),
        include_str!("fixtures/d011_clean.rs"),
        include_str!("fixtures/d011_suppressed.rs"),
    );
}

#[test]
fn d012_hot_path_allocation() {
    assert_dataflow_triple(
        "D012",
        &["fixture_lib::observe"],
        include_str!("fixtures/d012_violation.rs"),
        include_str!("fixtures/d012_clean.rs"),
        include_str!("fixtures/d012_suppressed.rs"),
    );
}

// ---------------------------------------------------------------------
// Effect-summary rules (D013–D015): same triple shape, rooted at the
// `[summary]` entry sets. D013's evidence is the cycle's witness edges
// rather than an entry-rooted call chain, so the chain-root assertion
// is relaxed for it.

fn analyze_summary_fixture(src: &str, lock: &[&str], decode: &[&str], ident: &[&str]) -> Analysis {
    let mut policy = Policy::default();
    policy.summary.lock_entries = lock.iter().map(|s| s.to_string()).collect();
    policy.summary.decode_entries = decode.iter().map(|s| s.to_string()).collect();
    policy.summary.identity_entries = ident.iter().map(|s| s.to_string()).collect();
    analyze_policy_fixture(src, &policy)
}

fn assert_summary_triple(
    rule: &str,
    entry: &[&str],
    violation: &str,
    clean: &str,
    suppressed: &str,
) {
    let pick = |r: &str| -> (Vec<&str>, Vec<&str>, Vec<&str>) {
        match r {
            "D013" => (entry.to_vec(), Vec::new(), Vec::new()),
            "D014" => (Vec::new(), entry.to_vec(), Vec::new()),
            _ => (Vec::new(), Vec::new(), entry.to_vec()),
        }
    };
    let (l, d, i) = pick(rule);

    let v = analyze_summary_fixture(violation, &l, &d, &i).report;
    assert!(
        !v.findings.is_empty(),
        "{rule}: violation fixture produced no findings"
    );
    assert!(
        v.findings.iter().all(|f| f.rule == rule),
        "{rule}: violation fixture tripped other rules: {:?}",
        v.findings
    );
    // Every summary-rule finding carries its effect provenance and
    // evidence: witness edges (D013) or an entry-rooted chain.
    assert!(
        v.findings
            .iter()
            .all(|f| f.summary.is_some() && !f.chain.is_empty()),
        "{rule}: finding lacks summary provenance or evidence: {:?}",
        v.findings
    );
    if rule != "D013" {
        assert!(
            v.findings
                .iter()
                .all(|f| f.chain[0].contains(entry[0].rsplit("::").next().unwrap())),
            "{rule}: finding lacks a chain rooted at the entry: {:?}",
            v.findings
        );
    }

    let c = analyze_summary_fixture(clean, &l, &d, &i).report;
    assert!(
        c.findings.is_empty(),
        "{rule}: clean fixture produced findings: {:?}",
        c.findings
    );

    let sup = analyze_summary_fixture(suppressed, &l, &d, &i).report;
    assert!(
        sup.findings.is_empty(),
        "{rule}: suppressed fixture still has findings: {:?}",
        sup.findings
    );
    assert!(
        sup.suppressed.iter().any(|x| x.rule == rule),
        "{rule}: suppressed fixture recorded no {rule} suppression: {:?}",
        sup.suppressed
    );
}

#[test]
fn d013_lock_acquisition_order() {
    assert_summary_triple(
        "D013",
        &["fixture_lib::run_shard"],
        include_str!("fixtures/d013_violation.rs"),
        include_str!("fixtures/d013_clean.rs"),
        include_str!("fixtures/d013_suppressed.rs"),
    );
}

#[test]
fn d014_bounded_decode_recursion() {
    assert_summary_triple(
        "D014",
        &["fixture_lib::decode"],
        include_str!("fixtures/d014_violation.rs"),
        include_str!("fixtures/d014_clean.rs"),
        include_str!("fixtures/d014_suppressed.rs"),
    );
}

#[test]
fn d015_shard_identity_on_merge_path() {
    assert_summary_triple(
        "D015",
        &["fixture_lib::Stats::absorb"],
        include_str!("fixtures/d015_violation.rs"),
        include_str!("fixtures/d015_clean.rs"),
        include_str!("fixtures/d015_suppressed.rs"),
    );
}

/// D013's message must show BOTH acquisition orders — a cycle report
/// that names only one edge is not actionable.
#[test]
fn d013_reports_both_witness_chains() {
    let report = analyze_summary_fixture(
        include_str!("fixtures/d013_violation.rs"),
        &["fixture_lib::run_shard"],
        &[],
        &[],
    )
    .report;
    let f = &report.findings[0];
    assert_eq!(f.rule, "D013");
    assert_eq!(
        f.chain.len(),
        2,
        "one witness per cycle edge: {:?}",
        f.chain
    );
    assert!(
        f.message.contains("Worker::record") && f.message.contains("Worker::evict"),
        "both orders must be named: {}",
        f.message
    );
    assert!(
        f.message
            .contains("Worker.cache -> Worker.stats -> Worker.cache"),
        "cycle must be rendered lock-by-lock: {}",
        f.message
    );
}

#[test]
fn stale_summary_entry_is_a_configuration_error() {
    let mut policy = Policy::default();
    policy.summary.decode_entries = vec!["fixture_lib::renamed_or_removed".to_string()];
    let files = vec![LoadedFile {
        file: SourceFile {
            crate_key: "fixture".to_string(),
            rel_path: "src/lib.rs".to_string(),
            display_path: "crates/fixture/src/lib.rs".to_string(),
            abs_path: PathBuf::new(),
        },
        src: include_str!("fixtures/d014_clean.rs").to_string(),
    }];
    let mut names = BTreeMap::new();
    names.insert("fixture".to_string(), "fixture_lib".to_string());
    let err = analyze(&files, &policy, &names).expect_err("stale entry must be rejected");
    assert!(
        err.contains("renamed_or_removed") && err.contains("decode_entries"),
        "error should name the stale entry and its set: {err}"
    );
}

/// D011 findings narrate the whole def-use path: the tainted binding,
/// then the sink, in source order.
#[test]
fn d011_flow_reports_every_step() {
    let report = analyze_dataflow_fixture(
        include_str!("fixtures/d011_violation.rs"),
        &[],
        &["fixture_lib::emit"],
        &[],
    )
    .report;
    let f = &report.findings[0];
    assert_eq!(f.rule, "D011");
    assert_eq!(f.flow.len(), 2, "flow should have two steps: {:?}", f.flow);
    assert!(f.flow[0].contains("`delay`"), "{:?}", f.flow);
    assert!(
        f.flow[1].contains("`schedule_after` deadline argument"),
        "{:?}",
        f.flow
    );
}

#[test]
fn stale_dataflow_entry_is_a_configuration_error() {
    let mut policy = Policy::default();
    policy.dataflow.hot_entries = vec!["fixture_lib::renamed_or_removed".to_string()];
    let files = vec![LoadedFile {
        file: SourceFile {
            crate_key: "fixture".to_string(),
            rel_path: "src/lib.rs".to_string(),
            display_path: "crates/fixture/src/lib.rs".to_string(),
            abs_path: PathBuf::new(),
        },
        src: include_str!("fixtures/d012_clean.rs").to_string(),
    }];
    let mut names = BTreeMap::new();
    names.insert("fixture".to_string(), "fixture_lib".to_string());
    let err = analyze(&files, &policy, &names).expect_err("stale entry must be rejected");
    assert!(
        err.contains("renamed_or_removed") && err.contains("hot_entries"),
        "error should name the stale entry and its set: {err}"
    );
}

#[test]
fn d007_chain_reports_every_hop() {
    let report = analyze_fixture(
        include_str!("fixtures/d006_violation.rs"),
        &[],
        &["fixture_lib::sweep_sharded"],
        &[],
    )
    .report;
    // The same fixture has no panic site, so rooting D007 there is clean…
    assert!(report.findings.is_empty(), "{:?}", report.findings);

    // …while the D006 chain walks entry -> helper -> record.
    let report = analyze_fixture(
        include_str!("fixtures/d006_violation.rs"),
        &["fixture_lib::sweep_sharded"],
        &[],
        &[],
    )
    .report;
    let f = &report.findings[0];
    assert_eq!(
        f.chain.len(),
        3,
        "chain should have three hops: {:?}",
        f.chain
    );
    assert!(f.chain[0].contains("sweep_sharded"));
    assert!(f.chain[1].contains("helper"));
    assert!(f.chain[2].contains("record"));
}

#[test]
fn stale_graph_entry_is_a_configuration_error() {
    let mut policy = Policy::default();
    policy.graph.shard_entries = vec!["fixture_lib::renamed_or_removed".to_string()];
    let files = vec![LoadedFile {
        file: SourceFile {
            crate_key: "fixture".to_string(),
            rel_path: "src/lib.rs".to_string(),
            display_path: "crates/fixture/src/lib.rs".to_string(),
            abs_path: PathBuf::new(),
        },
        src: include_str!("fixtures/d006_clean.rs").to_string(),
    }];
    let mut names = BTreeMap::new();
    names.insert("fixture".to_string(), "fixture_lib".to_string());
    let err = analyze(&files, &policy, &names).expect_err("stale entry must be rejected");
    assert!(
        err.contains("renamed_or_removed"),
        "error should name the stale entry: {err}"
    );
}

#[test]
fn graph_policy_parses_multi_line_arrays() {
    let toml = r#"
        [graph]
        shard_entries = [
            "a::sweep",   # trailing comment
            "b::verify",
        ]
        protocol_entries = ["c::query"]
        merge_entries = []

        [default]
        rules = ["D001"]
    "#;
    let p = Policy::parse(toml).expect("graph policy parses");
    assert_eq!(p.graph.shard_entries, vec!["a::sweep", "b::verify"]);
    assert_eq!(p.graph.protocol_entries, vec!["c::query"]);
    assert!(p.graph.merge_entries.is_empty());
}

// ---------------------------------------------------------------------
// Pragma hygiene.

#[test]
fn pragma_missing_reason_is_a_finding() {
    let src = "pub fn f() -> u16 {\n    // doe-lint: allow(D005)\n    3usize as u16\n}\n";
    let out = lint(src, ALL_RULES);
    // The malformed pragma suppresses nothing, so both the hygiene error
    // and the underlying D005 finding surface.
    assert!(out.findings.iter().any(|f| f.rule == "P002"), "{out:?}");
    assert!(out.findings.iter().any(|f| f.rule == "D005"), "{out:?}");
}

#[test]
fn pragma_unknown_rule_is_a_finding() {
    let src = "// doe-lint: allow(D999) — no such rule\npub fn f() {}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "P003"), "{out:?}");
}

#[test]
fn pragma_malformed_directive_is_a_finding() {
    let src = "// doe-lint: deny(D001) — wrong verb\npub fn f() {}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "P001"), "{out:?}");
}

#[test]
fn pragma_for_wrong_rule_is_stale_and_suppresses_nothing() {
    let src = "pub fn f() -> u16 {\n    \
               // doe-lint: allow(D001) — fixture: wrong rule id on purpose\n    \
               3usize as u16\n}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.iter().any(|f| f.rule == "D005"), "{out:?}");
    assert!(out.findings.iter().any(|f| f.rule == "P004"), "{out:?}");
}

#[test]
fn stale_pragma_is_a_p004_error() {
    assert_rule_p004(
        include_str!("fixtures/p004_violation.rs"),
        include_str!("fixtures/p004_clean.rs"),
    );
}

fn assert_rule_p004(violation: &str, clean: &str) {
    let v = lint(violation, ALL_RULES);
    assert!(
        v.findings.iter().any(|f| f.rule == "P004"),
        "stale pragma did not produce P004: {:?}",
        v.findings
    );
    assert!(
        v.findings
            .iter()
            .filter(|f| f.rule == "P004")
            .all(|f| f.message.contains("suppresses nothing")),
        "P004 message should explain the problem: {:?}",
        v.findings
    );

    let c = lint(clean, ALL_RULES);
    assert!(
        c.findings.is_empty(),
        "live suppression flagged as stale: {:?}",
        c.findings
    );
    assert!(
        !c.suppressed.is_empty(),
        "clean fixture should record its live suppression"
    );
}

#[test]
fn test_modules_are_exempt() {
    let src = "pub fn lib_code() {}\n\n\
               #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
               #[test]\n    fn t() {\n        \
               let mut m = HashMap::new();\n        \
               m.insert(1, std::time::Instant::now());\n        \
               println!(\"{}\", m.len());\n        \
               m.get(&1).unwrap();\n    }\n}\n";
    let out = lint(src, ALL_RULES);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn policy_scoping_controls_what_fires() {
    let toml = r#"
        [default]
        rules = ["D001", "D003"]

        [crates.scanner]
        rules = ["D001", "D002", "D003", "D005"]

        [crates.netsim.files."src/net.rs"]
        rules = ["D005"]

        [crates.bench]
        rules = []
    "#;
    let policy = Policy::parse(toml).expect("sample policy parses");

    // A HashMap in an unlisted crate is fine (D002 off by default)...
    let hash_src = include_str!("fixtures/d002_violation.rs");
    let default_rules = policy.rules_for("tlssim", "src/lib.rs");
    assert!(lint_source("f.rs", hash_src, &default_rules)
        .findings
        .is_empty());

    // ...but fires in the scanner, whose output feeds reports.
    let scanner_rules = policy.rules_for("scanner", "src/sweep.rs");
    let out = lint_source("f.rs", hash_src, &scanner_rules);
    assert!(out.findings.iter().all(|f| f.rule == "D002"));
    assert!(!out.findings.is_empty());

    // File-scoped extras apply to exactly that file.
    let cast_src = include_str!("fixtures/d005_violation.rs");
    let net_rules = policy.rules_for("netsim", "src/net.rs");
    assert!(!lint_source("f.rs", cast_src, &net_rules)
        .findings
        .is_empty());
    let geo_rules = policy.rules_for("netsim", "src/geo.rs");
    assert!(lint_source("f.rs", cast_src, &geo_rules)
        .findings
        .is_empty());

    // Empty rule set means the crate is fully out of scope.
    assert!(policy.rules_for("bench", "src/lib.rs").is_empty());
}

// ---------------------------------------------------------------------
// Whole-workspace meta-tests.

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn workspace_policy(root: &Path) -> Policy {
    let policy_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    Policy::parse(&policy_text).expect("workspace lint.toml parses")
}

/// The meta-test: the live workspace must satisfy its own contract —
/// token rules *and* the interprocedural D006/D007/D008 — and every
/// recorded suppression must carry a justification.
#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let policy = workspace_policy(&root);
    assert!(
        !policy.graph.shard_entries.is_empty()
            && !policy.graph.protocol_entries.is_empty()
            && !policy.graph.merge_entries.is_empty(),
        "the workspace policy must keep the interprocedural rules rooted"
    );
    assert!(
        !policy.dataflow.step_entries.is_empty()
            && !policy.dataflow.time_entries.is_empty()
            && !policy.dataflow.hot_entries.is_empty(),
        "the workspace policy must keep the dataflow rules rooted"
    );
    assert!(
        !policy.summary.lock_entries.is_empty()
            && !policy.summary.decode_entries.is_empty()
            && !policy.summary.identity_entries.is_empty(),
        "the workspace policy must keep the effect-summary rules rooted"
    );
    let report = lint_workspace(&root, &policy).expect("workspace lints");
    assert!(
        report.clean(),
        "workspace has unsuppressed findings:\n{}",
        doe_lint::report::human(&report)
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report
            .suppressed
            .iter()
            .all(|s| !s.reason.trim().is_empty()),
        "a suppression lost its reason: {:?}",
        report.suppressed
    );
}

/// Two analyses of the same tree must serialise to byte-identical
/// artifacts — `scripts/verify.sh` archives and diffs them.
#[test]
fn callgraph_and_report_are_byte_deterministic() {
    let root = workspace_root();
    let policy = workspace_policy(&root);
    let a = doe_lint::analyze_workspace(&root, &policy).expect("first analysis");
    let b = doe_lint::analyze_workspace(&root, &policy).expect("second analysis");
    let ga = doe_lint::graph::to_json(&a.graph);
    let gb = doe_lint::graph::to_json(&b.graph);
    assert_eq!(ga, gb, "callgraph.json is not byte-stable across runs");
    assert!(
        ga.contains("\"edges\"") && ga.contains("\"nodes\""),
        "callgraph export lost its sections"
    );
    let ra = doe_lint::report::json(&a.report);
    assert_eq!(
        ra,
        doe_lint::report::json(&b.report),
        "doe-lint.json is not byte-stable across runs"
    );
    assert!(
        ra.contains("\"version\": 4"),
        "report schema should be v4 (with per-finding fingerprint and summary provenance)"
    );
    let sa = doe_lint::report::sarif(&a.report);
    assert_eq!(
        sa,
        doe_lint::report::sarif(&b.report),
        "SARIF export is not byte-stable across runs"
    );
    assert!(
        sa.contains("\"version\": \"2.1.0\"") && sa.contains("\"name\": \"doe-lint\""),
        "SARIF export lost its envelope"
    );
}

/// The summary fixpoint must converge with a summary for every function
/// in the workspace graph, and the results must be internally
/// consistent: component ids in range, recursion counts only on members
/// of cyclic exact SCCs, and the condensation topologically ordered
/// (callees' components never after their callers' in emission order is
/// not required, but each function's effects must include those of its
/// exact callees' lock sets by the join).
#[test]
fn workspace_summary_fixpoint_covers_every_function() {
    let root = workspace_root();
    let policy = workspace_policy(&root);
    let a = doe_lint::analyze_workspace(&root, &policy).expect("analysis");
    let n = a.graph.nodes.len();
    assert!(n > 500, "suspiciously small workspace graph: {n} nodes");
    assert_eq!(
        a.summaries.per_fn.len(),
        n,
        "fixpoint must produce a summary for every function"
    );
    // Join consistency: every caller's summary includes each callee's
    // effect bits (modulo the ShardCtx boundary clamp on mutates_shared).
    for (u, node) in a.graph.nodes.iter().enumerate() {
        let su = &a.summaries.per_fn[u];
        if doe_lint::summary::exempt(node) {
            assert!(!su.mutates_shared, "boundary clamp violated at {u}");
            continue;
        }
        for &(v, _, _) in &a.graph.adj[u] {
            let sv = &a.summaries.per_fn[v];
            assert!(!sv.panics || su.panics, "panics not joined {u}<-{v}");
            assert!(!sv.blocks || su.blocks, "blocks not joined {u}<-{v}");
            assert!(
                !sv.allocates || su.allocates,
                "allocates not joined {u}<-{v}"
            );
        }
    }
    // The workspace certainly allocates somewhere and takes locks
    // somewhere; a fixpoint that says otherwise silently under-joined.
    assert!(
        a.summaries.per_fn.iter().any(|s| s.allocates),
        "no allocation effect anywhere — summaries under-joined"
    );
    assert!(
        a.summaries.per_fn.iter().any(|s| !s.lock_set.is_empty()),
        "no held-lock-set anywhere — lock sites lost"
    );
}
