//! Dataflow fixture: the step models its wait as a scheduled event and
//! only computes — nothing blocks the dispatch loop.
pub struct Sched {
    pub deadline: u64,
}

fn reschedule(s: &mut Sched, now: u64) {
    s.deadline = now + 5;
}

pub fn on_event(s: &mut Sched, now: u64) {
    reschedule(s, now);
}
