//! Graph fixture: the shared-state mutation carries a justified pragma.
use std::sync::Mutex;

pub struct Shared {
    hits: Mutex<u64>,
}

fn record(s: &Shared) {
    // doe-lint: allow(D006) — fixture: monotone counter, merge is associative
    s.hits.lock();
}

pub fn sweep_sharded(s: &Shared) {
    record(s);
}
