//! Graph fixture: the sharded entry only touches its own arguments.
fn fold(xs: &[u64]) -> u64 {
    let mut best = 0;
    for &x in xs {
        if x > best {
            best = x;
        }
    }
    best
}

pub fn sweep_sharded(xs: &[u64]) -> u64 {
    fold(xs)
}
