//! Graph fixture: the panic site carries a justified pragma.
fn parse(data: &[u8]) -> u8 {
    // doe-lint: allow(D007) — fixture: length checked by the framing layer
    data.first().copied().unwrap()
}

pub fn proto_query(data: &[u8]) -> u8 {
    parse(data)
}
