//! D002 fixture: ordered collections keep iteration deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for x in xs {
        *m.entry(*x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u32]) -> BTreeSet<u32> {
    xs.iter().copied().collect()
}
