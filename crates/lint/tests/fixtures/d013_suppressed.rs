//! D013 suppressed: the opposite-order acquisition is acknowledged with
//! a justified pragma on the finding's anchor (the second acquisition
//! of the cycle's witness edge).

pub struct Worker {
    pub stats: std::sync::Mutex<u64>,
    pub cache: std::sync::Mutex<u64>,
}

impl Worker {
    pub fn record(&self) {
        let stats = self.stats.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(stats);
    }

    pub fn evict(&self) {
        let cache = self.cache.lock();
        // doe-lint: allow(D013) — fixture: both locks are private to this
        // worker and never taken from another thread in this order
        let stats = self.stats.lock();
        drop(stats);
        drop(cache);
    }
}

pub fn run_shard(w: &Worker) {
    w.record();
    w.evict();
}
