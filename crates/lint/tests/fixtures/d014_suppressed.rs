//! D014 suppressed: the unguarded recursion is acknowledged with a
//! justified pragma on the cycle's anchor function.

pub fn decode(msg: &[u8]) -> usize {
    parse_name(msg, 0)
}

// doe-lint: allow(D014) — fixture: input is produced by our own encoder
// and cannot contain a pointer loop
fn parse_name(msg: &[u8], pos: usize) -> usize {
    if msg[pos] & 0xc0 == 0xc0 {
        follow_pointer(msg, pos)
    } else {
        pos + 1
    }
}

fn follow_pointer(msg: &[u8], pos: usize) -> usize {
    let target = usize::from(msg[pos + 1]);
    parse_name(msg, target)
}
