//! Pragma-hygiene fixture: the pragma actually suppresses a finding, so
//! it is not stale.
pub fn noisy() {
    // doe-lint: allow(D003) — fixture: exercising a live suppression
    println!("fixture output");
}
