//! D013 clean: every function acquires the two locks in the same
//! order, so the lock-order graph is acyclic.

pub struct Worker {
    pub stats: std::sync::Mutex<u64>,
    pub cache: std::sync::Mutex<u64>,
}

impl Worker {
    pub fn record(&self) {
        let stats = self.stats.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(stats);
    }

    pub fn evict(&self) {
        let stats = self.stats.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(stats);
    }
}

pub fn run_shard(w: &Worker) {
    w.record();
    w.evict();
}
