//! D001 fixture: wall-clock and ambient entropy in library code.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_millis()
}

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen::<u64>() ^ rand::random::<u64>()
}
