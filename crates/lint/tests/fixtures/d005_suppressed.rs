//! D005 fixture: a masked narrowing whose wrap is intentional, pragma'd.

pub fn txid(i: usize) -> u16 {
    (i & 0xFFFF) as u16 // doe-lint: allow(D005) — fixture: masked to the u16 domain on the previous token
}
