//! Dataflow fixture: the blocking call carries a justified pragma.
use std::sync::mpsc::Receiver;

fn drain(rx: &Receiver<u64>) -> Option<u64> {
    // doe-lint: allow(D009) — fixture: harness rendezvous channel, the
    // sender completes before the step is dispatched so recv cannot stall
    rx.recv().ok()
}

pub fn on_event(rx: &Receiver<u64>) -> Option<u64> {
    drain(rx)
}
