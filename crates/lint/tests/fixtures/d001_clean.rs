//! D001 fixture: deterministic time and seeded randomness only.

use netsim::{Network, SimDuration};

pub fn stamp(net: &Network) -> u128 {
    net.now().as_millis()
}

pub fn jitter(net: &mut Network) -> u64 {
    net.rng().gen()
}

pub fn budget() -> SimDuration {
    SimDuration::from_secs(5)
}
