//! D013 violation: two functions on the sharded path take the same two
//! locks in opposite orders — a static deadlock.

pub struct Worker {
    pub stats: std::sync::Mutex<u64>,
    pub cache: std::sync::Mutex<u64>,
}

impl Worker {
    pub fn record(&self) {
        let stats = self.stats.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(stats);
    }

    pub fn evict(&self) {
        let cache = self.cache.lock();
        let stats = self.stats.lock();
        drop(stats);
        drop(cache);
    }
}

pub fn run_shard(w: &Worker) {
    w.record();
    w.evict();
}
