//! Graph fixture: the protocol path degrades instead of panicking.
fn parse(data: &[u8]) -> u8 {
    data.first().copied().unwrap_or(0)
}

pub fn proto_query(data: &[u8]) -> u8 {
    parse(data)
}
