//! Dataflow fixture: the step swaps the per-machine RNG in, but a `?`
//! return between the swap-in and the swap-out can leave it installed
//! for whichever machine steps next.
pub struct Net;

impl Net {
    pub fn swap_rng(&mut self, _seat: u64) {}
}

fn fallible() -> Result<u64, ()> {
    Ok(3)
}

pub fn on_event(net: &mut Net) -> Result<u64, ()> {
    net.swap_rng(7);
    let v = fallible()?;
    net.swap_rng(7);
    Ok(v)
}
