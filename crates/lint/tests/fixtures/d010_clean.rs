//! Dataflow fixture: every exit path restores the shared RNG before it
//! can propagate — the `?` fires only after the swap-out.
pub struct Net;

impl Net {
    pub fn swap_rng(&mut self, _seat: u64) {}
}

fn fallible() -> Result<u64, ()> {
    Ok(3)
}

pub fn on_event(net: &mut Net) -> Result<u64, ()> {
    net.swap_rng(7);
    let v = fallible();
    net.swap_rng(7);
    let v = v?;
    Ok(v)
}
