//! Dataflow fixture: an event-machine step blocks the calling thread
//! two calls down — the stall skews every virtual-time measurement
//! scheduled behind it.
use std::time::Duration;

fn backoff() {
    std::thread::sleep(Duration::from_millis(5));
}

fn retry() {
    backoff();
}

pub fn on_event() {
    retry();
}
