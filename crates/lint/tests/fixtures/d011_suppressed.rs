//! Dataflow fixture: the raw deadline carries a justified pragma.
pub struct Sched;

impl Sched {
    pub fn schedule_after(&mut self, _delay: u64, _ev: u32) {}
}

pub fn emit(s: &mut Sched) {
    let delay = 5000;
    // doe-lint: allow(D011) — fixture: protocol-mandated constant already
    // expressed in the scheduler's native nanosecond unit
    s.schedule_after(delay, 1);
}
