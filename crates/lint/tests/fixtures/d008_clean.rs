//! Graph fixture: integer accumulation on the merge path is exact and
//! associative — the float gate must not fire on it.
fn accumulate(xs: &[u64]) -> u64 {
    let mut total = 0;
    for x in xs {
        total += x;
    }
    total
}

pub fn merge_shards(xs: &[u64]) -> u64 {
    accumulate(xs)
}
