//! Dataflow fixture: the early return between swaps carries a justified
//! pragma.
pub struct Net;

impl Net {
    pub fn swap_rng(&mut self, _seat: u64) {}
}

fn fallible() -> Result<u64, ()> {
    Ok(3)
}

pub fn on_event(net: &mut Net) -> Result<u64, ()> {
    net.swap_rng(7);
    // doe-lint: allow(D010) — fixture: the caller drops the whole shard
    // on error, so the stranded RNG is never observed by another machine
    let v = fallible()?;
    net.swap_rng(7);
    Ok(v)
}
