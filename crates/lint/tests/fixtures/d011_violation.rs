//! Dataflow fixture: a bare integer flows into a scheduler deadline —
//! nothing says whether it means nanoseconds or milliseconds.
pub struct Sched;

impl Sched {
    pub fn schedule_after(&mut self, _delay: u64, _ev: u32) {}
}

pub fn emit(s: &mut Sched) {
    let delay = 5000;
    s.schedule_after(delay, 1);
}
