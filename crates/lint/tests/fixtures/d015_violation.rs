//! D015 violation: a shard-merge path keys its data on the worker's
//! shard identity — the merged result depends on worker layout.

pub struct Stats {
    pub total: u64,
    pub shard_id: u64,
}

impl Stats {
    pub fn absorb(&mut self, other: &Stats) {
        self.keyed(other);
    }

    fn keyed(&mut self, other: &Stats) {
        self.total += other.shard_id;
    }
}
