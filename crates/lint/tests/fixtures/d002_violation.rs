//! D002 fixture: hash-ordered collections on a report path.

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for x in xs {
        *m.entry(*x).or_insert(0) += 1;
    }
    m
}

pub fn distinct(xs: &[u32]) -> HashSet<u32> {
    xs.iter().copied().collect()
}
