//! D004 fixture: panicking extraction on a protocol path.

pub fn first_answer(message: &dnswire::Message) -> dnswire::ResourceRecord {
    message.answers.first().unwrap().clone()
}

pub fn decode(bytes: &[u8]) -> dnswire::Message {
    dnswire::Message::decode(bytes).expect("peer sent a well-formed message")
}
