//! D005 fixture: silent narrowing in address-space arithmetic.

pub fn txid(i: usize) -> u16 {
    i as u16
}

pub fn octet(host: u32) -> u8 {
    host as u8
}
