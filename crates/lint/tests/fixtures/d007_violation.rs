//! Graph fixture: a protocol entry point reaches a panic site.
fn parse(data: &[u8]) -> u8 {
    data.first().copied().unwrap()
}

pub fn proto_query(data: &[u8]) -> u8 {
    parse(data)
}
