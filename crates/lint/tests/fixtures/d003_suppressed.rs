//! D003 fixture: a deliberate stderr escape hatch, pragma'd.

pub fn panic_hook_note(detail: &str) {
    // doe-lint: allow(D003) — fixture: last-resort diagnostics from a panic hook, never on the data path
    eprintln!("doe: aborting: {detail}");
}
