//! Graph fixture: a sharded entry point reaches a shared-state mutation
//! two calls down.
use std::sync::Mutex;

pub struct Shared {
    hits: Mutex<u64>,
}

fn record(s: &Shared) {
    s.hits.lock();
}

fn helper(s: &Shared) {
    record(s);
}

pub fn sweep_sharded(s: &Shared) {
    helper(s);
}
