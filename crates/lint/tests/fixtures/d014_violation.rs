//! D014 violation: the name parser recurses through the
//! compression-pointer path with no fuel or depth bound — adversarial
//! wire data loops until the stack blows.

pub fn decode(msg: &[u8]) -> usize {
    parse_name(msg, 0)
}

fn parse_name(msg: &[u8], pos: usize) -> usize {
    if msg[pos] & 0xc0 == 0xc0 {
        follow_pointer(msg, pos)
    } else {
        pos + 1
    }
}

fn follow_pointer(msg: &[u8], pos: usize) -> usize {
    let target = usize::from(msg[pos + 1]);
    parse_name(msg, target)
}
