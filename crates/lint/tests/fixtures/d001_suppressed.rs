//! D001 fixture: every wall-clock / entropy use carries a reasoned pragma.

pub fn bench_probe() -> u128 {
    // doe-lint: allow(D001) — fixture: wall-clock confined to a debug probe
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}

pub fn seed_material() -> u64 {
    let mut rng = rand::thread_rng(); // doe-lint: allow(D001) — fixture: entropy feeds only the seed helper
    rng.gen()
}
