//! D015 suppressed: the identity read is acknowledged with a justified
//! pragma — the value feeds a debug label, not the merged totals.

pub struct Stats {
    pub total: u64,
    pub shard_id: u64,
}

impl Stats {
    pub fn absorb(&mut self, other: &Stats) {
        self.keyed(other);
    }

    fn keyed(&mut self, other: &Stats) {
        // doe-lint: allow(D015) — fixture: identity feeds a diagnostic
        // label that never reaches merged output
        self.total += other.shard_id;
    }
}
