//! D015 clean: the merge folds layout-independent values only.

pub struct Stats {
    pub total: u64,
    pub shard_id: u64,
}

impl Stats {
    pub fn absorb(&mut self, other: &Stats) {
        self.keyed(other);
    }

    fn keyed(&mut self, other: &Stats) {
        self.total += other.total;
    }
}
