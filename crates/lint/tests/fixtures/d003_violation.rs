//! D003 fixture: console output from library code.

pub fn announce(progress: usize, total: usize) {
    println!("verified {progress}/{total}");
    if progress > total {
        eprintln!("probe counter overran the target space");
    }
    dbg!(progress);
}
