//! Graph fixture: a merge entry point reaches float accumulation.
fn accumulate(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

pub fn merge_shards(xs: &[f64]) -> f64 {
    accumulate(xs)
}
