//! D005 fixture: narrowing made explicit with try_from or u64 widening.

pub fn txid(i: usize) -> Option<u16> {
    u16::try_from(i % 65_536).ok()
}

pub fn widen(host: u32) -> u64 {
    u64::from(host)
}
