//! Dataflow fixture: the deadline goes through the unit-bearing
//! SimDuration constructor, so the literal's meaning is explicit.
pub struct SimDuration(u64);

impl SimDuration {
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
}

pub struct Sched;

impl Sched {
    pub fn schedule_after(&mut self, _delay: SimDuration, _ev: u32) {}
}

pub fn emit(s: &mut Sched) {
    let delay = SimDuration::from_millis(5);
    s.schedule_after(delay, 1);
}
