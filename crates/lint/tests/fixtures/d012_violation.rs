//! Dataflow fixture: the telemetry hot path allocates — a heap round
//! trip per probe destroys the alloc-free ~23 ns budget.
fn label(id: u64) -> String {
    format!("probe-{id}")
}

pub fn observe(id: u64) -> usize {
    label(id).len()
}
