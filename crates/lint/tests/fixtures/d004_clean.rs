//! D004 fixture: fallible extraction surfaces typed errors.

pub fn first_answer(
    message: &dnswire::Message,
) -> Result<dnswire::ResourceRecord, QueryError> {
    message
        .answers
        .first()
        .cloned()
        .ok_or_else(|| QueryError::Protocol("empty answer section".into()))
}

pub fn decode(bytes: &[u8]) -> Result<dnswire::Message, QueryError> {
    Ok(dnswire::Message::decode(bytes)?)
}
