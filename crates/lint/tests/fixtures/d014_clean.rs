//! D014 clean: the same recursion cycle, but the parser threads an
//! explicit fuel parameter — the decode depth is bounded by
//! construction.

pub fn decode(msg: &[u8]) -> usize {
    parse_name(msg, 0, 64)
}

fn parse_name(msg: &[u8], pos: usize, fuel: u8) -> usize {
    if fuel == 0 {
        return pos;
    }
    if msg[pos] & 0xc0 == 0xc0 {
        follow_pointer(msg, pos, fuel - 1)
    } else {
        pos + 1
    }
}

fn follow_pointer(msg: &[u8], pos: usize, fuel: u8) -> usize {
    let target = usize::from(msg[pos + 1]);
    parse_name(msg, target, fuel)
}
