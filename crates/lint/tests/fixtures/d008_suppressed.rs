//! Graph fixture: the float accumulation carries a justified pragma.
fn accumulate(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        // doe-lint: allow(D008) — fixture: inputs arrive pre-sorted by key
        total += x;
    }
    total
}

pub fn merge_shards(xs: &[f64]) -> f64 {
    accumulate(xs)
}
