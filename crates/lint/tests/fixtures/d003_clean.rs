//! D003 fixture: library code returns strings; the binary prints them.

pub fn announce(progress: usize, total: usize) -> String {
    format!("verified {progress}/{total}")
}

pub fn warn_overrun(progress: usize, total: usize) -> Option<String> {
    (progress > total).then(|| "probe counter overran the target space".to_string())
}
