//! Dataflow fixture: the hot path only indexes pre-sized storage.
pub struct Hist {
    buckets: [u64; 8],
}

fn bucket_for(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(7)
}

pub fn observe(h: &mut Hist, v: u64) {
    h.buckets[bucket_for(v)] += 1;
}
