//! D002 fixture: a hash map whose contents never reach output, pragma'd.

pub fn scratch(xs: &[u32]) -> usize {
    // doe-lint: allow(D002) — fixture: map is drained into a sorted Vec before any output
    let mut m = std::collections::HashMap::new();
    for x in xs {
        *m.entry(*x).or_insert(0u32) += 1;
    }
    let mut flat: Vec<_> = m.into_iter().collect();
    flat.sort_unstable();
    flat.len()
}
