//! Dataflow fixture: the allocation carries a justified pragma.
fn snapshot(buckets: &[u64]) -> Vec<u64> {
    // doe-lint: allow(D012) — fixture: cold slow-path taken once per
    // epoch rollover, never per probe
    buckets.to_vec()
}

pub fn observe(buckets: &[u64]) -> usize {
    snapshot(buckets).len()
}
