//! Pragma-hygiene fixture: this pragma suppresses nothing and must be
//! reported as P004.
// doe-lint: allow(D003) — fixture: nothing on the next line violates D003
pub fn quiet() -> u32 {
    7
}
