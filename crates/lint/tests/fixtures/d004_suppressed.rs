//! D004 fixture: a provably-infallible expect, pragma'd with its proof.

pub fn wire_header(id: u16) -> Vec<u8> {
    // doe-lint: allow(D004) — fixture: serialising a plain value struct cannot fail
    serde_json::to_vec(&id).expect("u16 serialises")
}
