//! The reachability test (Figure 7): per vantage point, query each large
//! resolver over clear-text DNS (TCP), Opportunistic DoT and Strict DoH;
//! classify outcomes; investigate failures.

use dnswire::{builder, Message, Rcode, RecordType};
use doe_protocols::dot::DotClient;
use doe_protocols::{Bootstrap, DohClient, DohMethod, QueryError};
use httpsim::{Request, Response, UriTemplate};
use netsim::sched::{run_machines, EventMachine, Fired, SchedEvent};
use netsim::telemetry::{HistogramId, Labels};
use netsim::{mix_seed, Network, ProbeOutcome, SimDuration};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CertError, DateStamp, TlsClientConfig, TlsError, TrustStore};
use worldgen::providers::anchors;
use worldgen::{ClientInfo, World};

/// Which transport a result belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TransportKind {
    /// Clear-text DNS (over TCP through the proxy platforms).
    Dns,
    /// DNS over TLS, Opportunistic profile.
    Dot,
    /// DNS over HTTPS, Strict profile.
    Doh,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Dns => write!(f, "DNS"),
            TransportKind::Dot => write!(f, "DoT"),
            TransportKind::Doh => write!(f, "DoH"),
        }
    }
}

/// Table 4's outcome classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A NOERROR response whose answer matches authoritative truth.
    Correct,
    /// SERVFAIL, NXDOMAIN, zero answers, or a wrong answer.
    Incorrect,
    /// No DNS response at all.
    Failed,
}

/// Tallies per (resolver, transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Correct responses.
    pub correct: usize,
    /// Incorrect responses.
    pub incorrect: usize,
    /// Failures.
    pub failed: usize,
}

impl Counts {
    fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Correct => self.correct += 1,
            Outcome::Incorrect => self.incorrect += 1,
            Outcome::Failed => self.failed += 1,
        }
    }

    /// Total classified.
    pub fn total(&self) -> usize {
        self.correct + self.incorrect + self.failed
    }

    /// Fraction helpers for reporting.
    pub fn rates(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.correct as f64 / t,
            self.incorrect as f64 / t,
            self.failed as f64 / t,
        )
    }
}

/// One resolver's test targets.
#[derive(Debug, Clone)]
pub struct ResolverTargets {
    /// Display name.
    pub name: String,
    /// Clear-text address.
    pub dns: Option<Ipv4Addr>,
    /// DoT address (None = service not announced, Google's case).
    pub dot: Option<Ipv4Addr>,
    /// DoH locator.
    pub doh: Option<UriTemplate>,
}

/// The standard four targets of Figure 7.
pub fn standard_targets(world: &World) -> Vec<ResolverTargets> {
    let template_of = |host: &str| {
        world
            .deployment
            .doh_services
            .iter()
            .find(|s| s.hostname == host)
            .map(|s| s.template.clone())
    };
    vec![
        ResolverTargets {
            name: "Cloudflare".into(),
            dns: Some(anchors::CLOUDFLARE_PRIMARY),
            dot: Some(anchors::CLOUDFLARE_PRIMARY),
            doh: template_of("cloudflare-dns.com"),
        },
        ResolverTargets {
            name: "Google".into(),
            dns: Some(anchors::GOOGLE_PRIMARY),
            dot: None, // not announced at experiment time
            doh: template_of("dns.google.com"),
        },
        ResolverTargets {
            name: "Quad9".into(),
            dns: Some(anchors::QUAD9_PRIMARY),
            dot: Some(anchors::QUAD9_PRIMARY),
            doh: template_of("dns.quad9.net"),
        },
        ResolverTargets {
            name: "Self-built".into(),
            dns: Some(world.self_built.addr),
            dot: Some(world.self_built.addr),
            doh: Some(world.self_built.doh_template.clone()),
        },
    ]
}

/// An intercepted client (Table 6 rows).
#[derive(Debug, Clone)]
pub struct InterceptionFinding {
    /// Client address (reported as /24 in the paper's ethics style).
    pub client: Ipv4Addr,
    /// Client country.
    pub country: String,
    /// Client AS.
    pub asn: u32,
    /// CA common name on the re-signed certificate.
    pub ca_cn: String,
    /// DoT (853) intercepted.
    pub port_853: bool,
    /// DoH (443) intercepted.
    pub port_443: bool,
}

/// Forensics on a client that failed Cloudflare DoT (Table 5).
#[derive(Debug, Clone)]
pub struct ForensicFinding {
    /// The failing client.
    pub client: Ipv4Addr,
    /// Client AS.
    pub asn: u32,
    /// Ports answering on 1.1.1.1 as seen from this client.
    pub open_ports: Vec<u16>,
    /// `<title>` of the webpage served at 1.1.1.1:80, if any.
    pub page_title: Option<String>,
    /// Whether the page carries coin-mining script (the hijacked
    /// MikroTik routers of §4.2).
    pub coinminer: bool,
}

/// The full reachability report.
#[derive(Debug, Clone)]
pub struct ReachabilityReport {
    /// Counts per resolver name per transport.
    pub matrix: BTreeMap<String, BTreeMap<TransportKind, Counts>>,
    /// Clients tested.
    pub clients_tested: usize,
    /// Intercepted clients discovered.
    pub interceptions: Vec<InterceptionFinding>,
    /// Forensic findings on Cloudflare-DoT failures.
    pub forensics: Vec<ForensicFinding>,
}

impl ReachabilityReport {
    /// Table 5's histogram: how many failing clients had each port open.
    pub fn port_histogram(&self) -> (BTreeMap<u16, usize>, usize) {
        let mut hist: BTreeMap<u16, usize> = BTreeMap::new();
        let mut none = 0usize;
        for f in &self.forensics {
            if f.open_ports.is_empty() {
                none += 1;
            }
            for &p in &f.open_ports {
                *hist.entry(p).or_default() += 1;
            }
        }
        (hist, none)
    }

    /// Counts for one cell.
    pub fn cell(&self, resolver: &str, transport: TransportKind) -> Counts {
        self.matrix
            .get(resolver)
            .and_then(|m| m.get(&transport))
            .copied()
            .unwrap_or_default()
    }
}

/// The forensic probe set of Figure 7.
pub const FORENSIC_PORTS: [u16; 10] = [22, 23, 53, 67, 80, 123, 139, 161, 179, 443];

fn classify(result: Result<Message, QueryError>, expected: Ipv4Addr) -> Outcome {
    match result {
        Ok(message) => {
            if message.rcode() != Rcode::NoError {
                return Outcome::Incorrect;
            }
            let got: Option<Ipv4Addr> = message.answers.iter().find_map(|rr| match &rr.rdata {
                dnswire::RData::A(a) => Some(*a),
                _ => None,
            });
            match got {
                Some(a) if a == expected => Outcome::Correct,
                _ => Outcome::Incorrect,
            }
        }
        Err(_) => Outcome::Failed,
    }
}

fn fetch_title(net: &mut Network, src: Ipv4Addr, dst: Ipv4Addr) -> (Option<String>, bool) {
    let Ok(mut conn) = net.connect_with_timeout(src, dst, 80, SimDuration::from_secs(5)) else {
        return (None, false);
    };
    let raw = match conn.request(net, &Request::get("/").encode()) {
        Ok(r) => r,
        Err(_) => return (None, false),
    };
    conn.close(net);
    let Ok(resp) = Response::decode(&raw) else {
        return (None, false);
    };
    let body = String::from_utf8_lossy(&resp.body);
    let title = body
        .split("<title>")
        .nth(1)
        .and_then(|rest| rest.split("</title>").next())
        .map(str::to_string);
    let miner = body.contains("coinhive") || body.contains("CoinHive");
    (title, miner)
}

/// Everything one client's test run produced, keyed for the merge.
struct ClientFindings {
    /// `(target name, transport, outcome)` cells in test order.
    cells: Vec<(String, TransportKind, Outcome)>,
    interception: Option<InterceptionFinding>,
    forensic: Option<ForensicFinding>,
}

/// Immutable per-run parameters shared by every client test.
struct ReachSetup {
    targets: Vec<ResolverTargets>,
    expected: Ipv4Addr,
    apex: String,
    store: TrustStore,
    now: DateStamp,
    bootstrap: Ipv4Addr,
    /// Resolver whose DoT failures trigger the forensic investigation.
    forensics_on: String,
}

/// One transport slot of a target's test sequence.
#[derive(Clone, Copy)]
enum ReachSlot {
    Dns(Ipv4Addr),
    Dot(Ipv4Addr),
    Doh,
}

impl ReachSetup {
    /// Queries one client issues — fixes each client's serial-number base
    /// so query names don't depend on which shard runs it.
    fn serials_per_client(&self) -> u64 {
        self.steps().len() as u64
    }

    /// The flat `(target, slot)` sequence every client walks, one step
    /// per scheduler event, in the same order the sequential loop used.
    fn steps(&self) -> Vec<(usize, ReachSlot)> {
        let mut steps = Vec::new();
        for (ti, target) in self.targets.iter().enumerate() {
            if let Some(addr) = target.dns {
                steps.push((ti, ReachSlot::Dns(addr)));
            }
            if let Some(addr) = target.dot {
                steps.push((ti, ReachSlot::Dot(addr)));
            }
            if target.doh.is_some() {
                steps.push((ti, ReachSlot::Doh));
            }
        }
        steps
    }
}

fn note_interception<'a>(
    interception: &'a mut Option<InterceptionFinding>,
    client: &ClientInfo,
    ca_cn: &str,
) -> &'a mut InterceptionFinding {
    interception.get_or_insert_with(|| InterceptionFinding {
        client: client.ip,
        country: client.country.as_str().to_string(),
        asn: client.asn.0,
        ca_cn: ca_cn.to_string(),
        port_853: false,
        port_443: false,
    })
}

/// One client's reachability test as an event-driven state machine: one
/// `(target, transport)` probe per fired event, then an optional forensic
/// step. The step order, serials and per-client RNG stream match the old
/// sequential loop exactly, so findings are bit-identical.
struct ReachMachine {
    /// Dense per-shard heap address.
    index: u64,
    /// Global client index (merge key).
    ci: usize,
    client: ClientInfo,
    setup: Arc<ReachSetup>,
    steps: Arc<Vec<(usize, ReachSlot)>>,
    /// Next step to run.
    pos: usize,
    serial: u64,
    rng: SmallRng,
    /// Virtual time this client's own operations consumed, accumulated
    /// across steps — equals the old whole-client `Span` measurement.
    spent_us: u64,
    client_us: HistogramId,
    cells: Vec<(String, TransportKind, Outcome)>,
    interception: Option<InterceptionFinding>,
    forensics_due: bool,
    forensic: Option<ForensicFinding>,
    done: bool,
}

impl ReachMachine {
    #[allow(clippy::too_many_arguments)]
    fn new(
        index: u64,
        ci: usize,
        client: ClientInfo,
        setup: Arc<ReachSetup>,
        steps: Arc<Vec<(usize, ReachSlot)>>,
        client_us: HistogramId,
        rng_seed: u64,
        serial_base: u64,
    ) -> ReachMachine {
        ReachMachine {
            index,
            ci,
            client,
            setup,
            steps,
            pos: 0,
            serial: serial_base,
            rng: SmallRng::seed_from_u64(rng_seed),
            spent_us: 0,
            client_us,
            cells: Vec::new(),
            interception: None,
            forensics_due: false,
            forensic: None,
            done: false,
        }
    }

    fn start(&mut self, net: &mut Network) {
        net.schedule_after(
            SimDuration::ZERO,
            self.index,
            SchedEvent::Timer { token: 0 },
        );
    }

    /// Run one `(target, slot)` probe — one arm of the old per-target loop.
    fn probe_step(&mut self, net: &mut Network, ti: usize, slot: ReachSlot) {
        let setup = Arc::clone(&self.setup);
        let target = &setup.targets[ti];
        let apex = &setup.apex;
        self.serial += 1;
        let serial = self.serial;
        match slot {
            ReachSlot::Dns(dns_addr) => {
                let qname = format!("d{serial}.{apex}");
                let result = builder::query((serial % 65_536) as u16, &qname, RecordType::A)
                    .map_err(QueryError::Wire)
                    .and_then(|q| {
                        doe_protocols::do53::do53_tcp_query(
                            net,
                            self.client.ip,
                            dns_addr,
                            &q,
                            SimDuration::from_secs(30),
                        )
                    })
                    .map(|r| r.message);
                self.cells.push((
                    target.name.clone(),
                    TransportKind::Dns,
                    classify(result, setup.expected),
                ));
            }
            ReachSlot::Dot(dot_addr) => {
                let qname = format!("t{serial}.{apex}");
                let mut dot = DotClient::new(TlsClientConfig::opportunistic(
                    setup.store.clone(),
                    setup.now,
                ));
                let result = builder::query((serial % 65_536) as u16, &qname, RecordType::A)
                    .map_err(QueryError::Wire)
                    .and_then(|q| dot.query_once(net, self.client.ip, dot_addr, None, &q));
                // Interception: lookup succeeded, authentication failed.
                if let Ok(reply) = &result {
                    if let Some(Err(CertError::UntrustedCa { ca_cn })) = &reply.transport.verify {
                        note_interception(&mut self.interception, &self.client, ca_cn).port_853 =
                            true;
                    }
                }
                let outcome = classify(result.map(|r| r.message), setup.expected);
                if target.name == setup.forensics_on && outcome == Outcome::Failed {
                    self.forensics_due = true;
                }
                self.cells
                    .push((target.name.clone(), TransportKind::Dot, outcome));
            }
            ReachSlot::Doh => {
                let template = target
                    .doh
                    .as_ref()
                    .expect("slot exists only with a template");
                let qname = format!("h{serial}.{apex}");
                let mut doh = DohClient::new(
                    TlsClientConfig::strict(setup.store.clone(), setup.now),
                    template.clone(),
                    DohMethod::Get,
                    Bootstrap::Do53 {
                        resolver: setup.bootstrap,
                    },
                );
                let result = builder::query((serial % 65_536) as u16, &qname, RecordType::A)
                    .map_err(QueryError::Wire)
                    .and_then(|q| doh.query_once(net, self.client.ip, &q));
                if let Err(QueryError::Tls(TlsError::Cert(CertError::UntrustedCa { ca_cn }))) =
                    &result
                {
                    note_interception(&mut self.interception, &self.client, ca_cn).port_443 = true;
                }
                self.cells.push((
                    target.name.clone(),
                    TransportKind::Doh,
                    classify(result.map(|r| r.message), setup.expected),
                ));
            }
        }
    }

    /// Failure forensics (Table 5), run as the machine's final step.
    fn forensic_step(&mut self, net: &mut Network) {
        let mut open_ports = Vec::new();
        for &port in &FORENSIC_PORTS {
            let (outcome, _) = net.syn_probe(self.client.ip, anchors::CLOUDFLARE_PRIMARY, port);
            if outcome == ProbeOutcome::Open {
                open_ports.push(port);
            }
        }
        let (page_title, coinminer) = fetch_title(net, self.client.ip, anchors::CLOUDFLARE_PRIMARY);
        self.forensic = Some(ForensicFinding {
            client: self.client.ip,
            asn: self.client.asn.0,
            open_ports,
            page_title,
            coinminer,
        });
    }

    fn into_findings(self) -> (usize, ClientFindings) {
        (
            self.ci,
            ClientFindings {
                cells: self.cells,
                interception: self.interception,
                forensic: self.forensic,
            },
        )
    }
}

impl EventMachine for ReachMachine {
    fn on_event(&mut self, net: &mut Network, _fired: Fired) {
        if self.done {
            return;
        }
        net.swap_rng(&mut self.rng);
        let before = net.charged();
        if let Some(&(ti, slot)) = self.steps.clone().get(self.pos) {
            self.pos += 1;
            self.probe_step(net, ti, slot);
            let consumed = net.charged() - before;
            self.spent_us += consumed.as_micros();
            net.swap_rng(&mut self.rng);
            let more_probes = self.pos < self.steps.len();
            if more_probes || self.forensics_due {
                let event = if more_probes {
                    SchedEvent::Deliver {
                        token: self.pos as u32,
                    }
                } else {
                    SchedEvent::Timer { token: 1 }
                };
                net.schedule_after(consumed, self.index, event);
                return;
            }
        } else {
            self.forensic_step(net);
            let consumed = net.charged() - before;
            self.spent_us += consumed.as_micros();
            net.swap_rng(&mut self.rng);
        }
        self.done = true;
        net.metrics_mut().observe(self.client_us, self.spent_us);
    }
}

/// Run the reachability test for `clients` against the standard targets.
///
/// `forensics_on` names the resolver whose DoT failures trigger the
/// port-probe/webpage investigation (the paper used Cloudflare because of
/// its known 1.1.1.1 conflicts and platform rate limits).
///
/// Equivalent to [`reachability_test_sharded`] with one shard.
pub fn reachability_test(
    world: &mut World,
    clients: &[ClientInfo],
    forensics_on: &str,
) -> ReachabilityReport {
    reachability_test_sharded(world, clients, forensics_on, 1)
}

/// Run the reachability test with clients distributed over `shards`
/// worker threads (client `i` → shard `i mod shards`).
///
/// Each client's randomness and query serials are keyed on its index, so
/// the report is identical for every shard count. Worker clocks, counters
/// and logs are absorbed into the world's network after the join.
pub fn reachability_test_sharded(
    world: &mut World,
    clients: &[ClientInfo],
    forensics_on: &str,
    shards: usize,
) -> ReachabilityReport {
    let setup = Arc::new(ReachSetup {
        targets: standard_targets(world),
        expected: world.probe.expected_a,
        apex: world
            .probe
            .apex
            .to_string()
            .trim_end_matches('.')
            .to_string(),
        store: world.trust_store.clone(),
        now: world.epoch(),
        bootstrap: world.bootstrap_resolver,
        forensics_on: forensics_on.to_string(),
    });
    let shards = shards.max(1);
    let steps = Arc::new(setup.steps());
    let spc = setup.serials_per_client();
    // Disjoint serial block per invocation: the global and censored pools
    // restart `ci` at 0, so without the block offset they would replay
    // each other's query names and turn shared-resolver cache hits into a
    // function of eviction order (see `World::take_probe_serials`).
    let serial_base = world.take_probe_serials(clients.len() as u64 * spc);
    let salt = mix_seed(world.net.base_seed(), 0x7265_6163_6861_6269); // "reachabi"

    let run_shard = |worker: &mut Network, shard: usize| -> Vec<(usize, ClientFindings)> {
        let client_us = worker
            .metrics_mut()
            .histogram("stage.reach.client_us", Labels::empty());
        let mut machines: Vec<ReachMachine> = (shard..clients.len())
            .step_by(shards)
            .enumerate()
            .map(|(mi, ci)| {
                ReachMachine::new(
                    mi as u64,
                    ci,
                    clients[ci].clone(),
                    Arc::clone(&setup),
                    Arc::clone(&steps),
                    client_us,
                    mix_seed(salt, ci as u64),
                    serial_base + ci as u64 * spc,
                )
            })
            .collect();
        for m in machines.iter_mut() {
            m.start(worker);
        }
        run_machines(worker, &mut machines);
        machines
            .into_iter()
            .map(ReachMachine::into_findings)
            .collect()
    };

    let mut outputs: Vec<(Network, Vec<(usize, ClientFindings)>)> = if shards == 1 {
        let mut worker = world.net.fork_shard(0);
        let found = run_shard(&mut worker, 0);
        vec![(worker, found)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = world.net.fork_shard(s as u64);
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let found = run_shard(&mut worker, s);
                        (worker, found)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reachability shard panicked"))
                .collect()
        })
        .expect("reachability scope panicked")
    };

    let mut tagged: Vec<(usize, ClientFindings)> = Vec::with_capacity(clients.len());
    for (worker, found) in outputs.drain(..) {
        world.net.absorb_shard(worker);
        tagged.extend(found);
    }
    tagged.sort_by_key(|&(ci, _)| ci);

    let mut matrix: BTreeMap<String, BTreeMap<TransportKind, Counts>> = BTreeMap::new();
    let mut interceptions: BTreeMap<Ipv4Addr, InterceptionFinding> = BTreeMap::new();
    let mut forensics = Vec::new();
    for (_, findings) in tagged {
        for (name, transport, outcome) in findings.cells {
            let outcome_label = match outcome {
                Outcome::Correct => "correct",
                Outcome::Incorrect => "incorrect",
                Outcome::Failed => "failed",
            };
            world.net.metrics_mut().count(
                "stage.reach.result",
                Labels::one("resolver", &name)
                    .with("transport", &transport.to_string())
                    .with("outcome", outcome_label),
                1,
            );
            matrix
                .entry(name)
                .or_default()
                .entry(transport)
                .or_default()
                .add(outcome);
        }
        if let Some(finding) = findings.interception {
            world
                .net
                .metrics_mut()
                .count("stage.reach.interceptions", Labels::empty(), 1);
            interceptions.entry(finding.client).or_insert(finding);
        }
        if let Some(finding) = findings.forensic {
            world
                .net
                .metrics_mut()
                .count("stage.reach.forensics", Labels::empty(), 1);
            forensics.push(finding);
        }
    }

    ReachabilityReport {
        matrix,
        clients_tested: clients.len(),
        interceptions: interceptions.into_values().collect(),
        forensics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{Affliction, WorldConfig};

    #[test]
    fn reachability_recovers_paper_shape_at_test_scale() {
        let mut world = worldgen::World::build(WorldConfig::test_scale(23));
        let clients = world.proxyrack.clients.clone();
        let report = reachability_test(&mut world, &clients, "Cloudflare");
        let n = report.clients_tested as f64;

        // Finding 2.1 shapes: Cloudflare clear-text fails for ~16% of
        // clients, DoT for ~1%, DoH for well under 1%.
        let cf_dns = report.cell("Cloudflare", TransportKind::Dns);
        let cf_dot = report.cell("Cloudflare", TransportKind::Dot);
        let cf_doh = report.cell("Cloudflare", TransportKind::Doh);
        let dns_fail = cf_dns.failed as f64 / n;
        let dot_fail = cf_dot.failed as f64 / n;
        let doh_fail = cf_doh.failed as f64 / n;
        assert!((0.08..0.25).contains(&dns_fail), "CF DNS fail {dns_fail}");
        assert!(
            dot_fail < dns_fail / 4.0,
            "CF DoT fail {dot_fail} vs DNS {dns_fail}"
        );
        assert!(doh_fail < 0.02, "CF DoH fail {doh_fail}");
        assert!(dot_fail > doh_fail, "conflicts break DoT more than DoH");

        // Quad9 DoH: double-digit Incorrect rate (Finding 2.4).
        let q9_doh = report.cell("Quad9", TransportKind::Doh);
        let q9_incorrect = q9_doh.incorrect as f64 / n;
        assert!(
            (0.05..0.25).contains(&q9_incorrect),
            "Quad9 DoH incorrect {q9_incorrect}"
        );
        // Quad9 clear-text is nearly perfect (no prominent-address filters).
        let q9_dns = report.cell("Quad9", TransportKind::Dns);
        assert!(q9_dns.failed as f64 / n < 0.02);

        // Self-built resolver: >99% everywhere.
        for t in [TransportKind::Dns, TransportKind::Dot, TransportKind::Doh] {
            let c = report.cell("Self-built", t);
            assert!(c.correct as f64 / n > 0.97, "self-built {t}: {c:?}");
        }

        // Google DoT not tested (not announced).
        assert!(report
            .matrix
            .get("Google")
            .unwrap()
            .get(&TransportKind::Dot)
            .is_none());

        // Interceptions: every planted interceptor with 853 coverage is
        // discovered via opportunistic DoT, with its CA name.
        let planted_853 = clients
            .iter()
            .filter(|c| {
                matches!(
                    &c.affliction,
                    Affliction::Intercepted {
                        intercepts_853: true,
                        ..
                    }
                )
            })
            .count();
        let found_853 = report.interceptions.iter().filter(|i| i.port_853).count();
        assert_eq!(found_853, planted_853);
        assert!(report
            .interceptions
            .iter()
            .any(|i| i.ca_cn == "SonicWall Firewall DPI-SSL"));
        // 443-only devices appear with port_443 but not port_853.
        assert!(report
            .interceptions
            .iter()
            .any(|i| i.port_443 && !i.port_853));

        // Forensics: port histogram shows the device surface; some pages
        // identify routers; coin-mining detected on hijacked MikroTiks.
        let (hist, none) = report.port_histogram();
        assert!(none > 0, "some conflicted paths are pure blackholes");
        assert!(hist.get(&80).copied().unwrap_or(0) > 0, "{hist:?}");
        assert!(report.forensics.iter().any(|f| f
            .page_title
            .as_deref()
            .is_some_and(|t| t.contains("RouterOS"))));
        assert!(report.forensics.iter().any(|f| f.coinminer));
    }

    #[test]
    fn zhima_pool_shows_censorship() {
        let mut world = worldgen::World::build(WorldConfig::test_scale(29));
        let clients = world.zhima.clients.clone();
        // Subsample for speed: every 4th client.
        let sample: Vec<_> = clients.iter().step_by(4).cloned().collect();
        let report = reachability_test(&mut world, &sample, "Cloudflare");
        let n = report.clients_tested as f64;

        // Google DoH is ~fully blocked from CN (Finding 2.2).
        let g_doh = report.cell("Google", TransportKind::Doh);
        assert!(
            g_doh.failed as f64 / n > 0.99,
            "Google DoH fail rate {}",
            g_doh.failed as f64 / n
        );
        // Cloudflare DNS *and* DoT fail at ~15% (both ports filtered).
        let cf_dns_fail = report.cell("Cloudflare", TransportKind::Dns).failed as f64 / n;
        let cf_dot_fail = report.cell("Cloudflare", TransportKind::Dot).failed as f64 / n;
        assert!(
            (0.08..0.25).contains(&cf_dns_fail),
            "CN CF DNS {cf_dns_fail}"
        );
        assert!(
            (cf_dns_fail - cf_dot_fail).abs() < 0.04,
            "CN: DNS {cf_dns_fail} ≈ DoT {cf_dot_fail}"
        );
        // Cloudflare DoH still works from CN.
        let cf_doh_fail = report.cell("Cloudflare", TransportKind::Doh).failed as f64 / n;
        assert!(cf_doh_fail < 0.05, "CN CF DoH {cf_doh_fail}");
    }

    #[test]
    fn sequential_invocations_never_reuse_probe_names() {
        // The study runs the reachability test twice on one world (the
        // global pool, then the censored pool). Both restart the client
        // index at 0, so without disjoint serial blocks the second pool
        // replays the first pool's query names — and whether a replayed
        // name hits a shared resolver cache depends on which entries FIFO
        // eviction happened to keep, an order that varies with worker
        // interleaving. The ground-truth authoritative log must therefore
        // never see the same probe name from two invocations.
        let mut world = worldgen::World::build(WorldConfig::test_scale(31));
        let pool_a: Vec<_> = world.proxyrack.clients.iter().take(6).cloned().collect();
        let pool_b: Vec<_> = world.zhima.clients.iter().take(6).cloned().collect();

        reachability_test(&mut world, &pool_a, "Cloudflare");
        let (first_len, first): (usize, std::collections::BTreeSet<String>) = {
            let log = world.probe.auth_log.lock();
            let names = log.iter().map(|e| e.qname.to_string()).collect();
            (log.len(), names)
        };
        assert!(!first.is_empty(), "first pool reached the authoritative");

        reachability_test(&mut world, &pool_b, "Cloudflare");
        let log = world.probe.auth_log.lock();
        assert!(
            log.len() > first_len,
            "second pool reached the authoritative"
        );
        let replayed = log[first_len..]
            .iter()
            .filter(|e| first.contains(&e.qname.to_string()))
            .count();
        assert_eq!(
            replayed, 0,
            "second invocation replayed {replayed} probe names from the first"
        );
    }
}
