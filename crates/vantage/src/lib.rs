//! # doe-vantage — the client-side usability study (Section 4)
//!
//! Reproduces the paper's vantage-point methodology:
//!
//! * [`socks`] — a genuine SOCKS5 implementation: the relay architecture
//!   of the residential proxy networks (Figure 5), with greeting/CONNECT
//!   codecs and a super-proxy relay service that forwards through rotating
//!   exit nodes,
//! * [`pool`] — vantage-point session management: limited lifetimes,
//!   uptime checks before reuse, and the tunnel latency composition
//!   (Figure 8: the measurement client observes `T_R = T'_R + tunnel`;
//!   because the tunnel term is protocol-independent, comparing medians of
//!   `T_R` across protocols recovers the protocol difference — the paper's
//!   key methodological trick),
//! * [`reachability`] — the Figure 7 workflow: clear-text DNS (over TCP,
//!   the platforms' constraint), Opportunistic DoT and Strict DoH against
//!   Cloudflare / Google / Quad9 / the self-built resolver, with
//!   Correct / Incorrect / Failed classification (Table 4), port-probe and
//!   webpage forensics for failing clients (Table 5), and interception
//!   detection (Table 6),
//! * [`performance`] — §4.3: per-client reused-connection latency medians
//!   (Figures 9 and 10) and the fresh-connection comparison from four
//!   controlled vantages (Table 7).

pub mod performance;
pub mod pool;
pub mod reachability;
pub mod socks;

pub use performance::{
    fresh_connection_test, performance_test, performance_test_sharded, CountryPerformance,
    FreshConnectionRow, PerfObservation, PerformanceReport,
};
pub use pool::{Tunnel, VantagePool};
pub use reachability::{
    reachability_test, reachability_test_sharded, ForensicFinding, InterceptionFinding, Outcome,
    ReachabilityReport, ResolverTargets, TransportKind,
};
pub use socks::{Socks5Client, Socks5RelayService};
