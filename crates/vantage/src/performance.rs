//! The performance study (§4.3): relative latency of encrypted vs
//! clear-text DNS, with and without connection reuse.

use crate::pool::Tunnel;
use dnswire::{builder, RecordType};
use doe_protocols::do53::Do53TcpConn;
use doe_protocols::dot::{DotClient, DotSession};
use doe_protocols::{Bootstrap, DohClient, DohMethod, DohSession};
use httpsim::UriTemplate;
use netsim::sched::{run_machines, EventMachine, Fired, SchedEvent};
use netsim::telemetry::{HistogramId, Labels, Registry};
use netsim::time::{mean, median, overhead_ms};
use netsim::{mix_seed, HostMeta, Network, SimDuration};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{DateStamp, TlsClientConfig, TrustStore};
use worldgen::{ClientInfo, World};

/// One client's medians of observed `T_R` per protocol (ms).
#[derive(Debug, Clone)]
pub struct PerfObservation {
    /// The vantage point.
    pub client: Ipv4Addr,
    /// Client country.
    pub country: String,
    /// Median observed clear-text DNS/TCP time.
    pub dns_ms: f64,
    /// Median observed DoT time.
    pub dot_ms: f64,
    /// Median observed DoH time.
    pub doh_ms: f64,
}

impl PerfObservation {
    /// DoT overhead over clear text (signed, ms).
    pub fn dot_overhead(&self) -> f64 {
        self.dot_ms - self.dns_ms
    }

    /// DoH overhead over clear text (signed, ms).
    pub fn doh_overhead(&self) -> f64 {
        self.doh_ms - self.dns_ms
    }
}

/// Per-country aggregation (Figure 9's bars).
#[derive(Debug, Clone)]
pub struct CountryPerformance {
    /// Country code.
    pub country: String,
    /// Clients contributing.
    pub clients: usize,
    /// Mean DoT overhead, ms.
    pub dot_mean_ms: f64,
    /// Median DoT overhead, ms.
    pub dot_median_ms: f64,
    /// Mean DoH overhead, ms.
    pub doh_mean_ms: f64,
    /// Median DoH overhead, ms.
    pub doh_median_ms: f64,
}

/// The reused-connection study's output.
#[derive(Debug, Clone)]
pub struct PerformanceReport {
    /// Per-client observations (Figure 10's points).
    pub observations: Vec<PerfObservation>,
    /// Per-country aggregates, sorted by client count (Figure 9).
    pub per_country: Vec<CountryPerformance>,
    /// Global mean/median DoT overhead, ms.
    pub global_dot: (f64, f64),
    /// Global mean/median DoH overhead, ms.
    pub global_doh: (f64, f64),
    /// Clients attempted but skipped (node rotated away / path broken).
    pub skipped: usize,
}

fn median_ms(samples: &mut [SimDuration]) -> f64 {
    median(samples).as_millis_f64()
}

/// Per-shard handles for the `stage.perf.query_us{proto=...}` latency
/// histograms — one series per protocol, registered once per worker and
/// copied into every machine on that shard.
#[derive(Clone, Copy)]
struct PerfMetricIds {
    dns: HistogramId,
    dot: HistogramId,
    doh: HistogramId,
}

impl PerfMetricIds {
    fn register(reg: &mut Registry) -> PerfMetricIds {
        PerfMetricIds {
            dns: reg.histogram("stage.perf.query_us", Labels::one("proto", "dns")),
            dot: reg.histogram("stage.perf.query_us", Labels::one("proto", "dot")),
            doh: reg.histogram("stage.perf.query_us", Labels::one("proto", "doh")),
        }
    }
}

/// Immutable per-run parameters shared by every client measurement.
struct PerfSetup {
    resolver: Ipv4Addr,
    doh_template: UriTemplate,
    store: TrustStore,
    now: DateStamp,
    apex: String,
    bootstrap: Ipv4Addr,
    tunnel: Tunnel,
    queries: u32,
}

/// Where a performance machine is in its per-protocol measurement
/// sequence. Each variant is one bounded step per fired event; the
/// op order (connect, N queries, close, next protocol) is exactly the
/// old per-client loop's, so a client's draw stream — and therefore the
/// report — is bit-identical to the sequential implementation.
enum PerfPhase {
    ConnectDns,
    QueryDns,
    ConnectDot,
    QueryDot,
    ConnectDoh,
    QueryDoh,
    Done,
}

enum PerfSession {
    None,
    Tcp(Do53TcpConn),
    Dot(DotSession),
    Doh(DohSession),
}

/// One client's measurement as an event-driven state machine. Owns its
/// RNG stream (`mix_seed(salt, ci)`, the same stream the per-client loop
/// used) and swaps it into the network around every step.
struct PerfMachine {
    /// Dense per-shard heap address.
    index: u64,
    /// Global client index (merge key).
    ci: usize,
    client: ClientInfo,
    setup: Arc<PerfSetup>,
    ids: PerfMetricIds,
    rng: SmallRng,
    serial: u64,
    qdone: u32,
    phase: PerfPhase,
    session: PerfSession,
    /// Kept alive through the DoT query phase, mirroring the loop's
    /// client scope (session-ticket cache lifetime).
    dot_client: Option<DotClient>,
    doh_client: Option<DohClient>,
    dns_samples: Vec<SimDuration>,
    dot_samples: Vec<SimDuration>,
    doh_samples: Vec<SimDuration>,
    /// `Some(None)` = path broke, client skipped.
    result: Option<Option<PerfObservation>>,
}

impl PerfMachine {
    fn new(
        index: u64,
        ci: usize,
        client: ClientInfo,
        setup: Arc<PerfSetup>,
        ids: PerfMetricIds,
        rng_seed: u64,
    ) -> PerfMachine {
        let queries = setup.queries as usize;
        PerfMachine {
            index,
            ci,
            client,
            setup,
            ids,
            rng: SmallRng::seed_from_u64(rng_seed),
            serial: 0,
            qdone: 0,
            phase: PerfPhase::ConnectDns,
            session: PerfSession::None,
            dot_client: None,
            doh_client: None,
            dns_samples: Vec::with_capacity(queries),
            dot_samples: Vec::with_capacity(queries),
            doh_samples: Vec::with_capacity(queries),
            result: None,
        }
    }

    /// Schedule the machine's first step.
    fn start(&mut self, net: &mut Network) {
        self.serial = self.ci as u64 * 3 * self.setup.queries as u64;
        net.schedule_after(
            SimDuration::ZERO,
            self.index,
            SchedEvent::Timer { token: 0 },
        );
    }

    fn next_query(&mut self) -> dnswire::Message {
        self.serial += 1;
        let serial = self.serial;
        builder::query(
            (serial % 65_536) as u16,
            &format!("p{serial}.{}", self.setup.apex),
            RecordType::A,
        )
        .expect("static name shape")
    }

    /// The path broke mid-sequence: the loop's `.ok()?` skip.
    fn skip(&mut self) {
        self.phase = PerfPhase::Done;
        self.result = Some(None);
    }

    /// Execute one step. Returns `false` once the machine is done.
    fn step(&mut self, net: &mut Network) -> bool {
        let setup = Arc::clone(&self.setup);
        match self.phase {
            PerfPhase::ConnectDns => {
                match Do53TcpConn::connect(
                    net,
                    self.client.ip,
                    setup.resolver,
                    SimDuration::from_secs(30),
                ) {
                    Ok(mut tcp) => {
                        tcp.take_elapsed(); // setup excluded: reuse is the steady state
                        self.session = PerfSession::Tcp(tcp);
                        self.phase = PerfPhase::QueryDns;
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::QueryDns => {
                let q = self.next_query();
                let PerfSession::Tcp(tcp) = &mut self.session else {
                    unreachable!("QueryDns holds a TCP session");
                };
                match tcp.query(net, &q) {
                    Ok(reply) => {
                        let sample =
                            reply.latency + setup.tunnel.sample_overhead(net, self.client.ip);
                        net.metrics_mut().observe(self.ids.dns, sample.as_micros());
                        self.dns_samples.push(sample);
                        self.qdone += 1;
                        if self.qdone == setup.queries {
                            self.qdone = 0;
                            self.phase = PerfPhase::ConnectDot;
                        }
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::ConnectDot => {
                if let PerfSession::Tcp(tcp) =
                    std::mem::replace(&mut self.session, PerfSession::None)
                {
                    tcp.close(net);
                }
                let mut dot = DotClient::new(TlsClientConfig::opportunistic(
                    setup.store.clone(),
                    setup.now,
                ));
                match dot.session(net, self.client.ip, setup.resolver, None) {
                    Ok(mut session) => {
                        session.take_elapsed();
                        self.session = PerfSession::Dot(session);
                        self.dot_client = Some(dot);
                        self.phase = PerfPhase::QueryDot;
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::QueryDot => {
                let q = self.next_query();
                let PerfSession::Dot(session) = &mut self.session else {
                    unreachable!("QueryDot holds a DoT session");
                };
                match session.query(net, &q) {
                    Ok(reply) => {
                        let sample =
                            reply.latency + setup.tunnel.sample_overhead(net, self.client.ip);
                        net.metrics_mut().observe(self.ids.dot, sample.as_micros());
                        self.dot_samples.push(sample);
                        self.qdone += 1;
                        if self.qdone == setup.queries {
                            self.qdone = 0;
                            self.phase = PerfPhase::ConnectDoh;
                        }
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::ConnectDoh => {
                if let PerfSession::Dot(session) =
                    std::mem::replace(&mut self.session, PerfSession::None)
                {
                    session.close(net);
                }
                self.dot_client = None;
                let mut doh = DohClient::new(
                    TlsClientConfig::strict(setup.store.clone(), setup.now),
                    setup.doh_template.clone(),
                    DohMethod::Post,
                    Bootstrap::Do53 {
                        resolver: setup.bootstrap,
                    },
                );
                match doh.session(net, self.client.ip) {
                    Ok(mut session) => {
                        session.take_elapsed();
                        self.session = PerfSession::Doh(session);
                        self.doh_client = Some(doh);
                        self.phase = PerfPhase::QueryDoh;
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::QueryDoh => {
                let q = self.next_query();
                let PerfSession::Doh(session) = &mut self.session else {
                    unreachable!("QueryDoh holds a DoH session");
                };
                match session.query(net, &q) {
                    Ok(reply) => {
                        let sample =
                            reply.latency + setup.tunnel.sample_overhead(net, self.client.ip);
                        net.metrics_mut().observe(self.ids.doh, sample.as_micros());
                        self.doh_samples.push(sample);
                        self.qdone += 1;
                        if self.qdone == setup.queries {
                            if let PerfSession::Doh(session) =
                                std::mem::replace(&mut self.session, PerfSession::None)
                            {
                                session.close(net);
                            }
                            self.doh_client = None;
                            self.phase = PerfPhase::Done;
                            self.result = Some(Some(PerfObservation {
                                client: self.client.ip,
                                country: self.client.country.as_str().to_string(),
                                dns_ms: median_ms(&mut self.dns_samples),
                                dot_ms: median_ms(&mut self.dot_samples),
                                doh_ms: median_ms(&mut self.doh_samples),
                            }));
                        }
                    }
                    Err(_) => self.skip(),
                }
            }
            PerfPhase::Done => {}
        }
        !matches!(self.phase, PerfPhase::Done)
    }
}

impl EventMachine for PerfMachine {
    fn on_event(&mut self, net: &mut Network, _fired: Fired) {
        if matches!(self.phase, PerfPhase::Done) {
            return;
        }
        // The machine's own stream stands in for the shard RNG for the
        // whole step, so the client's draw sequence is continuous across
        // steps — identical to the reseed-once sequential loop.
        net.swap_rng(&mut self.rng);
        let before = net.charged();
        let live = self.step(net);
        let consumed = net.charged() - before;
        net.swap_rng(&mut self.rng);
        if live {
            // Query steps model response deliveries; connects are timers.
            let event = match self.phase {
                PerfPhase::QueryDns | PerfPhase::QueryDot | PerfPhase::QueryDoh => {
                    SchedEvent::Deliver { token: self.qdone }
                }
                _ => SchedEvent::Timer { token: 0 },
            };
            net.schedule_after(consumed, self.index, event);
        }
    }
}

/// Run the reused-connection performance test against Cloudflare (the
/// paper's Figure 9/10 subject): `queries` exchanges per protocol per
/// client, medians of observed `T_R` (tunnel + on-path time).
///
/// Equivalent to [`performance_test_sharded`] with one shard.
pub fn performance_test(
    world: &mut World,
    clients: &[ClientInfo],
    tunnel: Tunnel,
    queries: u32,
) -> PerformanceReport {
    performance_test_sharded(world, clients, tunnel, queries, 1)
}

/// One shard's output: per-client observations tagged with the global
/// client index the parent merges on (`None` = client skipped).
type PerfShardOut = Vec<(usize, Option<PerfObservation>)>;

/// Run the performance test with clients distributed over `shards` worker
/// threads (client `i` → shard `i mod shards`). Per-client randomness and
/// serials are keyed on the client index, so the report is identical for
/// every shard count.
pub fn performance_test_sharded(
    world: &mut World,
    clients: &[ClientInfo],
    tunnel: Tunnel,
    queries: u32,
    shards: usize,
) -> PerformanceReport {
    let setup = Arc::new(PerfSetup {
        resolver: worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
        doh_template: world
            .deployment
            .doh_services
            .iter()
            .find(|s| s.hostname == "cloudflare-dns.com")
            .expect("cloudflare DoH deployed")
            .template
            .clone(),
        store: world.trust_store.clone(),
        now: world.epoch(),
        apex: world
            .probe
            .apex
            .to_string()
            .trim_end_matches('.')
            .to_string(),
        bootstrap: world.bootstrap_resolver,
        tunnel,
        queries,
    });
    let shards = shards.max(1);
    let salt = mix_seed(world.net.base_seed(), 0x7065_7266_7465_7374); // "perftest"

    let run_shard = |worker: &mut Network, shard: usize| -> PerfShardOut {
        let ids = PerfMetricIds::register(worker.metrics_mut());
        // Dense machine index = position in this shard's client slice;
        // the global index rides inside each machine for the merge key.
        let mut machines: Vec<PerfMachine> = (shard..clients.len())
            .step_by(shards)
            .enumerate()
            .map(|(mi, ci)| {
                PerfMachine::new(
                    mi as u64,
                    ci,
                    clients[ci].clone(),
                    Arc::clone(&setup),
                    ids,
                    mix_seed(salt, ci as u64),
                )
            })
            .collect();
        for m in machines.iter_mut() {
            m.start(worker);
        }
        run_machines(worker, &mut machines);
        machines
            .into_iter()
            .map(|m| (m.ci, m.result.unwrap_or(None)))
            .collect()
    };

    let mut outputs: Vec<(Network, PerfShardOut)> = if shards == 1 {
        let mut worker = world.net.fork_shard(0);
        let found = run_shard(&mut worker, 0);
        vec![(worker, found)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = world.net.fork_shard(s as u64);
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let found = run_shard(&mut worker, s);
                        (worker, found)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("performance shard panicked"))
                .collect()
        })
        .expect("performance scope panicked")
    };

    let mut tagged: Vec<(usize, Option<PerfObservation>)> = Vec::with_capacity(clients.len());
    for (worker, found) in outputs.drain(..) {
        world.net.absorb_shard(worker);
        tagged.extend(found);
    }
    tagged.sort_by_key(|&(ci, _)| ci);
    let mut observations = Vec::new();
    let mut skipped = 0usize;
    for (_, obs) in tagged {
        match obs {
            Some(o) => observations.push(o),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        world
            .net
            .metrics_mut()
            .count("stage.perf.skipped", Labels::empty(), skipped as u64);
    }

    // --- Aggregation ------------------------------------------------------
    let mut by_country: BTreeMap<String, Vec<&PerfObservation>> = BTreeMap::new();
    for obs in &observations {
        by_country.entry(obs.country.clone()).or_default().push(obs);
    }
    let mut per_country: Vec<CountryPerformance> = by_country
        .into_iter()
        .map(|(country, group)| {
            let mut dot: Vec<f64> = group.iter().map(|o| o.dot_overhead()).collect();
            let mut doh: Vec<f64> = group.iter().map(|o| o.doh_overhead()).collect();
            dot.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            doh.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let med = |v: &[f64]| v[v.len() / 2];
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            CountryPerformance {
                country,
                clients: group.len(),
                dot_mean_ms: avg(&dot),
                dot_median_ms: med(&dot),
                doh_mean_ms: avg(&doh),
                doh_median_ms: med(&doh),
            }
        })
        .collect();
    per_country.sort_by_key(|c| std::cmp::Reverse(c.clients));

    let mut dot_all: Vec<SimDuration> = Vec::new();
    let mut dns_all: Vec<SimDuration> = Vec::new();
    let mut doh_all: Vec<SimDuration> = Vec::new();
    for o in &observations {
        dns_all.push(SimDuration::from_millis_f64(o.dns_ms));
        dot_all.push(SimDuration::from_millis_f64(o.dot_ms));
        doh_all.push(SimDuration::from_millis_f64(o.doh_ms));
    }
    let global_dot = (
        mean(&dot_all).as_millis_f64() - mean(&dns_all).as_millis_f64(),
        overhead_ms(median(&mut dot_all.clone()), median(&mut dns_all.clone())),
    );
    let global_doh = (
        mean(&doh_all).as_millis_f64() - mean(&dns_all).as_millis_f64(),
        overhead_ms(median(&mut doh_all.clone()), median(&mut dns_all.clone())),
    );

    PerformanceReport {
        observations,
        per_country,
        global_dot,
        global_doh,
        skipped,
    }
}

/// One row of Table 7: fresh-connection medians from a controlled vantage.
#[derive(Debug, Clone)]
pub struct FreshConnectionRow {
    /// Vantage label (country code).
    pub vantage: String,
    /// Median clear-text DNS/TCP time, seconds.
    pub dns_s: f64,
    /// Median DoT time, seconds.
    pub dot_s: f64,
    /// Median DoH time, seconds.
    pub doh_s: f64,
}

impl FreshConnectionRow {
    /// DoT overhead, ms.
    pub fn dot_overhead_ms(&self) -> f64 {
        (self.dot_s - self.dns_s) * 1000.0
    }

    /// DoH overhead, ms.
    pub fn doh_overhead_ms(&self) -> f64 {
        (self.doh_s - self.dns_s) * 1000.0
    }
}

/// Table 7: from four controlled vantages (US / NL / AU / HK), measure
/// `iterations` queries per protocol against the self-built resolver with
/// **no** connection or session reuse.
pub fn fresh_connection_test(world: &mut World, iterations: u32) -> Vec<FreshConnectionRow> {
    let vantages: [(&str, Ipv4Addr); 4] = [
        ("US", Ipv4Addr::new(198, 51, 100, 20)),
        ("NL", Ipv4Addr::new(198, 51, 100, 21)),
        ("AU", Ipv4Addr::new(198, 51, 100, 22)),
        ("HK", Ipv4Addr::new(198, 51, 100, 23)),
    ];
    for (cc, ip) in &vantages {
        world.net.add_host(
            HostMeta::new(*ip)
                .country(cc)
                .asn(65_000)
                .label("controlled vantage"),
        );
    }
    let resolver = world.self_built.addr;
    let auth_name = world.self_built.auth_name.clone();
    let doh_template = world.self_built.doh_template.clone();
    let store = world.trust_store.clone();
    let now = world.epoch();
    let apex = world.probe.apex.to_string();
    let apex = apex.trim_end_matches('.').to_string();
    let mut serial = 0u64;

    let mut rows = Vec::new();
    for (cc, src) in vantages {
        let mut dns = Vec::new();
        let mut dot_t = Vec::new();
        let mut doh_t = Vec::new();
        for _ in 0..iterations {
            serial += 1;
            let q = builder::query(
                (serial % 65_536) as u16,
                &format!("f{serial}.{apex}"),
                RecordType::A,
            )
            .expect("static name shape");
            // Fresh TCP.
            if let Ok(reply) = doe_protocols::do53::do53_tcp_query(
                &mut world.net,
                src,
                resolver,
                &q,
                SimDuration::from_secs(30),
            ) {
                dns.push(reply.latency);
            }
            // Fresh DoT (new client each time: no ticket, no pool).
            let mut dot = DotClient::new(TlsClientConfig::strict(store.clone(), now));
            if let Ok(reply) = dot.query_once(&mut world.net, src, resolver, Some(&auth_name), &q) {
                dot_t.push(reply.latency);
            }
            // Fresh DoH.
            let mut doh = DohClient::new(
                TlsClientConfig::strict(store.clone(), now),
                doh_template.clone(),
                DohMethod::Post,
                Bootstrap::Static(resolver),
            );
            if let Ok(reply) = doh.query_once(&mut world.net, src, &q) {
                doh_t.push(reply.latency);
            }
        }
        rows.push(FreshConnectionRow {
            vantage: cc.to_string(),
            dns_s: median(&mut dns).as_secs_f64(),
            dot_s: median(&mut dot_t).as_secs_f64(),
            doh_s: median(&mut doh_t).as_secs_f64(),
        });
    }
    rows
}

/// Convenience: tunnel endpoints used by the study (measurement client and
/// super proxy in a US datacenter).
pub fn standard_tunnel(net: &mut Network) -> Tunnel {
    let mc = Ipv4Addr::new(198, 51, 100, 40);
    let sp = Ipv4Addr::new(198, 51, 100, 41);
    if !net.has_host(mc) {
        net.add_host(
            HostMeta::new(mc)
                .country("US")
                .asn(65_001)
                .label("measurement client"),
        );
    }
    if !net.has_host(sp) {
        net.add_host(
            HostMeta::new(sp)
                .country("US")
                .asn(65_001)
                .label("super proxy"),
        );
    }
    Tunnel {
        measurement_client: mc,
        super_proxy: sp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{Affliction, WorldConfig};

    #[test]
    fn reused_connection_overheads_are_small() {
        let mut world = worldgen::World::build(WorldConfig::test_scale(31));
        let tunnel = standard_tunnel(&mut world.net);
        // Clean US/DE clients only, for a crisp expectation.
        let clients: Vec<_> = world
            .proxyrack
            .clients
            .iter()
            .filter(|c| {
                c.affliction == Affliction::None
                    && ["US", "DE", "GB", "FR"].contains(&c.country.as_str())
            })
            .take(30)
            .cloned()
            .collect();
        assert!(clients.len() >= 10);
        let report = performance_test(&mut world, &clients, tunnel, 20);
        assert!(report.observations.len() >= 10);
        // Finding 3.1: single-digit-to-low-tens ms overheads.
        let (dot_mean, dot_median) = report.global_dot;
        let (doh_mean, doh_median) = report.global_doh;
        for (label, v) in [
            ("dot mean", dot_mean),
            ("dot median", dot_median),
            ("doh mean", doh_mean),
            ("doh median", doh_median),
        ] {
            assert!((-10.0..35.0).contains(&v), "{label} = {v}ms");
        }
    }

    #[test]
    fn india_doh_is_faster_than_clear_text() {
        let mut world = worldgen::World::build(WorldConfig::test_scale(37));
        let tunnel = standard_tunnel(&mut world.net);
        let clients: Vec<_> = world
            .proxyrack
            .clients
            .iter()
            .filter(|c| c.country.as_str() == "IN" && c.affliction == Affliction::None)
            .take(12)
            .cloned()
            .collect();
        assert!(clients.len() >= 5, "need IN clients");
        let report = performance_test(&mut world, &clients, tunnel, 20);
        let india = report
            .per_country
            .iter()
            .find(|c| c.country == "IN")
            .expect("india row");
        // Finding 3.2: ~99ms average improvement for DoH in India.
        assert!(
            india.doh_mean_ms < -50.0,
            "IN DoH overhead {}ms, expected strongly negative",
            india.doh_mean_ms
        );
        // DoT roughly par (port 853 shaped nearly as hard as 53).
        assert!(
            india.dot_mean_ms.abs() < 40.0,
            "IN DoT {}",
            india.dot_mean_ms
        );
    }

    #[test]
    fn fresh_connections_cost_grows_with_distance() {
        let mut world = worldgen::World::build(WorldConfig::test_scale(41));
        let rows = fresh_connection_test(&mut world, 60);
        assert_eq!(rows.len(), 4);
        let by: BTreeMap<&str, &FreshConnectionRow> =
            rows.iter().map(|r| (r.vantage.as_str(), r)).collect();
        // Table 7 shape: overhead ordering US < NL ≲ AU < HK-ish; at
        // minimum the farthest vantage pays much more than the nearest.
        let us = by["US"].dot_overhead_ms();
        let hk = by["HK"].dot_overhead_ms();
        assert!(us > 10.0, "US overhead {us}ms");
        assert!(hk > 2.0 * us, "US {us}ms vs HK {hk}ms");
        // DoH ≈ DoT within jitter (DoH adds HTTP bytes, medians wobble).
        for r in &rows {
            assert!(
                r.doh_overhead_ms() > r.dot_overhead_ms() - 30.0,
                "{}: doh {} dot {}",
                r.vantage,
                r.doh_overhead_ms(),
                r.dot_overhead_ms()
            );
        }
    }
}
