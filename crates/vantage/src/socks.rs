//! SOCKS5 (RFC 1928), the wire protocol of the residential proxy
//! networks (Figure 5 of the paper).
//!
//! The super proxy accepts a client's CONNECT, picks an exit node from its
//! pool, dials the destination *from the exit's address*, and relays
//! bytes. The exit hop's round trips are charged to the tunnel, so a
//! measurement client's observed latency is `T_R = tunnel + T'_R` exactly
//! as Figure 8 describes.

use netsim::{Conn, Network, PeerInfo, Service, ServiceCtx, StreamHandler};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// SOCKS protocol version.
const VER: u8 = 0x05;
/// "No authentication" method.
const METHOD_NONE: u8 = 0x00;
/// CONNECT command.
const CMD_CONNECT: u8 = 0x01;
/// IPv4 address type.
const ATYP_V4: u8 = 0x01;

/// Encode the client greeting (offering no-auth only).
pub fn encode_greeting() -> Vec<u8> {
    vec![VER, 1, METHOD_NONE]
}

/// Encode a CONNECT request for an IPv4 destination.
pub fn encode_connect(dst: Ipv4Addr, port: u16) -> Vec<u8> {
    let mut out = vec![VER, CMD_CONNECT, 0x00, ATYP_V4];
    out.extend_from_slice(&dst.octets());
    out.extend_from_slice(&port.to_be_bytes());
    out
}

/// Parse a CONNECT request; returns `(dst, port)`.
pub fn decode_connect(data: &[u8]) -> Option<(Ipv4Addr, u16)> {
    if data.len() != 10 || data[0] != VER || data[1] != CMD_CONNECT || data[3] != ATYP_V4 {
        return None;
    }
    let addr = Ipv4Addr::new(data[4], data[5], data[6], data[7]);
    let port = u16::from_be_bytes([data[8], data[9]]);
    Some((addr, port))
}

fn reply(code: u8) -> Vec<u8> {
    let mut out = vec![VER, code, 0x00, ATYP_V4];
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
    out
}

/// The super-proxy service: SOCKS5 front, exit-node pool behind.
pub struct Socks5RelayService {
    exits: Arc<Mutex<VecDeque<Ipv4Addr>>>,
}

impl Socks5RelayService {
    /// Build with a pool of exit nodes (rotated round-robin per CONNECT).
    pub fn new(exits: Vec<Ipv4Addr>) -> Self {
        Socks5RelayService {
            exits: Arc::new(Mutex::new(exits.into())),
        }
    }

    /// Handle to the rotating pool (tests inject rotation).
    pub fn exits(&self) -> Arc<Mutex<VecDeque<Ipv4Addr>>> {
        Arc::clone(&self.exits)
    }
}

enum RelayState {
    AwaitGreeting,
    AwaitConnect,
    Established { upstream: Box<Conn> },
    Dead,
}

struct RelayHandler {
    exits: Arc<Mutex<VecDeque<Ipv4Addr>>>,
    state: RelayState,
}

impl StreamHandler for RelayHandler {
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        match &mut self.state {
            RelayState::AwaitGreeting => {
                if data.len() >= 2 && data[0] == VER && data[2..].contains(&METHOD_NONE) {
                    self.state = RelayState::AwaitConnect;
                    vec![VER, METHOD_NONE]
                } else {
                    self.state = RelayState::Dead;
                    vec![VER, 0xff]
                }
            }
            RelayState::AwaitConnect => {
                let Some((dst, port)) = decode_connect(data) else {
                    self.state = RelayState::Dead;
                    return reply(0x07); // command not supported
                };
                let exit = {
                    // doe-lint: allow(D006) — exit rotation runs only under the
                    // integration harness (DESIGN.md: proxy latency shortcut); sharded
                    // stages never register a relay — the analyzer reaches this via the
                    // conservative exchange→handler edge
                    let mut exits = self.exits.lock();
                    match exits.pop_front() {
                        Some(e) => {
                            exits.push_back(e);
                            e
                        }
                        None => {
                            self.state = RelayState::Dead;
                            return reply(0x01); // general failure
                        }
                    }
                };
                match ctx.network().connect(exit, dst, port) {
                    Ok(conn) => {
                        ctx.charge(conn.elapsed());
                        self.state = RelayState::Established {
                            upstream: Box::new(conn),
                        };
                        reply(0x00)
                    }
                    Err(e) => {
                        ctx.charge(e.elapsed);
                        self.state = RelayState::Dead;
                        reply(match e.kind {
                            netsim::ConnectErrorKind::Refused => 0x05,
                            netsim::ConnectErrorKind::Reset => 0x05,
                            _ => 0x04, // host unreachable
                        })
                    }
                }
            }
            RelayState::Established { upstream } => match upstream.request(ctx.network(), data) {
                Ok(response) => {
                    ctx.charge(upstream.take_elapsed());
                    response
                }
                Err(e) => {
                    ctx.charge(e.elapsed);
                    self.state = RelayState::Dead;
                    Vec::new()
                }
            },
            RelayState::Dead => Vec::new(),
        }
    }
}

impl Service for Socks5RelayService {
    fn open_stream(&self, _peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(RelayHandler {
            exits: Arc::clone(&self.exits),
            state: RelayState::AwaitGreeting,
        })
    }

    fn protocol(&self) -> &'static str {
        "socks5"
    }
}

/// Client-side SOCKS5: greeting + CONNECT over an existing connection,
/// then transparent byte relay.
#[derive(Debug)]
pub struct Socks5Client {
    conn: Conn,
}

impl Socks5Client {
    /// Connect to the super proxy and tunnel to `dst:port`.
    pub fn tunnel(
        net: &mut Network,
        src: Ipv4Addr,
        super_proxy: Ipv4Addr,
        proxy_port: u16,
        dst: Ipv4Addr,
        port: u16,
    ) -> Result<Socks5Client, String> {
        let mut conn = net
            .connect(src, super_proxy, proxy_port)
            .map_err(|e| e.to_string())?;
        let greeting = conn
            .request(net, &encode_greeting())
            .map_err(|e| e.to_string())?;
        if greeting != vec![VER, METHOD_NONE] {
            return Err("method negotiation failed".into());
        }
        let resp = conn
            .request(net, &encode_connect(dst, port))
            .map_err(|e| e.to_string())?;
        if resp.get(1) != Some(&0x00) {
            return Err(format!("connect refused: code {:?}", resp.get(1)));
        }
        Ok(Socks5Client { conn })
    }

    /// One relayed request/response exchange.
    pub fn exchange(&mut self, net: &mut Network, data: &[u8]) -> Result<Vec<u8>, String> {
        self.conn.request(net, data).map_err(|e| e.to_string())
    }

    /// Total tunnel time charged.
    pub fn elapsed(&self) -> netsim::SimDuration {
        self.conn.elapsed()
    }

    /// Close the tunnel.
    pub fn close(self, net: &mut Network) {
        self.conn.close(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};

    fn world() -> (Network, Ipv4Addr, Ipv4Addr, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(NetworkConfig::default(), 77);
        let mc: Ipv4Addr = "198.51.100.50".parse().unwrap(); // measurement client
        let proxy: Ipv4Addr = "192.0.2.100".parse().unwrap(); // super proxy
        let exit: Ipv4Addr = "64.10.0.5".parse().unwrap(); // residential exit
        let server: Ipv4Addr = "203.0.113.30".parse().unwrap();
        net.add_host(HostMeta::new(mc).country("US"));
        net.add_host(HostMeta::new(proxy).country("US").label("super-proxy"));
        net.add_host(HostMeta::new(exit).country("BR"));
        net.add_host(HostMeta::new(server).country("DE").label("target"));
        net.bind_tcp(
            server,
            7,
            Arc::new(FnStreamService::new(
                |_c, peer: PeerInfo, d: &[u8]| {
                    // The server sees the *exit's* address, not the
                    // measurement client's.
                    let mut out = peer.src.octets().to_vec();
                    out.extend_from_slice(d);
                    out
                },
                "echo-src",
            )),
        );
        net.bind_tcp(proxy, 1080, Arc::new(Socks5RelayService::new(vec![exit])));
        (net, mc, proxy, exit, server)
    }

    #[test]
    fn codec_round_trips() {
        let enc = encode_connect("10.1.2.3".parse().unwrap(), 853);
        let (addr, port) = decode_connect(&enc).unwrap();
        assert_eq!(addr, "10.1.2.3".parse::<Ipv4Addr>().unwrap());
        assert_eq!(port, 853);
        assert!(decode_connect(&enc[..9]).is_none());
        assert!(decode_connect(&[4u8; 10]).is_none());
    }

    #[test]
    fn tunnel_reaches_server_from_exit_address() {
        let (mut net, mc, proxy, exit, server) = world();
        let mut tunnel = Socks5Client::tunnel(&mut net, mc, proxy, 1080, server, 7).unwrap();
        let resp = tunnel.exchange(&mut net, b"hello").unwrap();
        assert_eq!(&resp[..4], &exit.octets());
        assert_eq!(&resp[4..], b"hello");
        tunnel.close(&mut net);
    }

    #[test]
    fn tunnel_to_dead_target_reports_failure() {
        let (mut net, mc, proxy, _exit, _server) = world();
        let err = Socks5Client::tunnel(
            &mut net,
            mc,
            proxy,
            1080,
            "203.0.113.99".parse().unwrap(),
            7,
        )
        .unwrap_err();
        assert!(err.contains("connect refused"), "{err}");
    }

    #[test]
    fn tunneled_latency_exceeds_direct() {
        let (mut net, mc, proxy, exit, server) = world();
        // Direct exchange from the exit itself.
        let mut direct = net.connect(exit, server, 7).unwrap();
        direct.request(&mut net, b"x").unwrap();
        let direct_time = direct.elapsed();
        // Tunnelled from the measurement client.
        let mut tunnel = Socks5Client::tunnel(&mut net, mc, proxy, 1080, server, 7).unwrap();
        tunnel.exchange(&mut net, b"x").unwrap();
        assert!(
            tunnel.elapsed() > direct_time,
            "tunnel {} vs direct {direct_time}",
            tunnel.elapsed()
        );
        tunnel.close(&mut net);
    }

    #[test]
    fn exits_rotate_round_robin() {
        let (mut net, mc, proxy, exit, server) = world();
        let exit2: Ipv4Addr = "64.10.0.6".parse().unwrap();
        net.add_host(HostMeta::new(exit2).country("IN"));
        // Rebind with two exits.
        net.bind_tcp(
            proxy,
            1080,
            Arc::new(Socks5RelayService::new(vec![exit, exit2])),
        );
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut t = Socks5Client::tunnel(&mut net, mc, proxy, 1080, server, 7).unwrap();
            let resp = t.exchange(&mut net, b"q").unwrap();
            seen.push(Ipv4Addr::new(resp[0], resp[1], resp[2], resp[3]));
            t.close(&mut net);
        }
        assert_eq!(seen, vec![exit, exit2]);
    }
}
