//! Vantage-point pool management and tunnel-latency composition.
//!
//! The platforms set limited lifetimes on exit nodes, so the measurement
//! client (a) checks remaining uptime before committing a node to a
//! multi-query test and (b) discards nodes that rotate away mid-test
//! (§4.1, "Because the ProxyRack exit nodes rotate ...").
//!
//! Latency composition: Figure 8 shows the measurement client can only
//! observe `T_R = tunnel + T'_R`, never `T'_R` itself. [`Tunnel`] samples
//! the tunnel term per exchange — from the same distribution regardless of
//! the DNS protocol under test — so protocol *differences* of `T_R`
//! medians equal differences of `T'_R` medians, which is exactly the
//! paper's argument for why the comparison is sound.

use netsim::{Network, SimDuration};
use rand::Rng;
use std::net::Ipv4Addr;
use worldgen::ClientInfo;

/// The measurement tunnel: measurement client → super proxy → exit.
#[derive(Debug, Clone, Copy)]
pub struct Tunnel {
    /// Measurement client address.
    pub measurement_client: Ipv4Addr,
    /// Super proxy address.
    pub super_proxy: Ipv4Addr,
}

impl Tunnel {
    /// Sample the tunnel's contribution to one observed exchange:
    /// one round trip MC→proxy plus one proxy→exit.
    pub fn sample_overhead(&self, net: &mut Network, exit: Ipv4Addr) -> SimDuration {
        let lat = net.config().latency.clone();
        let mc = endpoint(net, self.measurement_client);
        let sp = endpoint(net, self.super_proxy);
        let ex = endpoint(net, exit);
        lat.sample_rtt(mc, sp, net.rng()) + lat.sample_rtt(sp, ex, net.rng())
    }
}

fn endpoint(net: &Network, ip: Ipv4Addr) -> netsim::latency::Endpoint {
    let (country, _asn, region) = net.attribution(ip);
    netsim::latency::Endpoint {
        region,
        country,
        anycast: false,
    }
}

/// A pool of vantage points with rotation semantics.
pub struct VantagePool {
    clients: Vec<ClientInfo>,
    /// Mean remaining lifetime when a node is handed out, in "queries
    /// worth" of budget; nodes may rotate away mid-test.
    mean_lifetime_queries: f64,
}

impl VantagePool {
    /// Wrap a client list.
    pub fn new(clients: Vec<ClientInfo>) -> Self {
        VantagePool {
            clients,
            mean_lifetime_queries: 400.0,
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The clients.
    pub fn clients(&self) -> &[ClientInfo] {
        &self.clients
    }

    /// Check a node's remaining uptime before a test needing `budget`
    /// queries; the paper discards nodes about to expire. Returns whether
    /// the node survives the whole test.
    pub fn check_uptime(&self, net: &mut Network, budget: u32) -> bool {
        // Exponential lifetime; survival prob for `budget` more queries.
        let u: f64 = net.rng().gen_range(0.0f64..1.0);
        let remaining = -self.mean_lifetime_queries * (1.0 - u).ln();
        remaining >= budget as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostMeta, NetworkConfig};

    #[test]
    fn tunnel_overhead_is_positive_and_varies() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        let mc: Ipv4Addr = "198.51.100.50".parse().unwrap();
        let sp: Ipv4Addr = "192.0.2.100".parse().unwrap();
        let exit: Ipv4Addr = "64.0.0.9".parse().unwrap();
        net.add_host(HostMeta::new(mc).country("US"));
        net.add_host(HostMeta::new(sp).country("US"));
        let tunnel = Tunnel {
            measurement_client: mc,
            super_proxy: sp,
        };
        let samples: Vec<SimDuration> = (0..32)
            .map(|_| tunnel.sample_overhead(&mut net, exit))
            .collect();
        assert!(samples.iter().all(|&d| d > SimDuration::ZERO));
        assert!(samples.windows(2).any(|w| w[0] != w[1]), "jitter expected");
    }

    #[test]
    fn uptime_check_mostly_passes_small_budgets() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        let pool = VantagePool::new(Vec::new());
        let passes = (0..200).filter(|_| pool.check_uptime(&mut net, 60)).count();
        // Budget of 60 queries against mean lifetime 400: ~86% survive.
        assert!(passes > 140, "{passes}");
        let passes_big = (0..200)
            .filter(|_| pool.check_uptime(&mut net, 2_000))
            .count();
        assert!(passes_big < 30, "{passes_big}");
    }
}
