//! The port-853 SYN sweep over a target address space, optionally
//! parallelised zmap-style across shard workers.

use crate::permutation::PermutationShard;
use netsim::telemetry::Labels;
use netsim::{mix_seed, Netblock, Network, ProbeOutcome};
use std::net::Ipv4Addr;

/// A concatenation of netblocks addressable by index — the sweep target
/// (`zmap`'s whitelist).
#[derive(Debug, Clone)]
pub struct AddressSpace {
    blocks: Vec<Netblock>,
    // Cumulative sizes for index→address mapping.
    offsets: Vec<u64>,
    total: u64,
}

impl AddressSpace {
    /// Build from blocks (order preserved; overlaps are the caller's
    /// problem and merely waste probes).
    pub fn new(blocks: Vec<Netblock>) -> Self {
        let mut offsets = Vec::with_capacity(blocks.len());
        let mut total = 0u64;
        for b in &blocks {
            offsets.push(total);
            total += b.size();
        }
        AddressSpace {
            blocks,
            offsets,
            total,
        }
    }

    /// Number of addresses covered.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no blocks.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `i`-th address.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn addr(&self, i: u64) -> Ipv4Addr {
        let idx = match self.offsets.binary_search(&i) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        self.blocks[idx].addr(i - self.offsets[idx])
    }
}

/// Sweep statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Addresses probed.
    pub probed: u64,
    /// SYN-ACKs received.
    pub open: u64,
    /// RSTs received.
    pub closed: u64,
    /// Silence.
    pub filtered: u64,
}

/// The sweep's findings.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Addresses with the port open, in discovery order.
    pub open_addrs: Vec<Ipv4Addr>,
    /// Counters.
    pub stats: SweepStats,
}

/// Run a SYN sweep of `port` over `space`, rotating probes across
/// `sources` (the paper used three hosts on two clouds).
///
/// Equivalent to [`syn_sweep_sharded`] with one shard.
pub fn syn_sweep(
    net: &mut Network,
    sources: &[Ipv4Addr],
    space: &AddressSpace,
    port: u16,
    seed: u64,
) -> SweepResult {
    syn_sweep_sharded(net, sources, space, port, seed, 1)
}

/// A probe result tagged with its permutation cycle position, the key the
/// parent merges shard outputs on.
type TaggedProbe = (u64, Ipv4Addr, ProbeOutcome);

/// One shard's walk: probe every target whose cycle position this shard
/// owns, tagging each result with its position for the later merge.
fn sweep_shard(
    worker: &mut Network,
    sources: &[Ipv4Addr],
    space: &AddressSpace,
    port: u16,
    seed: u64,
    shard: u64,
    shards: u64,
) -> Vec<TaggedProbe> {
    let mut hits = Vec::new();
    let probe_us = worker
        .metrics_mut()
        .histogram("stage.sweep.probe_us", Labels::empty());
    for (pos, index) in PermutationShard::new(space.len(), seed, shard, shards) {
        let addr = space.addr(index);
        // Reseed per target (keyed on the permuted index, which is unique)
        // so an individual probe's randomness does not depend on which
        // shard — or how many shards — executed it.
        worker.reseed(mix_seed(seed, index));
        let src = sources[(index as usize) % sources.len()];
        let (outcome, elapsed) = worker.syn_probe(src, addr, port);
        worker.metrics_mut().observe(probe_us, elapsed.as_micros());
        hits.push((pos, addr, outcome));
    }
    hits
}

/// Run the SYN sweep split across `shards` worker threads, zmap's
/// `--shards` model: shard `s` probes the cycle positions `≡ s (mod
/// shards)` of the scan permutation.
///
/// The result is bit-identical for every shard count (including 1):
/// per-target randomness is derived from the target's permuted index, and
/// shard outputs are merged back into cycle order. Worker clocks, traffic
/// counters and event logs are absorbed into `net` after the join.
pub fn syn_sweep_sharded(
    net: &mut Network,
    sources: &[Ipv4Addr],
    space: &AddressSpace,
    port: u16,
    seed: u64,
    shards: usize,
) -> SweepResult {
    assert!(!sources.is_empty(), "need at least one probe source");
    let shards = shards.max(1) as u64;
    if space.is_empty() {
        return SweepResult {
            open_addrs: Vec::new(),
            stats: SweepStats::default(),
        };
    }
    // The registry is the one source of truth for probe counters: the
    // sweep's stats are the delta of the parent's `net.probe.*` counters
    // across the absorb, not a separately maintained tally.
    let before = net.shard_stats();
    let mut outputs: Vec<(Network, Vec<TaggedProbe>)> = if shards == 1 {
        let mut worker = net.fork_shard(0);
        let hits = sweep_shard(&mut worker, sources, space, port, seed, 0, 1);
        vec![(worker, hits)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = net.fork_shard(s);
                    scope.spawn(move || {
                        let hits = sweep_shard(&mut worker, sources, space, port, seed, s, shards);
                        (worker, hits)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep shard panicked"))
                .collect()
        })
        .expect("sweep scope panicked")
    };
    let mut tagged: Vec<TaggedProbe> = Vec::with_capacity(space.len() as usize);
    for (worker, hits) in outputs.drain(..) {
        net.absorb_shard(worker);
        tagged.extend(hits);
    }
    tagged.sort_unstable_by_key(|&(pos, _, _)| pos);
    let open_addrs = tagged
        .into_iter()
        .filter(|&(_, _, outcome)| outcome == ProbeOutcome::Open)
        .map(|(_, addr, _)| addr)
        .collect();
    let after = net.shard_stats();
    let delta = |a: u64, b: u64| a.saturating_sub(b);
    let stats = SweepStats {
        probed: delta(after.probes, before.probes),
        open: delta(after.open, before.open),
        closed: delta(after.closed, before.closed),
        filtered: delta(after.filtered, before.filtered),
    };
    SweepResult { open_addrs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};
    use std::sync::Arc;

    fn block(s: &str, len: u8) -> Netblock {
        Netblock::new(s.parse().unwrap(), len)
    }

    #[test]
    fn address_space_indexing() {
        let space = AddressSpace::new(vec![block("10.0.0.0", 30), block("192.168.1.0", 30)]);
        assert_eq!(space.len(), 8);
        assert_eq!(space.addr(0), "10.0.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(3), "10.0.0.3".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(4), "192.168.1.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(7), "192.168.1.3".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn sweep_finds_exactly_the_open_hosts() {
        let mut net = Network::new(NetworkConfig::default(), 5);
        let src: Ipv4Addr = "198.51.100.1".parse().unwrap();
        net.add_host(HostMeta::new(src));
        let space = AddressSpace::new(vec![block("10.7.0.0", 24)]);
        // Three hosts: two with 853 open, one with only 80.
        for (i, port) in [(10u64, 853u16), (20, 853), (30, 80)] {
            let addr = space.addr(i);
            net.add_host(HostMeta::new(addr));
            net.bind_tcp(
                addr,
                port,
                Arc::new(FnStreamService::new(|_c, _p, d: &[u8]| d.to_vec(), "echo")),
            );
        }
        let result = syn_sweep(&mut net, &[src], &space, 853, 99);
        assert_eq!(result.stats.probed, 256);
        assert_eq!(result.stats.open, 2);
        assert_eq!(result.stats.closed, 1); // the port-80 host RSTs on 853
        assert_eq!(result.stats.filtered, 253);
        let mut found = result.open_addrs.clone();
        found.sort();
        assert_eq!(found, vec![space.addr(10), space.addr(20)]);
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_sequential() {
        let build = || {
            let mut net = Network::new(NetworkConfig::default(), 5);
            let srcs: Vec<Ipv4Addr> = ["198.51.100.1", "198.51.100.2", "203.0.113.1"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            for &s in &srcs {
                net.add_host(HostMeta::new(s));
            }
            let space = AddressSpace::new(vec![block("10.7.0.0", 24)]);
            for i in [3u64, 10, 77, 200] {
                let addr = space.addr(i);
                net.add_host(HostMeta::new(addr));
                net.bind_tcp(
                    addr,
                    853,
                    Arc::new(FnStreamService::new(|_c, _p, d: &[u8]| d.to_vec(), "echo")),
                );
            }
            (net, srcs, space)
        };
        let (mut net1, srcs1, space) = build();
        let reference = syn_sweep_sharded(&mut net1, &srcs1, &space, 853, 42, 1);
        assert_eq!(reference.stats.open, 4);
        for shards in [2usize, 3, 8] {
            let (mut net, srcs, space) = build();
            let result = syn_sweep_sharded(&mut net, &srcs, &space, 853, 42, shards);
            assert_eq!(result.stats, reference.stats, "shards={shards}");
            assert_eq!(result.open_addrs, reference.open_addrs, "shards={shards}");
            // The parent absorbed every worker's counters.
            assert_eq!(net.shard_stats().probes, 256, "shards={shards}");
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let build = || {
            let mut net = Network::new(NetworkConfig::default(), 5);
            let src: Ipv4Addr = "198.51.100.1".parse().unwrap();
            net.add_host(HostMeta::new(src));
            (net, src)
        };
        let space = AddressSpace::new(vec![block("10.9.0.0", 26)]);
        let (mut n1, s1) = build();
        let (mut n2, s2) = build();
        let r1 = syn_sweep(&mut n1, &[s1], &space, 853, 7);
        let r2 = syn_sweep(&mut n2, &[s2], &space, 853, 7);
        assert_eq!(r1.stats, r2.stats);
    }
}
