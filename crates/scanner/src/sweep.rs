//! The port-853 SYN sweep over a target address space.

use crate::permutation::RandomPermutation;
use netsim::{Netblock, Network, ProbeOutcome};
use std::net::Ipv4Addr;

/// A concatenation of netblocks addressable by index — the sweep target
/// (`zmap`'s whitelist).
#[derive(Debug, Clone)]
pub struct AddressSpace {
    blocks: Vec<Netblock>,
    // Cumulative sizes for index→address mapping.
    offsets: Vec<u64>,
    total: u64,
}

impl AddressSpace {
    /// Build from blocks (order preserved; overlaps are the caller's
    /// problem and merely waste probes).
    pub fn new(blocks: Vec<Netblock>) -> Self {
        let mut offsets = Vec::with_capacity(blocks.len());
        let mut total = 0u64;
        for b in &blocks {
            offsets.push(total);
            total += b.size();
        }
        AddressSpace {
            blocks,
            offsets,
            total,
        }
    }

    /// Number of addresses covered.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no blocks.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `i`-th address.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn addr(&self, i: u64) -> Ipv4Addr {
        let idx = match self.offsets.binary_search(&i) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        self.blocks[idx].addr(i - self.offsets[idx])
    }
}

/// Sweep statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Addresses probed.
    pub probed: u64,
    /// SYN-ACKs received.
    pub open: u64,
    /// RSTs received.
    pub closed: u64,
    /// Silence.
    pub filtered: u64,
}

/// The sweep's findings.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Addresses with the port open, in discovery order.
    pub open_addrs: Vec<Ipv4Addr>,
    /// Counters.
    pub stats: SweepStats,
}

/// Run a SYN sweep of `port` over `space`, rotating probes across
/// `sources` (the paper used three hosts on two clouds).
pub fn syn_sweep(
    net: &mut Network,
    sources: &[Ipv4Addr],
    space: &AddressSpace,
    port: u16,
    seed: u64,
) -> SweepResult {
    assert!(!sources.is_empty(), "need at least one probe source");
    let mut stats = SweepStats::default();
    let mut open_addrs = Vec::new();
    for (i, index) in RandomPermutation::new(space.len(), seed).enumerate() {
        let addr = space.addr(index);
        let src = sources[i % sources.len()];
        let (outcome, _elapsed) = net.syn_probe(src, addr, port);
        stats.probed += 1;
        match outcome {
            ProbeOutcome::Open => {
                stats.open += 1;
                open_addrs.push(addr);
            }
            ProbeOutcome::Closed => stats.closed += 1,
            ProbeOutcome::Filtered => stats.filtered += 1,
        }
    }
    SweepResult { open_addrs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};
    use std::rc::Rc;

    fn block(s: &str, len: u8) -> Netblock {
        Netblock::new(s.parse().unwrap(), len)
    }

    #[test]
    fn address_space_indexing() {
        let space = AddressSpace::new(vec![block("10.0.0.0", 30), block("192.168.1.0", 30)]);
        assert_eq!(space.len(), 8);
        assert_eq!(space.addr(0), "10.0.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(3), "10.0.0.3".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(4), "192.168.1.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(space.addr(7), "192.168.1.3".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn sweep_finds_exactly_the_open_hosts() {
        let mut net = Network::new(NetworkConfig::default(), 5);
        let src: Ipv4Addr = "198.51.100.1".parse().unwrap();
        net.add_host(HostMeta::new(src));
        let space = AddressSpace::new(vec![block("10.7.0.0", 24)]);
        // Three hosts: two with 853 open, one with only 80.
        for (i, port) in [(10u64, 853u16), (20, 853), (30, 80)] {
            let addr = space.addr(i);
            net.add_host(HostMeta::new(addr));
            net.bind_tcp(
                addr,
                port,
                Rc::new(FnStreamService::new(|_c, _p, d: &[u8]| d.to_vec(), "echo")),
            );
        }
        let result = syn_sweep(&mut net, &[src], &space, 853, 99);
        assert_eq!(result.stats.probed, 256);
        assert_eq!(result.stats.open, 2);
        assert_eq!(result.stats.closed, 1); // the port-80 host RSTs on 853
        assert_eq!(result.stats.filtered, 253);
        let mut found = result.open_addrs.clone();
        found.sort();
        assert_eq!(found, vec![space.addr(10), space.addr(20)]);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let build = || {
            let mut net = Network::new(NetworkConfig::default(), 5);
            let src: Ipv4Addr = "198.51.100.1".parse().unwrap();
            net.add_host(HostMeta::new(src));
            (net, src)
        };
        let space = AddressSpace::new(vec![block("10.9.0.0", 26)]);
        let (mut n1, s1) = build();
        let (mut n2, s2) = build();
        let r1 = syn_sweep(&mut n1, &[s1], &space, 853, 7);
        let r2 = syn_sweep(&mut n2, &[s2], &space, 853, 7);
        assert_eq!(r1.stats, r2.stats);
    }
}
