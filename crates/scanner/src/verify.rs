//! Application-layer verification of port-853-open hosts: the getdns-style
//! DoT probe, certificate collection and answer validation.

use crate::provider::provider_key;
use dnswire::{builder, Rcode, RecordType};
use doe_protocols::dot::DotClient;
use netsim::Network;
use std::net::Ipv4Addr;
use tlssim::{classify_chain, CertStatus, Certificate, DateStamp, TlsClientConfig, TrustStore};

/// What the verification probe concluded about one open-853 host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// A genuine open DoT resolver: answered our query with NOERROR.
    OpenResolver,
    /// Spoke DoT but answered with an error RCODE (closed/refusing).
    AnsweredError(Rcode),
    /// TLS came up but the stream didn't behave like DNS.
    NotDns,
    /// TLS handshake failed (not a TLS service, or broken).
    NotTls,
    /// The connection died at the TCP layer despite the earlier SYN-ACK.
    ConnectFailed,
}

/// Full observation for one host.
#[derive(Debug, Clone)]
pub struct DotObservation {
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Outcome class.
    pub outcome: VerifyOutcome,
    /// Presented certificate chain (when TLS completed).
    pub chain: Vec<Certificate>,
    /// Classification against the trust store (when TLS completed).
    pub cert_status: Option<CertStatus>,
    /// Provider grouping key from the leaf CN.
    pub provider: Option<String>,
    /// Whether the answer matched authoritative ground truth
    /// (dnsfilter-style fixed answers fail this, §3.2).
    pub answer_correct: Option<bool>,
}

impl DotObservation {
    /// Whether this host counts as an open DoT resolver.
    pub fn is_open_resolver(&self) -> bool {
        self.outcome == VerifyOutcome::OpenResolver
    }
}

/// Probe every open-853 address with a DoT query for a unique name under
/// `probe_apex`; classify certificates against `store` as of `now`.
///
/// The scanner does not know resolver names, so no hostname verification
/// is attempted (§3.2) — the TLS layer runs in no-verify mode and the
/// chain is classified after the fact, openssl-style.
#[allow(clippy::too_many_arguments)]
pub fn verify_resolvers(
    net: &mut Network,
    source: Ipv4Addr,
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
) -> Vec<DotObservation> {
    let mut observations = Vec::with_capacity(candidates.len());
    for (i, &addr) in candidates.iter().enumerate() {
        let mut dot = DotClient::new(TlsClientConfig::no_verify(now));
        let qname = format!("s{epoch_tag}x{i}.{probe_apex}");
        let query = match builder::query((i % 65_536) as u16, &qname, RecordType::A) {
            Ok(q) => q,
            Err(_) => continue,
        };
        let observation = match dot.session(net, source, addr, None) {
            Err(e) => DotObservation {
                addr,
                outcome: if matches!(e, doe_protocols::QueryError::Tls(tlssim::TlsError::Transport(_))) {
                    VerifyOutcome::ConnectFailed
                } else {
                    VerifyOutcome::NotTls
                },
                chain: Vec::new(),
                cert_status: None,
                provider: None,
                answer_correct: None,
            },
            Ok(mut session) => {
                let chain = session.server_chain().to_vec();
                let cert_status = Some(classify_chain(&chain, store, now));
                let provider = chain.first().map(|leaf| provider_key(&leaf.subject_cn));
                let (outcome, answer_correct) = match session.query(net, &query) {
                    Ok(reply) if reply.message.rcode() == Rcode::NoError => {
                        let got: Option<Ipv4Addr> =
                            reply.message.answers.iter().find_map(|rr| match &rr.rdata {
                                dnswire::RData::A(a) => Some(*a),
                                _ => None,
                            });
                        let correct = got == Some(expected_a);
                        (VerifyOutcome::OpenResolver, Some(correct))
                    }
                    Ok(reply) => (VerifyOutcome::AnsweredError(reply.message.rcode()), None),
                    Err(doe_protocols::QueryError::Tls(_)) => (VerifyOutcome::NotTls, None),
                    Err(_) => (VerifyOutcome::NotDns, None),
                };
                session.close(net);
                DotObservation {
                    addr,
                    outcome,
                    chain,
                    cert_status,
                    provider,
                    answer_correct,
                }
            }
        };
        observations.push(observation);
    }
    observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_protocols::responder::{AuthoritativeServer, RefusingResponder};
    use doe_protocols::DotServerService;
    use dnswire::zone::Zone;
    use dnswire::{Name, RData};
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};
    use std::rc::Rc;
    use tlssim::{CaHandle, KeyId, TlsServerConfig};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    struct Fixture {
        net: Network,
        src: Ipv4Addr,
        store: TrustStore,
        expected: Ipv4Addr,
    }

    fn fixture() -> Fixture {
        let mut net = Network::new(NetworkConfig::default(), 17);
        let src: Ipv4Addr = "198.51.100.10".parse().unwrap();
        net.add_host(HostMeta::new(src));
        let ca = CaHandle::new("Root CA", KeyId(1), now() + -365, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        let expected: Ipv4Addr = "203.0.113.99".parse().unwrap();

        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(&apex.prepend("*").unwrap(), 60, RData::A(expected));
        let responder: Rc<dyn doe_protocols::DnsResponder> =
            Rc::new(AuthoritativeServer::new(vec![zone]));

        // Host A: proper resolver, valid cert.
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.add_host(HostMeta::new(a));
        let leaf = ca.issue("dns.goodprov.net", vec![], KeyId(2), 1, now() + -10, now() + 300);
        net.bind_tcp(
            a,
            853,
            Rc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                Rc::clone(&responder),
            )),
        );
        // Host B: refusing resolver, self-signed cert.
        let b: Ipv4Addr = "10.0.0.2".parse().unwrap();
        net.add_host(HostMeta::new(b));
        let ss = CaHandle::self_signed("FGT60D000", vec![], KeyId(3), 2, now() + -10, now() + 300);
        net.bind_tcp(
            b,
            853,
            Rc::new(DotServerService::new(
                TlsServerConfig::new(vec![ss], KeyId(3)),
                Rc::new(RefusingResponder),
            )),
        );
        // Host C: 853 open but garbage.
        let c: Ipv4Addr = "10.0.0.3".parse().unwrap();
        net.add_host(HostMeta::new(c));
        net.bind_tcp(
            c,
            853,
            Rc::new(FnStreamService::new(
                |_c, _p, _d: &[u8]| b"220 smtp ready\r\n".to_vec(),
                "junk",
            )),
        );
        Fixture {
            net,
            src,
            store,
            expected,
        }
    }

    fn run(f: &mut Fixture, addrs: &[&str]) -> Vec<DotObservation> {
        let candidates: Vec<Ipv4Addr> = addrs.iter().map(|s| s.parse().unwrap()).collect();
        verify_resolvers(
            &mut f.net,
            f.src,
            &candidates,
            "probe.example",
            f.expected,
            &f.store.clone(),
            now(),
            "t",
        )
    }

    #[test]
    fn classifies_open_refusing_and_junk() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        assert_eq!(obs[0].outcome, VerifyOutcome::OpenResolver);
        assert_eq!(obs[0].cert_status, Some(CertStatus::Valid));
        assert_eq!(obs[0].provider.as_deref(), Some("goodprov.net"));
        assert_eq!(obs[0].answer_correct, Some(true));
        assert_eq!(obs[1].outcome, VerifyOutcome::AnsweredError(Rcode::Refused));
        assert_eq!(obs[1].cert_status, Some(CertStatus::SelfSigned));
        assert_eq!(obs[1].provider.as_deref(), Some("FGT60D000"));
        assert!(!obs[1].is_open_resolver());
        assert!(matches!(obs[2].outcome, VerifyOutcome::NotTls));
    }

    #[test]
    fn dead_address_is_connect_failed() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.9.9"]);
        assert_eq!(obs[0].outcome, VerifyOutcome::ConnectFailed);
        assert!(obs[0].cert_status.is_none());
    }
}
