//! Application-layer verification of port-853-open hosts: the getdns-style
//! DoT probe, certificate collection and answer validation.
//!
//! This is the campaign's hot path — a full-scale epoch verifies 2–3M
//! candidates — so the probe is built once per epoch as a [`ProbeTemplate`]
//! (pre-encoded, pre-padded, pre-framed; per-candidate stamping only), the
//! reply is classified through `dnswire`'s borrowing
//! [`MessageView`](dnswire::MessageView) without an owned decode, and the
//! results are packed into a columnar
//! [`ObservationTable`](crate::observation::ObservationTable).

use crate::observation::{CertClass, ObservationTable};
use crate::provider::provider_key;
use dnswire::view::MessageView;
use dnswire::{builder, frame_message, Rcode, RecordType, WireError};
use doe_protocols::dot::DotClient;
use netsim::telemetry::{Labels, Span};
use netsim::{mix_seed, Network};
use std::net::Ipv4Addr;
use tlssim::{classify_chain, CertStatus, Certificate, DateStamp, TlsClientConfig, TrustStore};

/// EDNS padding block applied to probe queries (RFC 8467 policy, matches
/// [`DotClient`]'s default).
const PAD_BLOCK: usize = 128;

/// Stable label value for a verification outcome class.
fn outcome_class(outcome: &VerifyOutcome) -> &'static str {
    match outcome {
        VerifyOutcome::OpenResolver => "open_resolver",
        VerifyOutcome::AnsweredError(_) => "answered_error",
        VerifyOutcome::NotDns => "not_dns",
        VerifyOutcome::NotTls => "not_tls",
        VerifyOutcome::ConnectFailed => "connect_failed",
    }
}

/// FNV-1a over a string — folds the epoch tag into the per-probe seed so
/// different epochs draw independent randomness.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the verification probe concluded about one open-853 host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// A genuine open DoT resolver: answered our query with NOERROR.
    OpenResolver,
    /// Spoke DoT but answered with an error RCODE (closed/refusing).
    AnsweredError(Rcode),
    /// TLS came up but the stream didn't behave like DNS.
    NotDns,
    /// TLS handshake failed (not a TLS service, or broken).
    NotTls,
    /// The connection died at the TCP layer despite the earlier SYN-ACK.
    ConnectFailed,
}

/// Full observation for one host.
///
/// This is the transient, per-probe result; the campaign stores the packed
/// [`ObservationTable`] instead (which drops the `chain`).
#[derive(Debug, Clone)]
pub struct DotObservation {
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Outcome class.
    pub outcome: VerifyOutcome,
    /// Presented certificate chain (when TLS completed).
    pub chain: Vec<Certificate>,
    /// Classification against the trust store (when TLS completed).
    pub cert_status: Option<CertStatus>,
    /// Provider grouping key from the leaf CN.
    pub provider: Option<String>,
    /// Whether the answer matched authoritative ground truth
    /// (dnsfilter-style fixed answers fail this, §3.2).
    pub answer_correct: Option<bool>,
}

impl DotObservation {
    /// Whether this host counts as an open DoT resolver.
    pub fn is_open_resolver(&self) -> bool {
        self.outcome == VerifyOutcome::OpenResolver
    }
}

/// A pre-built DoT probe frame, stamped per candidate.
///
/// Built once per epoch: the query for candidate 0 under the probe apex is
/// encoded, padded to [`PAD_BLOCK`] and length-framed; per candidate only
/// the transaction ID and the eight fixed-width qname digits are
/// overwritten in place. Every candidate's frame therefore has identical
/// length, and the hot loop never touches the message builder.
#[derive(Debug, Clone)]
pub struct ProbeTemplate {
    frame: Vec<u8>,
    /// Offset of the 8-digit candidate index inside the frame: 2-byte
    /// length prefix + 12-byte header + label length byte + `s` +
    /// epoch tag + `x`.
    digits_at: usize,
}

impl ProbeTemplate {
    /// Width of the zero-padded candidate index in the qname.
    const DIGITS: usize = 8;

    /// Build the template frame for one epoch.
    pub fn build(epoch_tag: &str, probe_apex: &str) -> Result<Self, WireError> {
        let qname = format!(
            "s{epoch_tag}x{:0width$}.{probe_apex}",
            0,
            width = Self::DIGITS
        );
        let mut query = builder::query(0, &qname, RecordType::A)?;
        query.pad_to_block(PAD_BLOCK)?;
        let frame = frame_message(&query.encode()?)?;
        Ok(ProbeTemplate {
            frame,
            digits_at: 2 + 12 + 1 + 1 + epoch_tag.len() + 1,
        })
    }

    /// The framed template bytes (clone one buffer per shard to stamp).
    pub fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// Stamp candidate `i`'s transaction ID and qname digits into `frame`
    /// (a copy of [`ProbeTemplate::frame`]).
    pub fn stamp(&self, frame: &mut [u8], i: usize) {
        debug_assert_eq!(frame.len(), self.frame.len());
        let txid = crate::txid(i).to_be_bytes();
        frame[2] = txid[0];
        frame[3] = txid[1];
        let mut n = i;
        for d in (0..Self::DIGITS).rev() {
            frame[self.digits_at + d] = b'0' + u8::try_from(n % 10).expect("digit < 10");
            n /= 10;
        }
        debug_assert_eq!(n, 0, "candidate index exceeds {} digits", Self::DIGITS);
    }
}

/// Probe one candidate: TLS session, stamped query frame, chain
/// classification. The reply is parsed with the borrowing [`MessageView`];
/// a reply that fails the (owned-equivalent) wire validation classifies as
/// [`VerifyOutcome::NotDns`], exactly like the owned decoder's error did.
fn verify_one(
    net: &mut Network,
    source: Ipv4Addr,
    addr: Ipv4Addr,
    frame: &[u8],
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
) -> DotObservation {
    let mut dot = DotClient::new(TlsClientConfig::no_verify(now));
    match dot.session(net, source, addr, None) {
        Err(e) => DotObservation {
            addr,
            outcome: if matches!(
                e,
                doe_protocols::QueryError::Tls(tlssim::TlsError::Transport(_))
            ) {
                VerifyOutcome::ConnectFailed
            } else {
                VerifyOutcome::NotTls
            },
            chain: Vec::new(),
            cert_status: None,
            provider: None,
            answer_correct: None,
        },
        Ok(mut session) => {
            let chain = session.server_chain().to_vec();
            let cert_status = Some(classify_chain(&chain, store, now));
            let provider = chain.first().map(|leaf| provider_key(&leaf.subject_cn));
            let (outcome, answer_correct) = match session.query_wire(net, frame) {
                Ok(reply) => match MessageView::parse(&reply.frame) {
                    Ok(view) if view.rcode() == Rcode::NoError => {
                        let correct = view.first_a_answer() == Some(expected_a);
                        (VerifyOutcome::OpenResolver, Some(correct))
                    }
                    Ok(view) => (VerifyOutcome::AnsweredError(view.rcode()), None),
                    Err(_) => (VerifyOutcome::NotDns, None),
                },
                Err(doe_protocols::QueryError::Tls(_)) => (VerifyOutcome::NotTls, None),
                Err(_) => (VerifyOutcome::NotDns, None),
            };
            session.close(net);
            DotObservation {
                addr,
                outcome,
                chain,
                cert_status,
                provider,
                answer_correct,
            }
        }
    }
}

/// Probe every open-853 address with a DoT query for a unique name under
/// `probe_apex`, rotating probes across `sources` like the SYN sweep;
/// classify certificates against `store` as of `now`.
///
/// The scanner does not know resolver names, so no hostname verification
/// is attempted (§3.2) — the TLS layer runs in no-verify mode and the
/// chain is classified after the fact, openssl-style.
///
/// Equivalent to [`verify_resolvers_sharded`] with one shard.
#[allow(clippy::too_many_arguments)]
pub fn verify_resolvers(
    net: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
) -> ObservationTable {
    verify_resolvers_sharded(
        net, sources, candidates, probe_apex, expected_a, store, now, epoch_tag, 1,
    )
}

/// One shard's verification pass over the candidates it owns
/// (`i ≡ shard (mod shards)`), in increasing candidate order.
#[allow(clippy::too_many_arguments)]
fn verify_shard(
    worker: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    template: &ProbeTemplate,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    shard: usize,
    shards: usize,
    epoch_salt: u64,
) -> ObservationTable {
    let mut table = ObservationTable::with_capacity(candidates.len().div_ceil(shards));
    let mut frame = template.frame().to_vec();
    let session_us = worker
        .metrics_mut()
        .histogram("stage.verify.session_us", Labels::empty());
    for i in (shard..candidates.len()).step_by(shards) {
        // Per-candidate reseed keyed on the global index, so the session's
        // randomness (and thus the observation) is shard-layout invariant.
        worker.reseed(mix_seed(epoch_salt, i as u64));
        template.stamp(&mut frame, i);
        let src = sources[i % sources.len()];
        let span = Span::begin(worker.charged().as_micros());
        let obs = verify_one(worker, src, candidates[i], &frame, expected_a, store, now);
        let elapsed = span.elapsed_us(worker.charged().as_micros());
        let metrics = worker.metrics_mut();
        metrics.observe(session_us, elapsed);
        metrics.count(
            "stage.verify.outcome",
            Labels::one("class", outcome_class(&obs.outcome)),
            1,
        );
        if let Some(status) = &obs.cert_status {
            metrics.count(
                "stage.verify.cert",
                Labels::one("status", CertClass::of(status).label()),
                1,
            );
        }
        table.push(&obs);
    }
    table
}

/// Run resolver verification split across `shards` worker threads.
///
/// Candidate `i` goes to shard `i mod shards`, keeps its global query
/// name/id, and draws per-candidate randomness from the campaign seed —
/// so the merged observation table is identical for every shard count.
/// Worker clocks, counters and logs are absorbed into `net` after the
/// join.
#[allow(clippy::too_many_arguments)]
pub fn verify_resolvers_sharded(
    net: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
    shards: usize,
) -> ObservationTable {
    assert!(!sources.is_empty(), "need at least one probe source");
    let shards = shards.max(1);
    if candidates.is_empty() {
        return ObservationTable::new();
    }
    let template = ProbeTemplate::build(epoch_tag, probe_apex).expect("probe template encodes");
    let epoch_salt = net.base_seed() ^ fnv1a(epoch_tag);
    let mut outputs: Vec<(Network, ObservationTable)> = if shards == 1 {
        let mut worker = net.fork_shard(0);
        let table = verify_shard(
            &mut worker,
            sources,
            candidates,
            &template,
            expected_a,
            store,
            now,
            0,
            1,
            epoch_salt,
        );
        vec![(worker, table)]
    } else {
        crossbeam::scope(|scope| {
            let template = &template;
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = net.fork_shard(s as u64);
                    scope.spawn(move || {
                        let table = verify_shard(
                            &mut worker,
                            sources,
                            candidates,
                            template,
                            expected_a,
                            store,
                            now,
                            s,
                            shards,
                            epoch_salt,
                        );
                        (worker, table)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verify shard panicked"))
                .collect()
        })
        .expect("verify scope panicked")
    };
    let mut tables: Vec<ObservationTable> = Vec::with_capacity(outputs.len());
    for (worker, table) in outputs.drain(..) {
        net.absorb_shard(worker);
        tables.push(table);
    }
    ObservationTable::merge_striped(&tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::zone::Zone;
    use dnswire::{Message, Name, RData};
    use doe_protocols::responder::{AuthoritativeServer, RefusingResponder};
    use doe_protocols::DotServerService;
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};
    use std::sync::Arc;
    use tlssim::{CaHandle, KeyId, TlsServerConfig};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    struct Fixture {
        net: Network,
        src: Ipv4Addr,
        store: TrustStore,
        expected: Ipv4Addr,
    }

    fn fixture() -> Fixture {
        let mut net = Network::new(NetworkConfig::default(), 17);
        let src: Ipv4Addr = "198.51.100.10".parse().unwrap();
        net.add_host(HostMeta::new(src));
        let ca = CaHandle::new("Root CA", KeyId(1), now() + -365, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        let expected: Ipv4Addr = "203.0.113.99".parse().unwrap();

        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(&apex.prepend("*").unwrap(), 60, RData::A(expected));
        let responder: Arc<dyn doe_protocols::DnsResponder> =
            Arc::new(AuthoritativeServer::new(vec![zone]));

        // Host A: proper resolver, valid cert.
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.add_host(HostMeta::new(a));
        let leaf = ca.issue(
            "dns.goodprov.net",
            vec![],
            KeyId(2),
            1,
            now() + -10,
            now() + 300,
        );
        net.bind_tcp(
            a,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                Arc::clone(&responder),
            )),
        );
        // Host B: refusing resolver, self-signed cert.
        let b: Ipv4Addr = "10.0.0.2".parse().unwrap();
        net.add_host(HostMeta::new(b));
        let ss = CaHandle::self_signed("FGT60D000", vec![], KeyId(3), 2, now() + -10, now() + 300);
        net.bind_tcp(
            b,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![ss], KeyId(3)),
                Arc::new(RefusingResponder),
            )),
        );
        // Host C: 853 open but garbage.
        let c: Ipv4Addr = "10.0.0.3".parse().unwrap();
        net.add_host(HostMeta::new(c));
        net.bind_tcp(
            c,
            853,
            Arc::new(FnStreamService::new(
                |_c, _p, _d: &[u8]| b"220 smtp ready\r\n".to_vec(),
                "junk",
            )),
        );
        Fixture {
            net,
            src,
            store,
            expected,
        }
    }

    fn run(f: &mut Fixture, addrs: &[&str]) -> ObservationTable {
        let candidates: Vec<Ipv4Addr> = addrs.iter().map(|s| s.parse().unwrap()).collect();
        verify_resolvers(
            &mut f.net,
            &[f.src],
            &candidates,
            "probe.example",
            f.expected,
            &f.store.clone(),
            now(),
            "t",
        )
    }

    #[test]
    fn classifies_open_refusing_and_junk() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        assert_eq!(obs.row(0).outcome, VerifyOutcome::OpenResolver);
        assert_eq!(obs.row(0).cert, Some(CertClass::Valid));
        assert_eq!(obs.row(0).provider, Some("goodprov.net"));
        assert_eq!(obs.row(0).answer_correct, Some(true));
        assert_eq!(
            obs.row(1).outcome,
            VerifyOutcome::AnsweredError(Rcode::Refused)
        );
        assert_eq!(obs.row(1).cert, Some(CertClass::SelfSigned));
        assert_eq!(obs.row(1).provider, Some("FGT60D000"));
        assert!(!obs.row(1).is_open_resolver());
        assert!(matches!(obs.row(2).outcome, VerifyOutcome::NotTls));
        assert_eq!(obs.open_resolvers(), 1);
    }

    #[test]
    fn dead_address_is_connect_failed() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.9.9"]);
        assert_eq!(obs.row(0).outcome, VerifyOutcome::ConnectFailed);
        assert!(obs.row(0).cert.is_none());
    }

    #[test]
    fn probe_template_stamps_a_decodable_query() {
        let template = ProbeTemplate::build("e7", "probe.example").expect("template");
        let mut frame = template.frame().to_vec();
        for &i in &[0usize, 1, 99, 1_234_567, 99_999_999] {
            template.stamp(&mut frame, i);
            // Strip the 2-byte length prefix; the rest must be a valid,
            // padded query for the stamped name with the stamped id.
            let msg = Message::decode(&frame[2..]).expect("stamped frame decodes");
            assert_eq!(msg.id(), crate::txid(i));
            assert_eq!(
                msg.question().expect("one question").qname.to_string(),
                format!("se7x{i:08}.probe.example.")
            );
            assert_eq!((frame.len() - 2) % PAD_BLOCK, 0, "padding preserved");
            // The view agrees (this is what the hot path relies on).
            let view = MessageView::parse(&frame[2..]).expect("view parses");
            assert_eq!(view.id(), crate::txid(i));
        }
    }
}
