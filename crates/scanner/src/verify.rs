//! Application-layer verification of port-853-open hosts: the getdns-style
//! DoT probe, certificate collection and answer validation.

use crate::provider::provider_key;
use dnswire::{builder, Rcode, RecordType};
use doe_protocols::dot::DotClient;
use netsim::telemetry::{Labels, Span};
use netsim::{mix_seed, Network};
use std::net::Ipv4Addr;
use tlssim::{classify_chain, CertStatus, Certificate, DateStamp, TlsClientConfig, TrustStore};

/// Stable label value for a verification outcome class.
fn outcome_class(outcome: &VerifyOutcome) -> &'static str {
    match outcome {
        VerifyOutcome::OpenResolver => "open_resolver",
        VerifyOutcome::AnsweredError(_) => "answered_error",
        VerifyOutcome::NotDns => "not_dns",
        VerifyOutcome::NotTls => "not_tls",
        VerifyOutcome::ConnectFailed => "connect_failed",
    }
}

/// Stable label value for a certificate classification.
fn cert_class(status: &CertStatus) -> &'static str {
    match status {
        CertStatus::Valid => "valid",
        CertStatus::Expired => "expired",
        CertStatus::SelfSigned => "self_signed",
        CertStatus::InvalidChain => "invalid_chain",
        CertStatus::UntrustedCa { .. } => "untrusted_ca",
    }
}

/// FNV-1a over a string — folds the epoch tag into the per-probe seed so
/// different epochs draw independent randomness.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the verification probe concluded about one open-853 host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// A genuine open DoT resolver: answered our query with NOERROR.
    OpenResolver,
    /// Spoke DoT but answered with an error RCODE (closed/refusing).
    AnsweredError(Rcode),
    /// TLS came up but the stream didn't behave like DNS.
    NotDns,
    /// TLS handshake failed (not a TLS service, or broken).
    NotTls,
    /// The connection died at the TCP layer despite the earlier SYN-ACK.
    ConnectFailed,
}

/// Full observation for one host.
#[derive(Debug, Clone)]
pub struct DotObservation {
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Outcome class.
    pub outcome: VerifyOutcome,
    /// Presented certificate chain (when TLS completed).
    pub chain: Vec<Certificate>,
    /// Classification against the trust store (when TLS completed).
    pub cert_status: Option<CertStatus>,
    /// Provider grouping key from the leaf CN.
    pub provider: Option<String>,
    /// Whether the answer matched authoritative ground truth
    /// (dnsfilter-style fixed answers fail this, §3.2).
    pub answer_correct: Option<bool>,
}

impl DotObservation {
    /// Whether this host counts as an open DoT resolver.
    pub fn is_open_resolver(&self) -> bool {
        self.outcome == VerifyOutcome::OpenResolver
    }
}

/// Probe one candidate: TLS session, unique query, chain classification.
/// `i` is the candidate's global index — it fixes the query name/id and
/// the per-probe seed so the observation is independent of shard layout.
#[allow(clippy::too_many_arguments)]
fn verify_one(
    net: &mut Network,
    source: Ipv4Addr,
    addr: Ipv4Addr,
    i: usize,
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
) -> Option<DotObservation> {
    let mut dot = DotClient::new(TlsClientConfig::no_verify(now));
    let qname = format!("s{epoch_tag}x{i}.{probe_apex}");
    let query = builder::query(crate::txid(i), &qname, RecordType::A).ok()?;
    let observation = match dot.session(net, source, addr, None) {
        Err(e) => DotObservation {
            addr,
            outcome: if matches!(
                e,
                doe_protocols::QueryError::Tls(tlssim::TlsError::Transport(_))
            ) {
                VerifyOutcome::ConnectFailed
            } else {
                VerifyOutcome::NotTls
            },
            chain: Vec::new(),
            cert_status: None,
            provider: None,
            answer_correct: None,
        },
        Ok(mut session) => {
            let chain = session.server_chain().to_vec();
            let cert_status = Some(classify_chain(&chain, store, now));
            let provider = chain.first().map(|leaf| provider_key(&leaf.subject_cn));
            let (outcome, answer_correct) = match session.query(net, &query) {
                Ok(reply) if reply.message.rcode() == Rcode::NoError => {
                    let got: Option<Ipv4Addr> =
                        reply.message.answers.iter().find_map(|rr| match &rr.rdata {
                            dnswire::RData::A(a) => Some(*a),
                            _ => None,
                        });
                    let correct = got == Some(expected_a);
                    (VerifyOutcome::OpenResolver, Some(correct))
                }
                Ok(reply) => (VerifyOutcome::AnsweredError(reply.message.rcode()), None),
                Err(doe_protocols::QueryError::Tls(_)) => (VerifyOutcome::NotTls, None),
                Err(_) => (VerifyOutcome::NotDns, None),
            };
            session.close(net);
            DotObservation {
                addr,
                outcome,
                chain,
                cert_status,
                provider,
                answer_correct,
            }
        }
    };
    Some(observation)
}

/// Probe every open-853 address with a DoT query for a unique name under
/// `probe_apex`, rotating probes across `sources` like the SYN sweep;
/// classify certificates against `store` as of `now`.
///
/// The scanner does not know resolver names, so no hostname verification
/// is attempted (§3.2) — the TLS layer runs in no-verify mode and the
/// chain is classified after the fact, openssl-style.
///
/// Equivalent to [`verify_resolvers_sharded`] with one shard.
#[allow(clippy::too_many_arguments)]
pub fn verify_resolvers(
    net: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
) -> Vec<DotObservation> {
    verify_resolvers_sharded(
        net, sources, candidates, probe_apex, expected_a, store, now, epoch_tag, 1,
    )
}

/// One shard's verification pass over the candidates it owns
/// (`i ≡ shard (mod shards)`), keyed by global candidate index.
#[allow(clippy::too_many_arguments)]
fn verify_shard(
    worker: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
    shard: usize,
    shards: usize,
    epoch_salt: u64,
) -> Vec<(usize, DotObservation)> {
    let mut out = Vec::new();
    let session_us = worker
        .metrics_mut()
        .histogram("stage.verify.session_us", Labels::empty());
    for i in (shard..candidates.len()).step_by(shards) {
        // Per-candidate reseed keyed on the global index, so the session's
        // randomness (and thus the observation) is shard-layout invariant.
        worker.reseed(mix_seed(epoch_salt, i as u64));
        let src = sources[i % sources.len()];
        let span = Span::begin(worker.charged().as_micros());
        if let Some(obs) = verify_one(
            worker,
            src,
            candidates[i],
            i,
            probe_apex,
            expected_a,
            store,
            now,
            epoch_tag,
        ) {
            let elapsed = span.elapsed_us(worker.charged().as_micros());
            let metrics = worker.metrics_mut();
            metrics.observe(session_us, elapsed);
            metrics.count(
                "stage.verify.outcome",
                Labels::one("class", outcome_class(&obs.outcome)),
                1,
            );
            if let Some(status) = &obs.cert_status {
                metrics.count(
                    "stage.verify.cert",
                    Labels::one("status", cert_class(status)),
                    1,
                );
            }
            out.push((i, obs));
        }
    }
    out
}

/// Run resolver verification split across `shards` worker threads.
///
/// Candidate `i` goes to shard `i mod shards`, keeps its global query
/// name/id, and draws per-candidate randomness from the campaign seed —
/// so the merged observation list is identical for every shard count.
/// Worker clocks, counters and logs are absorbed into `net` after the
/// join.
#[allow(clippy::too_many_arguments)]
pub fn verify_resolvers_sharded(
    net: &mut Network,
    sources: &[Ipv4Addr],
    candidates: &[Ipv4Addr],
    probe_apex: &str,
    expected_a: Ipv4Addr,
    store: &TrustStore,
    now: DateStamp,
    epoch_tag: &str,
    shards: usize,
) -> Vec<DotObservation> {
    assert!(!sources.is_empty(), "need at least one probe source");
    let shards = shards.max(1);
    if candidates.is_empty() {
        return Vec::new();
    }
    let epoch_salt = net.base_seed() ^ fnv1a(epoch_tag);
    let mut outputs: Vec<(Network, Vec<(usize, DotObservation)>)> = if shards == 1 {
        let mut worker = net.fork_shard(0);
        let obs = verify_shard(
            &mut worker,
            sources,
            candidates,
            probe_apex,
            expected_a,
            store,
            now,
            epoch_tag,
            0,
            1,
            epoch_salt,
        );
        vec![(worker, obs)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = net.fork_shard(s as u64);
                    scope.spawn(move || {
                        let obs = verify_shard(
                            &mut worker,
                            sources,
                            candidates,
                            probe_apex,
                            expected_a,
                            store,
                            now,
                            epoch_tag,
                            s,
                            shards,
                            epoch_salt,
                        );
                        (worker, obs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verify shard panicked"))
                .collect()
        })
        .expect("verify scope panicked")
    };
    let mut tagged: Vec<(usize, DotObservation)> = Vec::with_capacity(candidates.len());
    for (worker, obs) in outputs.drain(..) {
        net.absorb_shard(worker);
        tagged.extend(obs);
    }
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, obs)| obs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::zone::Zone;
    use dnswire::{Name, RData};
    use doe_protocols::responder::{AuthoritativeServer, RefusingResponder};
    use doe_protocols::DotServerService;
    use netsim::service::FnStreamService;
    use netsim::{HostMeta, NetworkConfig};
    use std::sync::Arc;
    use tlssim::{CaHandle, KeyId, TlsServerConfig};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    struct Fixture {
        net: Network,
        src: Ipv4Addr,
        store: TrustStore,
        expected: Ipv4Addr,
    }

    fn fixture() -> Fixture {
        let mut net = Network::new(NetworkConfig::default(), 17);
        let src: Ipv4Addr = "198.51.100.10".parse().unwrap();
        net.add_host(HostMeta::new(src));
        let ca = CaHandle::new("Root CA", KeyId(1), now() + -365, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        let expected: Ipv4Addr = "203.0.113.99".parse().unwrap();

        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(&apex.prepend("*").unwrap(), 60, RData::A(expected));
        let responder: Arc<dyn doe_protocols::DnsResponder> =
            Arc::new(AuthoritativeServer::new(vec![zone]));

        // Host A: proper resolver, valid cert.
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        net.add_host(HostMeta::new(a));
        let leaf = ca.issue(
            "dns.goodprov.net",
            vec![],
            KeyId(2),
            1,
            now() + -10,
            now() + 300,
        );
        net.bind_tcp(
            a,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                Arc::clone(&responder),
            )),
        );
        // Host B: refusing resolver, self-signed cert.
        let b: Ipv4Addr = "10.0.0.2".parse().unwrap();
        net.add_host(HostMeta::new(b));
        let ss = CaHandle::self_signed("FGT60D000", vec![], KeyId(3), 2, now() + -10, now() + 300);
        net.bind_tcp(
            b,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![ss], KeyId(3)),
                Arc::new(RefusingResponder),
            )),
        );
        // Host C: 853 open but garbage.
        let c: Ipv4Addr = "10.0.0.3".parse().unwrap();
        net.add_host(HostMeta::new(c));
        net.bind_tcp(
            c,
            853,
            Arc::new(FnStreamService::new(
                |_c, _p, _d: &[u8]| b"220 smtp ready\r\n".to_vec(),
                "junk",
            )),
        );
        Fixture {
            net,
            src,
            store,
            expected,
        }
    }

    fn run(f: &mut Fixture, addrs: &[&str]) -> Vec<DotObservation> {
        let candidates: Vec<Ipv4Addr> = addrs.iter().map(|s| s.parse().unwrap()).collect();
        verify_resolvers(
            &mut f.net,
            &[f.src],
            &candidates,
            "probe.example",
            f.expected,
            &f.store.clone(),
            now(),
            "t",
        )
    }

    #[test]
    fn classifies_open_refusing_and_junk() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        assert_eq!(obs[0].outcome, VerifyOutcome::OpenResolver);
        assert_eq!(obs[0].cert_status, Some(CertStatus::Valid));
        assert_eq!(obs[0].provider.as_deref(), Some("goodprov.net"));
        assert_eq!(obs[0].answer_correct, Some(true));
        assert_eq!(obs[1].outcome, VerifyOutcome::AnsweredError(Rcode::Refused));
        assert_eq!(obs[1].cert_status, Some(CertStatus::SelfSigned));
        assert_eq!(obs[1].provider.as_deref(), Some("FGT60D000"));
        assert!(!obs[1].is_open_resolver());
        assert!(matches!(obs[2].outcome, VerifyOutcome::NotTls));
    }

    #[test]
    fn dead_address_is_connect_failed() {
        let mut f = fixture();
        let obs = run(&mut f, &["10.0.9.9"]);
        assert_eq!(obs[0].outcome, VerifyOutcome::ConnectFailed);
        assert!(obs[0].cert_status.is_none());
    }
}
