//! Provider grouping: "we group the DoT resolvers by Common Names in their
//! SSL certificates ... if the Common Name is a domain name, we group them
//! by Second-Level Domains" (§3.2, footnote 2).

use dnswire::Name;

/// Compute the grouping key for a certificate common name.
pub fn provider_key(common_name: &str) -> String {
    if let Ok(name) = Name::parse(common_name) {
        if name.label_count() >= 2 {
            if let Some(sld) = name.second_level_domain() {
                return sld.to_string().trim_end_matches('.').to_string();
            }
        }
    }
    common_name.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_group_by_sld() {
        assert_eq!(provider_key("dns.example.com"), "example.com");
        assert_eq!(provider_key("a.b.c.example.org"), "example.org");
        assert_eq!(provider_key("example.com"), "example.com");
        // Wildcard CNs group with their domain.
        assert_eq!(provider_key("*.cloudflare-dns.com"), "cloudflare-dns.com");
    }

    #[test]
    fn device_names_group_verbatim() {
        assert_eq!(provider_key("FGT60D3916800000"), "FGT60D3916800000");
        assert_eq!(provider_key("my router"), "my router");
    }

    #[test]
    fn same_provider_different_hosts_collapse() {
        assert_eq!(
            provider_key("one.cleanbrowsing.org"),
            provider_key("two.cleanbrowsing.org")
        );
    }
}
