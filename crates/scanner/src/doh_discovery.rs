//! DoH service discovery from a URL corpus (§3.1):
//! grep for common DoH paths → validate candidates with real DoH queries
//! → deduplicate into services → compare against the public list.

use dnswire::view::MessageView;
use dnswire::{builder, Rcode, RecordType};
use doe_protocols::{Bootstrap, DohClient, DohMethod};
use httpsim::uri::COMMON_DOH_PATHS;
use httpsim::{UriTemplate, Url};
use netsim::telemetry::{Labels, Span};
use netsim::Network;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use tlssim::{DateStamp, TlsClientConfig, TrustStore};

/// One validated (or failed) DoH candidate.
#[derive(Debug, Clone)]
pub struct DohObservation {
    /// Candidate URL as found in the corpus.
    pub url: String,
    /// The derived locator template.
    pub template: UriTemplate,
    /// Whether the endpoint spoke DoH at all (a well-formed DNS response,
    /// any RCODE — Quad9's SERVFAIL-prone front still counts, §3.1).
    pub works: bool,
    /// Whether the answer also matched authoritative ground truth.
    pub correct: bool,
}

/// Discovery results.
#[derive(Debug, Clone)]
pub struct DohDiscoveryReport {
    /// Corpus size inspected.
    pub corpus_size: usize,
    /// URLs whose path matched a common DoH template.
    pub candidates: usize,
    /// Candidates that validated.
    pub valid_urls: usize,
    /// Distinct working services (by host + path).
    pub services: Vec<UriTemplate>,
    /// Working services not present in the known public list.
    pub beyond_known_list: Vec<UriTemplate>,
    /// Per-candidate detail.
    pub observations: Vec<DohObservation>,
}

fn path_matches_doh(url: &Url) -> bool {
    COMMON_DOH_PATHS.iter().any(|p| url.path == *p)
}

/// Run discovery over `corpus` from `source`, bootstrapping through
/// `bootstrap_resolver` and validating answers against the probe domain.
#[allow(clippy::too_many_arguments)]
pub fn discover_doh(
    net: &mut Network,
    source: Ipv4Addr,
    corpus: &[String],
    bootstrap_resolver: Ipv4Addr,
    probe_apex: &str,
    expected_a: Ipv4Addr,
    known_list: &[UriTemplate],
    store: &TrustStore,
    now: DateStamp,
) -> DohDiscoveryReport {
    // Stage 1: grep.
    let mut candidates: Vec<(String, Url)> = Vec::new();
    for raw in corpus {
        if let Some(url) = Url::parse(raw) {
            if url.scheme == "https" && path_matches_doh(&url) {
                candidates.push((raw.clone(), url));
            }
        }
    }

    // Stage 2: validate each candidate with a genuine DoH query.
    let probe_us = net
        .metrics_mut()
        .histogram("stage.doh_discovery.probe_us", Labels::empty());
    net.metrics_mut().count(
        "stage.doh_discovery.candidates",
        Labels::empty(),
        candidates.len() as u64,
    );
    let mut observations = Vec::with_capacity(candidates.len());
    let mut working: BTreeSet<String> = BTreeSet::new();
    let mut services: Vec<UriTemplate> = Vec::new();
    for (i, (raw, url)) in candidates.iter().enumerate() {
        let template =
            match UriTemplate::parse(&format!("https://{}{}{{?dns}}", url.host, url.path)) {
                Some(t) => t,
                None => continue,
            };
        let mut client = DohClient::new(
            TlsClientConfig::strict(store.clone(), now),
            template.clone(),
            DohMethod::Get,
            Bootstrap::Do53 {
                resolver: bootstrap_resolver,
            },
        );
        let qname = format!("doh{i}.{probe_apex}");
        let span = Span::begin(net.charged().as_micros());
        let reply = builder::query(crate::txid(i), &qname, RecordType::A)
            .ok()
            .and_then(|q| client.query_once_wire(net, source, &q).ok());
        let elapsed = span.elapsed_us(net.charged().as_micros());
        net.metrics_mut().observe(probe_us, elapsed);
        // The raw HTTP body is classified through the borrowing view —
        // a body that fails wire validation does not count as DoH, which
        // is exactly what the owned decode inside `query_once` enforced.
        let view = reply
            .as_ref()
            .and_then(|reply| MessageView::parse(&reply.frame).ok());
        let works = view.is_some();
        if works {
            net.metrics_mut()
                .count("stage.doh_discovery.works", Labels::empty(), 1);
        }
        let correct = view
            .map(|view| {
                view.rcode() == Rcode::NoError
                    && view.answers().any(|rr| rr.rdata_a() == Some(expected_a))
            })
            .unwrap_or(false);
        if works {
            let key = format!("{}{}", template.host(), template.path());
            if working.insert(key) {
                services.push(template.clone());
            }
        }
        observations.push(DohObservation {
            url: raw.clone(),
            template,
            works,
            correct,
        });
    }

    let known: BTreeSet<String> = known_list
        .iter()
        .map(|t| format!("{}{}", t.host(), t.path()))
        .collect();
    let beyond_known_list = services
        .iter()
        .filter(|t| !known.contains(&format!("{}{}", t.host(), t.path())))
        .cloned()
        .collect();

    DohDiscoveryReport {
        corpus_size: corpus.len(),
        candidates: candidates.len(),
        valid_urls: observations.iter().filter(|o| o.works).count(),
        services,
        beyond_known_list,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{World, WorldConfig};

    #[test]
    fn discovery_finds_seventeen_services_two_beyond_list() {
        let mut world = World::build(WorldConfig::test_scale(19));
        let source = world.scanner_sources[0];
        let corpus = world.corpus.urls.clone();
        let apex = world.probe.apex.to_string();
        let apex = apex.trim_end_matches('.').to_string();
        let known = world.known_doh_list.clone();
        let store = world.trust_store.clone();
        let now = world.epoch();
        let bootstrap = world.bootstrap_resolver;
        let expected = world.probe.expected_a;
        let report = discover_doh(
            &mut world.net,
            source,
            &corpus,
            bootstrap,
            &apex,
            expected,
            &known,
            &store,
            now,
        );
        assert_eq!(report.candidates, world.corpus.candidate_count);
        // Host-literal aliases (https://1.1.1.1/dns-query) fail strict
        // hostname verification, so valid URLs ≥ services ≥ 17.
        assert!(
            report.services.len() >= 17,
            "found {} services",
            report.services.len()
        );
        assert!(report.valid_urls >= report.services.len());
        let beyond: Vec<String> = report
            .beyond_known_list
            .iter()
            .map(|t| t.host().to_string())
            .collect();
        assert!(
            beyond.contains(&"dns.rubyfish.cn".to_string()),
            "{beyond:?}"
        );
        assert!(beyond.contains(&"dns.233py.com".to_string()));
        // Quad9's template validated despite its flaky back-end or not —
        // either way it must be in the service list via its hostname.
        assert!(report
            .services
            .iter()
            .any(|t| t.host() == "cloudflare-dns.com"));
    }
}
