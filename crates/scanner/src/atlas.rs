//! RIPE-Atlas-style probing of ISP local resolvers for DoT support
//! (§3.1, footnote 1: 24 of 6,655 probes succeed — 0.3% — after excluding
//! probes whose "local" resolver is really a public one).

use dnswire::{builder, Rcode, RecordType};
use doe_protocols::dot::DotClient;
use netsim::Network;
use tlssim::{DateStamp, TlsClientConfig, TrustStore};
use worldgen::AtlasProbe;

/// Outcome of the local-resolver study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasReport {
    /// Probes available.
    pub total_probes: usize,
    /// Probes excluded for using well-known public resolvers.
    pub excluded_public: usize,
    /// Probes whose local resolver completed a DoT lookup.
    pub dot_capable: usize,
}

impl AtlasReport {
    /// The headline rate (paper: 0.3%).
    pub fn success_rate(&self) -> f64 {
        let tested = self.total_probes - self.excluded_public;
        if tested == 0 {
            0.0
        } else {
            self.dot_capable as f64 / tested as f64
        }
    }
}

/// Ask every probe's local resolver for our domain over DoT.
pub fn local_resolver_probe(
    net: &mut Network,
    probes: &[AtlasProbe],
    probe_apex: &str,
    store: &TrustStore,
    now: DateStamp,
) -> AtlasReport {
    let mut excluded = 0usize;
    let mut capable = 0usize;
    for (i, probe) in probes.iter().enumerate() {
        if probe.uses_public_resolver {
            excluded += 1;
            continue;
        }
        let mut dot = DotClient::new(TlsClientConfig::opportunistic(store.clone(), now));
        let qname = format!("atlas{i}.{probe_apex}");
        let Ok(query) = builder::query(crate::txid(i), &qname, RecordType::A) else {
            continue;
        };
        if let Ok(reply) = dot.query_once(net, probe.ip, probe.local_resolver, None, &query) {
            if reply.message.rcode() == Rcode::NoError {
                capable += 1;
            }
        }
    }
    AtlasReport {
        total_probes: probes.len(),
        excluded_public: excluded,
        dot_capable: capable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::{World, WorldConfig};

    #[test]
    fn isp_dot_support_is_scarce() {
        let mut world = World::build(WorldConfig {
            scale: 0.15, // enough probes for the rate to be meaningful
            ..WorldConfig::test_scale(11)
        });
        let probes = world.atlas.clone();
        let apex = world.probe.apex.to_string();
        let apex = apex.trim_end_matches('.');
        let store = world.trust_store.clone();
        let now = world.epoch();
        let report = local_resolver_probe(&mut world.net, &probes, apex, &store, now);
        assert!(report.total_probes > 500);
        assert!(report.excluded_public > 0);
        // Ground truth check: measured capability equals deployment truth.
        let truth = probes
            .iter()
            .filter(|p| !p.uses_public_resolver && p.resolver_has_dot)
            .count();
        assert_eq!(report.dot_capable, truth);
        assert!(
            report.success_rate() < 0.05,
            "rate {} should be scarce",
            report.success_rate()
        );
    }
}
