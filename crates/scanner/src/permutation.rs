//! Full-period random permutation of probe order.
//!
//! ZMap iterates a cyclic group so that (a) every address is visited
//! exactly once and (b) consecutive probes land far apart, spreading load.
//! We use a full-period power-of-two LCG with cycle walking: the LCG
//! permutes `[0, 2^k)` for the smallest `2^k ≥ n`, and out-of-range values
//! are skipped. By the Hull–Dobell theorem the LCG has full period when
//! `c` is odd and `a ≡ 1 (mod 4)`, so the walk visits each of the `n`
//! targets exactly once per cycle.

/// Seed-derived LCG parameters over `[0, 2^k)` for the smallest
/// `2^k ≥ n`: `(mask, a, c, start)` with full-period conditions forced
/// (`a ≡ 1 (mod 4)`, `c` odd).
fn lcg_params(n: u64, seed: u64) -> (u64, u64, u64, u64) {
    let k = 64 - (n - 1).leading_zeros() as u64;
    let size = 1u64 << k.max(1);
    let mask = size - 1;
    let a = (((seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1) & !2) & mask | 5) & mask;
    let c = (seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1) & mask;
    let start = seed.wrapping_mul(0x94d0_49bb_1331_11eb) & mask;
    (mask, a, c, start)
}

/// A deterministic permutation of `[0, n)`.
#[derive(Debug, Clone)]
pub struct RandomPermutation {
    n: u64,
    modulus_mask: u64,
    a: u64,
    c: u64,
    state: u64,
    start: u64,
    emitted: u64,
}

impl RandomPermutation {
    /// Build a permutation of `[0, n)` seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty permutation");
        let (mask, a, c, start) = lcg_params(n, seed);
        RandomPermutation {
            n,
            modulus_mask: mask,
            a,
            c,
            state: start,
            start,
            emitted: 0,
        }
    }

    /// Number of targets.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false (n > 0 enforced).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Iterator for RandomPermutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted == self.n {
            return None;
        }
        loop {
            let value = self.state;
            self.state = self.state.wrapping_mul(self.a).wrapping_add(self.c) & self.modulus_mask;
            // Full period: returning to the start means the cycle is done,
            // but emitted-count already guards termination.
            if value < self.n {
                self.emitted += 1;
                return Some(value);
            }
            debug_assert!(
                self.state != self.start || self.emitted == self.n,
                "LCG cycled early"
            );
        }
    }
}

/// One of `shards` interleaved slices of a [`RandomPermutation`]'s cycle —
/// zmap's `--shards`/`--shard` partitioning.
///
/// Shard `s` walks exactly the cycle positions `j ≡ s (mod shards)` of the
/// full LCG cycle (before cycle-walking filters out-of-range values), so
/// the shards are pairwise disjoint and together cover `[0, n)`. Instead
/// of stepping and discarding, each shard jumps ahead `shards` steps at a
/// time using the composed affine map `x → a^N·x + c·(a^{N-1}+…+1)`,
/// making per-shard work `O(2^k / shards)`.
///
/// Items are `(cycle_position, value)` pairs; the cycle position gives a
/// total order across shards, letting a parallel sweep merge shard outputs
/// back into the exact sequential probe order.
#[derive(Debug, Clone)]
pub struct PermutationShard {
    n: u64,
    modulus_mask: u64,
    /// Multiplier of the `shards`-step composed map.
    big_a: u64,
    /// Increment of the `shards`-step composed map.
    big_c: u64,
    state: u64,
    /// Global cycle position of `state`.
    pos: u64,
    /// Stride between consecutive positions this shard owns.
    stride: u64,
    /// Cycle positions left to visit.
    remaining: u64,
}

impl PermutationShard {
    /// Shard `shard` of `shards` over the permutation of `[0, n)` seeded
    /// by `seed`. All shards of the same `(n, seed, shards)` family
    /// partition the permutation; `shards == 1` reproduces
    /// [`RandomPermutation`] exactly (with positions attached).
    ///
    /// # Panics
    /// Panics if `n == 0`, `shards == 0`, or `shard >= shards`.
    pub fn new(n: u64, seed: u64, shard: u64, shards: u64) -> Self {
        assert!(n > 0, "empty permutation");
        assert!(shards > 0, "need at least one shard");
        assert!(shard < shards, "shard index out of range");
        let (mask, a, c, start) = lcg_params(n, seed);
        let size = mask.wrapping_add(1); // 2^k; k ≥ 1 so no overflow for n ≤ 2^63
                                         // Advance to this shard's first cycle position.
        let mut state = start;
        for _ in 0..shard {
            state = state.wrapping_mul(a).wrapping_add(c) & mask;
        }
        // Compose the N-step affine map by exponentiation-by-squaring:
        // stepping N times is x → a^N·x + c·(a^{N-1} + … + a + 1).
        let (mut big_a, mut big_c) = (1u64, 0u64);
        let (mut cur_a, mut cur_c) = (a, c);
        let mut e = shards;
        while e > 0 {
            if e & 1 == 1 {
                big_c = cur_a.wrapping_mul(big_c).wrapping_add(cur_c) & mask;
                big_a = cur_a.wrapping_mul(big_a) & mask;
            }
            cur_c = cur_a.wrapping_mul(cur_c).wrapping_add(cur_c) & mask;
            cur_a = cur_a.wrapping_mul(cur_a) & mask;
            e >>= 1;
        }
        PermutationShard {
            n,
            modulus_mask: mask,
            big_a,
            big_c,
            state,
            pos: shard,
            stride: shards,
            remaining: size.saturating_sub(shard).div_ceil(shards),
        }
    }

    /// Number of targets in the full permutation (not this shard).
    pub fn space_len(&self) -> u64 {
        self.n
    }
}

impl Iterator for PermutationShard {
    /// `(global cycle position, permuted value)`.
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        while self.remaining > 0 {
            let (pos, value) = (self.pos, self.state);
            self.remaining -= 1;
            self.state =
                self.state.wrapping_mul(self.big_a).wrapping_add(self.big_c) & self.modulus_mask;
            self.pos += self.stride;
            if value < self.n {
                return Some((pos, value));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn visits_every_index_exactly_once() {
        for n in [1u64, 2, 3, 7, 100, 255, 256, 257, 10_000] {
            let seen: HashSet<u64> = RandomPermutation::new(n, 42).collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            assert!(seen.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = RandomPermutation::new(1000, 1).collect();
        let b: Vec<u64> = RandomPermutation::new(1000, 2).collect();
        assert_ne!(a, b);
        // Same seed is stable.
        let c: Vec<u64> = RandomPermutation::new(1000, 1).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn order_is_scattered_not_sequential() {
        let order: Vec<u64> = RandomPermutation::new(4096, 7).take(64).collect();
        let adjacent = order
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
            .count();
        assert!(adjacent < 5, "too sequential: {adjacent} adjacent pairs");
    }

    #[test]
    fn large_space_terminates() {
        // A /8-scale space iterates fully without hanging.
        let n = 1u64 << 24;
        let count = RandomPermutation::new(n, 3).count() as u64;
        assert_eq!(count, n);
    }

    #[test]
    fn single_shard_matches_full_permutation() {
        for n in [1u64, 2, 3, 100, 255, 256, 257] {
            let full: Vec<u64> = RandomPermutation::new(n, 11).collect();
            let shard: Vec<u64> = PermutationShard::new(n, 11, 0, 1).map(|(_, v)| v).collect();
            assert_eq!(full, shard, "n={n}");
        }
    }

    #[test]
    fn shards_partition_the_permutation() {
        for shards in [1u64, 2, 3, 4, 7, 8, 16] {
            let n = 1000u64;
            let mut seen = HashSet::new();
            for s in 0..shards {
                for (_, v) in PermutationShard::new(n, 5, s, shards) {
                    assert!(v < n);
                    assert!(seen.insert(v), "value {v} emitted twice (shards={shards})");
                }
            }
            assert_eq!(seen.len() as u64, n, "shards={shards}");
        }
    }

    #[test]
    fn merge_by_position_recovers_sequential_order() {
        let n = 500u64;
        let full: Vec<u64> = RandomPermutation::new(n, 23).collect();
        for shards in [2u64, 3, 8] {
            let mut tagged: Vec<(u64, u64)> = (0..shards)
                .flat_map(|s| PermutationShard::new(n, 23, s, shards))
                .collect();
            tagged.sort_by_key(|&(pos, _)| pos);
            let merged: Vec<u64> = tagged.into_iter().map(|(_, v)| v).collect();
            assert_eq!(full, merged, "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_cycle_size_is_fine() {
        // n=3 → cycle size 4; 16 shards means most shards are empty.
        let n = 3u64;
        let all: Vec<u64> = (0..16)
            .flat_map(|s| PermutationShard::new(n, 9, s, 16).map(|(_, v)| v))
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
