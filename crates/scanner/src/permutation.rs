//! Full-period random permutation of probe order.
//!
//! ZMap iterates a cyclic group so that (a) every address is visited
//! exactly once and (b) consecutive probes land far apart, spreading load.
//! We use a full-period power-of-two LCG with cycle walking: the LCG
//! permutes `[0, 2^k)` for the smallest `2^k ≥ n`, and out-of-range values
//! are skipped. By the Hull–Dobell theorem the LCG has full period when
//! `c` is odd and `a ≡ 1 (mod 4)`, so the walk visits each of the `n`
//! targets exactly once per cycle.

/// A deterministic permutation of `[0, n)`.
#[derive(Debug, Clone)]
pub struct RandomPermutation {
    n: u64,
    modulus_mask: u64,
    a: u64,
    c: u64,
    state: u64,
    start: u64,
    emitted: u64,
}

impl RandomPermutation {
    /// Build a permutation of `[0, n)` seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty permutation");
        let k = 64 - (n - 1).leading_zeros() as u64;
        let size = 1u64 << k.max(1);
        let mask = size - 1;
        // Derive multiplier/increment from the seed, forcing full-period
        // conditions: a ≡ 1 (mod 4), c odd.
        let a = ((seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1) & !2) & mask | 5;
        let c = (seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) | 1) & mask;
        let start = seed.wrapping_mul(0x94d0_49bb_1331_11eb) & mask;
        RandomPermutation {
            n,
            modulus_mask: mask,
            a: a & mask,
            c,
            state: start,
            start,
            emitted: 0,
        }
    }

    /// Number of targets.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false (n > 0 enforced).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Iterator for RandomPermutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted == self.n {
            return None;
        }
        loop {
            let value = self.state;
            self.state = self
                .state
                .wrapping_mul(self.a)
                .wrapping_add(self.c)
                & self.modulus_mask;
            // Full period: returning to the start means the cycle is done,
            // but emitted-count already guards termination.
            if value < self.n {
                self.emitted += 1;
                return Some(value);
            }
            debug_assert!(
                self.state != self.start || self.emitted == self.n,
                "LCG cycled early"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn visits_every_index_exactly_once() {
        for n in [1u64, 2, 3, 7, 100, 255, 256, 257, 10_000] {
            let seen: HashSet<u64> = RandomPermutation::new(n, 42).collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            assert!(seen.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = RandomPermutation::new(1000, 1).collect();
        let b: Vec<u64> = RandomPermutation::new(1000, 2).collect();
        assert_ne!(a, b);
        // Same seed is stable.
        let c: Vec<u64> = RandomPermutation::new(1000, 1).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn order_is_scattered_not_sequential() {
        let order: Vec<u64> = RandomPermutation::new(4096, 7).take(64).collect();
        let adjacent = order
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
            .count();
        assert!(adjacent < 5, "too sequential: {adjacent} adjacent pairs");
    }

    #[test]
    fn large_space_terminates() {
        // A /8-scale space iterates fully without hanging.
        let n = 1u64 << 24;
        let count = RandomPermutation::new(n, 3).count() as u64;
        assert_eq!(count, n);
    }
}
