//! The ten-epoch longitudinal scanning campaign (§3.1): every 10 days from
//! Feb 1 to May 1 2019, sweep the space, verify DoT, classify certificates.

use crate::observation::{CertClass, ObservationTable};
use crate::sweep::{syn_sweep_sharded, AddressSpace, SweepStats};
use crate::verify::verify_resolvers_sharded;
use netsim::telemetry::Labels;
use netsim::Netblock;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use tlssim::DateStamp;
use worldgen::World;

/// Certificate-health histogram (Finding 1.2's buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertBuckets {
    /// Verifies against the trust store.
    pub valid: usize,
    /// Expired (or not yet valid).
    pub expired: usize,
    /// Self-signed.
    pub self_signed: usize,
    /// Broken/incomplete chain.
    pub broken_chain: usize,
    /// Signed by an untrusted CA.
    pub untrusted_ca: usize,
}

impl CertBuckets {
    /// Total invalid certificates.
    pub fn invalid(&self) -> usize {
        self.expired + self.self_signed + self.broken_chain + self.untrusted_ca
    }
}

/// What one scan epoch found.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Scan date.
    pub date: DateStamp,
    /// Raw SYN sweep counters (the paper's "2 to 3 million hosts with
    /// port 853 open" corresponds to `stats.open`).
    pub stats: SweepStats,
    /// Verified open DoT resolvers.
    pub open_resolvers: usize,
    /// Open resolvers per country.
    pub by_country: BTreeMap<String, usize>,
    /// Open resolvers per provider key.
    pub by_provider: BTreeMap<String, usize>,
    /// Certificate buckets over open resolvers.
    pub certs: CertBuckets,
    /// Providers with at least one invalid certificate.
    pub providers_with_invalid: usize,
    /// Providers operating exactly one address.
    pub single_address_providers: usize,
    /// Open resolvers whose answers failed validation (dnsfilter-style).
    pub wrong_answer_resolvers: Vec<Ipv4Addr>,
    /// Open resolvers that appear in the public DoT list.
    pub in_public_list: usize,
    /// Full per-resolver observations, packed columnar (SoA) — at paper
    /// scale an epoch verifies 2–3M candidates, so boxing each one is not
    /// an option.
    pub observations: ObservationTable,
}

impl EpochSummary {
    /// Provider count.
    pub fn provider_count(&self) -> usize {
        self.by_provider.len()
    }

    /// Share of addresses owned by the largest `n` providers.
    pub fn top_provider_share(&self, n: usize) -> f64 {
        let mut counts: Vec<usize> = self.by_provider.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = counts.iter().take(n).sum();
        let total: usize = counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            top as f64 / total as f64
        }
    }
}

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One summary per epoch, in order.
    pub epochs: Vec<EpochSummary>,
}

impl CampaignReport {
    /// Country growth between the first and last epoch, as
    /// `(country, first, last, growth_percent)` sorted by first-epoch count
    /// — Table 2's columns.
    pub fn country_growth(&self) -> Vec<(String, usize, usize, f64)> {
        let (Some(first), Some(last)) = (self.epochs.first(), self.epochs.last()) else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        let countries: BTreeSet<&String> = first
            .by_country
            .keys()
            .chain(last.by_country.keys())
            .collect();
        for cc in countries {
            let a = first.by_country.get(cc).copied().unwrap_or(0);
            let b = last.by_country.get(cc).copied().unwrap_or(0);
            let growth = if a == 0 {
                100.0 * b as f64
            } else {
                100.0 * (b as f64 - a as f64) / a as f64
            };
            rows.push((cc.clone(), a, b, growth));
        }
        rows.sort_by_key(|row| std::cmp::Reverse(row.1));
        rows
    }
}

/// The honest target space: every block the world routes servers in.
pub fn full_space(world: &World) -> AddressSpace {
    AddressSpace::new(world.scan_space.clone())
}

/// A whitelist-narrowed space for debug runs and unit tests: the /24s of
/// the scan space that are actually populated (zmap's `-w` file). Release
/// reproduction runs use [`full_space`].
pub fn compact_space(world: &World) -> AddressSpace {
    // Sorted, merged interval index over the scan space: membership for a
    // host is a binary search instead of a linear pass over every block
    // (the old scan was O(hosts × blocks)).
    let mut intervals: Vec<(u64, u64)> = world
        .scan_space
        .iter()
        .map(|b| {
            let start = u32::from(b.network()) as u64;
            (start, start + b.size() - 1)
        })
        .collect();
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 + 1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let in_space = |ip: Ipv4Addr| {
        let v = u32::from(ip) as u64;
        let k = merged.partition_point(|&(s, _)| s <= v);
        k > 0 && v <= merged[k - 1].1
    };
    let mut blocks: BTreeSet<Netblock> = BTreeSet::new();
    for ip in world.net.host_ips() {
        if in_space(ip) {
            blocks.insert(Netblock::slash24(ip));
        }
    }
    // Include every resolver that may come online in later epochs.
    for r in &world.deployment.dot_resolvers {
        blocks.insert(Netblock::slash24(r.addr));
    }
    // Junk port-853 hosts live in shared host bands, invisible to
    // `host_ips`. A full band is millions of addresses; the compact
    // space samples the first /24 of each so debug-scale campaigns
    // still see the open-but-not-DoT population's classification mix.
    for band in world.net.bands() {
        blocks.insert(Netblock::slash24(band.start));
    }
    AddressSpace::new(blocks.into_iter().collect())
}

/// Run one epoch's sweep + verification against the world's current state.
///
/// Equivalent to [`scan_epoch_sharded`] with one shard.
pub fn scan_epoch(
    world: &mut World,
    space: &AddressSpace,
    epoch: usize,
    seed: u64,
) -> EpochSummary {
    scan_epoch_sharded(world, space, epoch, seed, 1)
}

/// Run one epoch split across `shards` worker threads. The summary is
/// identical for every shard count — both the sweep and the verification
/// pass key their randomness on the target, not the shard.
pub fn scan_epoch_sharded(
    world: &mut World,
    space: &AddressSpace,
    epoch: usize,
    seed: u64,
    shards: usize,
) -> EpochSummary {
    let date = world.epoch();
    let sources = world.scanner_sources.clone();
    let sweep = syn_sweep_sharded(
        &mut world.net,
        &sources,
        space,
        853,
        seed ^ (epoch as u64) << 32,
        shards,
    );
    let store = world.trust_store.clone();
    let apex = world.probe.apex.to_string();
    let apex = apex.trim_end_matches('.').to_string();
    let expected = world.probe.expected_a;
    let observations = verify_resolvers_sharded(
        &mut world.net,
        &sources,
        &sweep.open_addrs,
        &apex,
        expected,
        &store,
        date,
        &format!("e{epoch}"),
        shards,
    );

    let mut by_country: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_provider: BTreeMap<String, usize> = BTreeMap::new();
    let mut provider_invalid: BTreeMap<String, bool> = BTreeMap::new();
    let mut certs = CertBuckets::default();
    let mut wrong_answer = Vec::new();
    let mut in_public = 0usize;
    let public: BTreeSet<Ipv4Addr> = world.deployment.public_dot_list.iter().copied().collect();

    for obs in observations.rows() {
        if !obs.is_open_resolver() {
            continue;
        }
        let (country, _asn, _region) = world.net.attribution(obs.addr);
        *by_country.entry(country.as_str().to_string()).or_default() += 1;
        if let Some(provider) = obs.provider {
            *by_provider.entry(provider.to_string()).or_default() += 1;
            let invalid = obs.cert.map(CertClass::is_invalid).unwrap_or(false);
            let entry = provider_invalid.entry(provider.to_string()).or_default();
            *entry = *entry || invalid;
        }
        match obs.cert {
            Some(CertClass::Valid) => certs.valid += 1,
            Some(CertClass::Expired) => certs.expired += 1,
            Some(CertClass::SelfSigned) => certs.self_signed += 1,
            Some(CertClass::InvalidChain) => certs.broken_chain += 1,
            Some(CertClass::UntrustedCa) => certs.untrusted_ca += 1,
            None => {}
        }
        if obs.answer_correct == Some(false) {
            wrong_answer.push(obs.addr);
        }
        if public.contains(&obs.addr) {
            in_public += 1;
        }
    }

    EpochSummary {
        epoch,
        date,
        stats: sweep.stats,
        open_resolvers: observations.open_resolvers(),
        single_address_providers: by_provider.values().filter(|&&n| n == 1).count(),
        providers_with_invalid: provider_invalid.values().filter(|&&v| v).count(),
        by_country,
        by_provider,
        certs,
        wrong_answer_resolvers: wrong_answer,
        in_public_list: in_public,
        observations,
    }
}

/// Run the full campaign: `epochs` scans at the configured cadence.
///
/// Equivalent to [`run_campaign_sharded`] with one shard.
pub fn run_campaign(
    world: &mut World,
    space: &AddressSpace,
    epochs: usize,
    seed: u64,
) -> CampaignReport {
    run_campaign_sharded(world, space, epochs, seed, 1)
}

/// Run the full campaign with each epoch's sweep and verification split
/// across `shards` worker threads. The report is shard-count invariant.
pub fn run_campaign_sharded(
    world: &mut World,
    space: &AddressSpace,
    epochs: usize,
    seed: u64,
    shards: usize,
) -> CampaignReport {
    let mut summaries = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let date = world.config.scan_date(epoch);
        world.set_epoch(date);
        let summary = scan_epoch_sharded(world, space, epoch, seed, shards);
        // Per-epoch accounting lives in the registry, same store as the
        // sweep counters the summary itself is derived from.
        world
            .net
            .metrics_mut()
            .count("stage.campaign.epochs", Labels::empty(), 1);
        world.net.metrics_mut().count(
            "stage.campaign.open_resolvers",
            Labels::one("epoch", &format!("e{epoch}")),
            summary.open_resolvers as u64,
        );
        summaries.push(summary);
    }
    CampaignReport { epochs: summaries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::WorldConfig;

    #[test]
    fn two_epoch_campaign_recovers_ground_truth_shape() {
        let mut world = World::build(WorldConfig::test_scale(7));
        let space = compact_space(&world);
        // First and last epoch only, to keep the test quick.
        let first_date = world.config.scan_date(0);
        world.set_epoch(first_date);
        let feb = scan_epoch(&mut world, &space, 0, 1);
        let truth_feb = world.online_dot_resolvers();
        assert!(
            (feb.open_resolvers as i64 - truth_feb as i64).abs() <= truth_feb as i64 / 20,
            "measured {} vs truth {truth_feb}",
            feb.open_resolvers
        );

        let last_date = world.config.scan_date(9);
        world.set_epoch(last_date);
        let may = scan_epoch(&mut world, &space, 9, 1);
        let truth_may = world.online_dot_resolvers();
        assert!(may.open_resolvers > feb.open_resolvers, "growth");
        assert!(
            (may.open_resolvers as i64 - truth_may as i64).abs() <= truth_may as i64 / 20,
            "measured {} vs truth {truth_may}",
            may.open_resolvers
        );

        // Table 2 shape: IE grows, CN collapses, US quadruples.
        let ie_feb = feb.by_country.get("IE").copied().unwrap_or(0);
        let ie_may = may.by_country.get("IE").copied().unwrap_or(0);
        assert!(
            ie_may as f64 > 1.7 * ie_feb as f64,
            "IE {ie_feb} → {ie_may}"
        );
        let cn_feb = feb.by_country.get("CN").copied().unwrap_or(0);
        let cn_may = may.by_country.get("CN").copied().unwrap_or(0);
        assert!(cn_may * 4 < cn_feb, "CN {cn_feb} → {cn_may}");

        // Finding 1.2: ~25% of providers hold an invalid certificate.
        let frac = may.providers_with_invalid as f64 / may.provider_count() as f64;
        assert!((0.15..0.40).contains(&frac), "invalid providers {frac}");
        // Cert buckets in paper proportion.
        assert!(may.certs.self_signed > may.certs.expired);
        assert!(may.certs.invalid() > 100, "{:?}", may.certs);

        // The long tail: most providers run one address; top providers
        // dominate.
        let singles = may.single_address_providers as f64 / may.provider_count() as f64;
        assert!(singles > 0.5, "singles {singles}");
        assert!(may.top_provider_share(5) > 0.6);

        // dnsfilter-style wrong answers observed.
        assert!(!may.wrong_answer_resolvers.is_empty());

        // Far more resolvers than the public list advertises.
        assert!(may.open_resolvers > may.in_public_list * 10);
    }
}
