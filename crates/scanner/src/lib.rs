//! # doe-scanner — Internet-wide discovery of DNS-over-Encryption servers
//!
//! Reproduces Section 3 of the paper:
//!
//! * [`permutation`] — ZMap-style full-period random permutation of the
//!   target address space, so probes arrive in an order uncorrelated with
//!   address locality (§3.1: "cover the entire IPv4 address space in a
//!   random order"),
//! * [`sweep`] — the port-853 SYN sweep from the three scanner sources,
//! * [`verify`] — the getdns-style application-layer check: a DoT query
//!   for the study's own domain decides "open DoT resolver", the
//!   certificate chain is collected openssl-style and classified
//!   (Finding 1.2), answers are validated against authoritative ground
//!   truth, and providers are grouped by certificate CN / SLD,
//! * [`doh_discovery`] — grepping the URL corpus for common DoH paths and
//!   validating candidates with real DoH queries (§3.1's second half),
//! * [`campaign`] — the ten-epoch longitudinal campaign producing the
//!   series behind Figure 3, Figure 4 and Table 2,
//! * [`atlas`] — the RIPE-Atlas-style probe of ISP local resolvers
//!   (footnote 1: 24 of 6,655 probes, excluding those configured with
//!   public resolvers).

pub mod atlas;
pub mod campaign;

/// Derive a DNS transaction id from a probe counter. The single blessed
/// narrowing in this crate: the mask makes the 16-bit wrap explicit
/// instead of letting `as u16` truncate silently at probe 65 536.
pub(crate) fn txid(i: usize) -> u16 {
    (i & 0xFFFF) as u16 // doe-lint: allow(D005) — masked to the u16 domain on the previous token
}

pub mod doh_discovery;
pub mod observation;
pub mod permutation;
pub mod provider;
pub mod sweep;
pub mod verify;

pub use atlas::{local_resolver_probe, AtlasReport};
pub use campaign::{run_campaign, run_campaign_sharded, CampaignReport, EpochSummary};
pub use doh_discovery::{discover_doh, DohDiscoveryReport, DohObservation};
pub use observation::{CertClass, ObservationRow, ObservationTable};
pub use permutation::{PermutationShard, RandomPermutation};
pub use provider::provider_key;
pub use sweep::{syn_sweep, syn_sweep_sharded, AddressSpace, SweepResult, SweepStats};
pub use verify::{
    verify_resolvers, verify_resolvers_sharded, DotObservation, ProbeTemplate, VerifyOutcome,
};
