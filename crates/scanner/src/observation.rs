//! Column-oriented (SoA) storage for per-host verification results.
//!
//! A full-scale sweep verifies 2–3M port-853-open hosts per epoch. Boxing
//! each observation (a `Vec<DotObservation>` with its `String` provider
//! key and `Vec<Certificate>` chain) costs hundreds of bytes per host, but
//! the campaign aggregation only ever reads five small facts per host.
//! [`ObservationTable`] packs those into parallel columns — eleven bytes a
//! row plus a provider string-intern table — so ten epochs of full-scale
//! observations fit in memory comfortably.

use crate::verify::{DotObservation, VerifyOutcome};
use dnswire::Rcode;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tlssim::CertStatus;

/// Certificate classification reduced to its bucket.
///
/// [`CertStatus::UntrustedCa`] carries the offending issuer name, which
/// matters when reporting a single probe but never in campaign
/// aggregation; the table keeps only the bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertClass {
    /// Chain verifies against the trust store.
    Valid,
    /// Leaf outside its validity window.
    Expired,
    /// Single self-signed certificate.
    SelfSigned,
    /// Chain does not link up.
    InvalidChain,
    /// Links up but the root is not in the store.
    UntrustedCa,
}

impl CertClass {
    /// Collapse a full [`CertStatus`] to its bucket.
    pub fn of(status: &CertStatus) -> Self {
        match status {
            CertStatus::Valid => CertClass::Valid,
            CertStatus::Expired => CertClass::Expired,
            CertStatus::SelfSigned => CertClass::SelfSigned,
            CertStatus::InvalidChain => CertClass::InvalidChain,
            CertStatus::UntrustedCa { .. } => CertClass::UntrustedCa,
        }
    }

    /// Anything but [`CertClass::Valid`] counts as invalid (§4.2).
    pub fn is_invalid(self) -> bool {
        self != CertClass::Valid
    }

    /// Stable metrics/report label.
    pub fn label(self) -> &'static str {
        match self {
            CertClass::Valid => "valid",
            CertClass::Expired => "expired",
            CertClass::SelfSigned => "self_signed",
            CertClass::InvalidChain => "invalid_chain",
            CertClass::UntrustedCa => "untrusted_ca",
        }
    }
}

// Outcome column encoding: low nibble is the class, high nibble carries
// the RCODE for `AnsweredError`.
const OUTCOME_OPEN: u8 = 0;
const OUTCOME_ANSWERED_ERROR: u8 = 1;
const OUTCOME_NOT_DNS: u8 = 2;
const OUTCOME_NOT_TLS: u8 = 3;
const OUTCOME_CONNECT_FAILED: u8 = 4;

fn encode_outcome(outcome: &VerifyOutcome) -> u8 {
    match outcome {
        VerifyOutcome::OpenResolver => OUTCOME_OPEN,
        VerifyOutcome::AnsweredError(rcode) => OUTCOME_ANSWERED_ERROR | (rcode.to_u8() << 4),
        VerifyOutcome::NotDns => OUTCOME_NOT_DNS,
        VerifyOutcome::NotTls => OUTCOME_NOT_TLS,
        VerifyOutcome::ConnectFailed => OUTCOME_CONNECT_FAILED,
    }
}

fn decode_outcome(byte: u8) -> VerifyOutcome {
    match byte & 0x0f {
        OUTCOME_OPEN => VerifyOutcome::OpenResolver,
        OUTCOME_ANSWERED_ERROR => VerifyOutcome::AnsweredError(Rcode::from_u8(byte >> 4)),
        OUTCOME_NOT_DNS => VerifyOutcome::NotDns,
        OUTCOME_NOT_TLS => VerifyOutcome::NotTls,
        _ => VerifyOutcome::ConnectFailed,
    }
}

// Cert column: 0 = TLS never completed, otherwise 1 + bucket.
const CERT_NONE: u8 = 0;

fn encode_cert(cert: Option<CertClass>) -> u8 {
    match cert {
        None => CERT_NONE,
        Some(CertClass::Valid) => 1,
        Some(CertClass::Expired) => 2,
        Some(CertClass::SelfSigned) => 3,
        Some(CertClass::InvalidChain) => 4,
        Some(CertClass::UntrustedCa) => 5,
    }
}

fn decode_cert(byte: u8) -> Option<CertClass> {
    match byte {
        CERT_NONE => None,
        1 => Some(CertClass::Valid),
        2 => Some(CertClass::Expired),
        3 => Some(CertClass::SelfSigned),
        4 => Some(CertClass::InvalidChain),
        _ => Some(CertClass::UntrustedCa),
    }
}

// Answer column: 0 = no answer observed, 1 = correct, 2 = wrong.
const ANSWER_NONE: u8 = 0;
const ANSWER_CORRECT: u8 = 1;
const ANSWER_WRONG: u8 = 2;

/// Sentinel provider id for "no certificate, no provider".
const PROVIDER_NONE: u16 = u16::MAX;

/// One decoded row of an [`ObservationTable`].
///
/// Cheap to produce (`provider` borrows from the intern table); this is
/// the aggregation-facing replacement for [`DotObservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservationRow<'t> {
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Outcome class.
    pub outcome: VerifyOutcome,
    /// Certificate bucket (when TLS completed).
    pub cert: Option<CertClass>,
    /// Provider grouping key from the leaf CN.
    pub provider: Option<&'t str>,
    /// Whether the answer matched authoritative ground truth.
    pub answer_correct: Option<bool>,
}

impl ObservationRow<'_> {
    /// Whether this host counts as an open DoT resolver.
    pub fn is_open_resolver(&self) -> bool {
        self.outcome == VerifyOutcome::OpenResolver
    }
}

/// Packed per-host verification results, one row per probed candidate.
///
/// Rows are stored in candidate order. Provider keys are interned in
/// first-seen row order, so two tables built from the same observation
/// sequence — regardless of how the work was sharded — compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservationTable {
    addrs: Vec<u32>,
    outcomes: Vec<u8>,
    certs: Vec<u8>,
    providers: Vec<u16>,
    answers: Vec<u8>,
    provider_names: Vec<String>,
    provider_index: BTreeMap<String, u16>,
}

impl ObservationTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with row capacity reserved.
    pub fn with_capacity(rows: usize) -> Self {
        ObservationTable {
            addrs: Vec::with_capacity(rows),
            outcomes: Vec::with_capacity(rows),
            certs: Vec::with_capacity(rows),
            providers: Vec::with_capacity(rows),
            answers: Vec::with_capacity(rows),
            provider_names: Vec::new(),
            provider_index: BTreeMap::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Distinct provider keys seen so far.
    pub fn provider_names(&self) -> &[String] {
        &self.provider_names
    }

    fn intern(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.provider_index.get(name) {
            return id;
        }
        let len = self.provider_names.len();
        assert!(
            len < usize::from(PROVIDER_NONE),
            "provider intern table overflow"
        );
        // The assert guarantees the conversion fits; the fallback arm is
        // unreachable.
        let id = u16::try_from(len).unwrap_or(PROVIDER_NONE);
        self.provider_names.push(name.to_string());
        self.provider_index.insert(name.to_string(), id);
        id
    }

    /// Append a full observation, compacting it to one row.
    pub fn push(&mut self, obs: &DotObservation) {
        let provider = match &obs.provider {
            Some(name) => self.intern(name),
            None => PROVIDER_NONE,
        };
        self.addrs.push(u32::from(obs.addr));
        self.outcomes.push(encode_outcome(&obs.outcome));
        self.certs
            .push(encode_cert(obs.cert_status.as_ref().map(CertClass::of)));
        self.providers.push(provider);
        self.answers.push(match obs.answer_correct {
            None => ANSWER_NONE,
            Some(true) => ANSWER_CORRECT,
            Some(false) => ANSWER_WRONG,
        });
    }

    /// Append an already-compacted row (e.g. while merging shard tables).
    pub fn push_row(&mut self, row: ObservationRow<'_>) {
        let provider = match row.provider {
            Some(name) => self.intern(name),
            None => PROVIDER_NONE,
        };
        self.addrs.push(u32::from(row.addr));
        self.outcomes.push(encode_outcome(&row.outcome));
        self.certs.push(encode_cert(row.cert));
        self.providers.push(provider);
        self.answers.push(match row.answer_correct {
            None => ANSWER_NONE,
            Some(true) => ANSWER_CORRECT,
            Some(false) => ANSWER_WRONG,
        });
    }

    /// Decode row `k`.
    pub fn row(&self, k: usize) -> ObservationRow<'_> {
        ObservationRow {
            addr: Ipv4Addr::from(self.addrs[k]),
            outcome: decode_outcome(self.outcomes[k]),
            cert: decode_cert(self.certs[k]),
            provider: match self.providers[k] {
                PROVIDER_NONE => None,
                id => Some(self.provider_names[id as usize].as_str()),
            },
            answer_correct: match self.answers[k] {
                ANSWER_NONE => None,
                v => Some(v == ANSWER_CORRECT),
            },
        }
    }

    /// Iterate over all rows in candidate order.
    pub fn rows(&self) -> impl Iterator<Item = ObservationRow<'_>> + '_ {
        (0..self.len()).map(|k| self.row(k))
    }

    /// Rows classified as open resolvers.
    pub fn open_resolvers(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&b| b & 0x0f == OUTCOME_OPEN)
            .count()
    }

    /// Merge per-shard tables back into global candidate order.
    ///
    /// Shard `s` of `n` verified candidates `s, s+n, s+2n, …` in order and
    /// produced exactly one row each, so the global sequence is a strided
    /// round-robin over the shard tables. Provider keys are re-interned in
    /// merged order, which makes the result independent of the shard count.
    pub fn merge_striped(shards: &[ObservationTable]) -> ObservationTable {
        let total: usize = shards.iter().map(ObservationTable::len).sum();
        let mut merged = ObservationTable::with_capacity(total);
        let mut cursors = vec![0usize; shards.len()];
        for i in 0..total {
            let s = i % shards.len();
            merged.push_row(shards[s].row(cursors[s]));
            cursors[s] += 1;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        addr: &str,
        outcome: VerifyOutcome,
        cert_status: Option<CertStatus>,
        provider: Option<&str>,
        answer_correct: Option<bool>,
    ) -> DotObservation {
        DotObservation {
            addr: addr.parse().unwrap(),
            outcome,
            chain: Vec::new(),
            cert_status,
            provider: provider.map(str::to_string),
            answer_correct,
        }
    }

    #[test]
    fn rows_round_trip_through_the_columns() {
        let samples = vec![
            obs(
                "10.0.0.1",
                VerifyOutcome::OpenResolver,
                Some(CertStatus::Valid),
                Some("goodprov.net"),
                Some(true),
            ),
            obs(
                "10.0.0.2",
                VerifyOutcome::AnsweredError(Rcode::Refused),
                Some(CertStatus::SelfSigned),
                Some("FGT60D000"),
                None,
            ),
            obs(
                "10.0.0.3",
                VerifyOutcome::OpenResolver,
                Some(CertStatus::UntrustedCa {
                    ca_cn: "Shady CA".into(),
                }),
                Some("goodprov.net"),
                Some(false),
            ),
            obs("10.0.0.4", VerifyOutcome::NotTls, None, None, None),
            obs("10.0.0.5", VerifyOutcome::ConnectFailed, None, None, None),
        ];
        let mut table = ObservationTable::new();
        for s in &samples {
            table.push(s);
        }
        assert_eq!(table.len(), samples.len());
        assert_eq!(table.open_resolvers(), 2);
        // The two goodprov rows share one interned key.
        assert_eq!(table.provider_names().len(), 2);
        for (k, s) in samples.iter().enumerate() {
            let row = table.row(k);
            assert_eq!(row.addr, s.addr);
            assert_eq!(row.outcome, s.outcome);
            assert_eq!(row.cert, s.cert_status.as_ref().map(CertClass::of));
            assert_eq!(row.provider, s.provider.as_deref());
            assert_eq!(row.answer_correct, s.answer_correct);
            assert_eq!(row.is_open_resolver(), s.is_open_resolver());
        }
    }

    #[test]
    fn striped_merge_restores_candidate_order() {
        // Candidates 0..7 verified across 3 shards; provider first-seen
        // order differs per shard but the merged table re-interns.
        let all: Vec<DotObservation> = (0..7)
            .map(|i| {
                obs(
                    &format!("10.1.0.{i}"),
                    VerifyOutcome::OpenResolver,
                    Some(CertStatus::Valid),
                    Some(if i % 2 == 0 { "even.net" } else { "odd.net" }),
                    Some(true),
                )
            })
            .collect();
        let shards = 3usize;
        let tables: Vec<ObservationTable> = (0..shards)
            .map(|s| {
                let mut t = ObservationTable::new();
                for i in (s..all.len()).step_by(shards) {
                    t.push(&all[i]);
                }
                t
            })
            .collect();
        let merged = ObservationTable::merge_striped(&tables);
        assert_eq!(merged.len(), all.len());
        for (k, s) in all.iter().enumerate() {
            assert_eq!(merged.row(k).addr, s.addr);
            assert_eq!(merged.row(k).provider, s.provider.as_deref());
        }
        // Interned in merged (candidate) order: even before odd.
        assert_eq!(merged.provider_names(), &["even.net", "odd.net"]);

        // A single-shard build of the same sequence is bit-identical.
        let mut single = ObservationTable::new();
        for s in &all {
            single.push(s);
        }
        assert_eq!(merged, single);
    }
}
