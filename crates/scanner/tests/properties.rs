//! Property tests for the sharded scan engine: the permutation shards
//! must partition the target space exactly, and address-space indexing
//! must stay total over awkward block layouts.

use doe_scanner::permutation::{PermutationShard, RandomPermutation};
use doe_scanner::sweep::AddressSpace;
use netsim::Netblock;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Shards are a disjoint complete cover of `[0, len)` for arbitrary
    /// (len, seed, shards) — no target probed twice, none skipped.
    #[test]
    fn shards_partition_any_permutation(
        len in 1u64..5_000,
        seed in any::<u64>(),
        shards in 1u64..20,
    ) {
        let mut seen: HashSet<u64> = HashSet::with_capacity(len as usize);
        for s in 0..shards {
            for (_, v) in PermutationShard::new(len, seed, s, shards) {
                prop_assert!(v < len, "out-of-range value {v}");
                prop_assert!(seen.insert(v), "value {v} emitted by two shards");
            }
        }
        prop_assert_eq!(seen.len() as u64, len, "cover incomplete");
    }

    /// Merging shard outputs by cycle position recovers the sequential
    /// permutation exactly.
    #[test]
    fn shard_merge_equals_sequential(
        len in 1u64..2_000,
        seed in any::<u64>(),
        shards in 1u64..12,
    ) {
        let sequential: Vec<u64> = RandomPermutation::new(len, seed).collect();
        let mut tagged: Vec<(u64, u64)> = (0..shards)
            .flat_map(|s| PermutationShard::new(len, seed, s, shards))
            .collect();
        tagged.sort_by_key(|&(pos, _)| pos);
        let merged: Vec<u64> = tagged.into_iter().map(|(_, v)| v).collect();
        prop_assert_eq!(sequential, merged);
    }

    /// `AddressSpace::addr` round-trips every index over adjacent blocks
    /// (including minimum-size /32s) without panicking: each address lands
    /// inside the block that owns its index range.
    #[test]
    fn address_space_indexing_is_total(
        base in 0u32..0xF000_0000,
        lens in proptest::collection::vec(24u8..=32, 1..8),
    ) {
        // Lay blocks out adjacently: each next block starts right after
        // the previous one, so offsets include every boundary case.
        let mut blocks = Vec::with_capacity(lens.len());
        let mut cursor = base as u64;
        for &len in &lens {
            let block = Netblock::new(Ipv4AddrExt::from_u64(cursor), len);
            cursor = u32::from(block.network()) as u64 + block.size();
            blocks.push(block);
            if cursor > u32::MAX as u64 {
                break;
            }
        }
        let space = AddressSpace::new(blocks.clone());
        prop_assert_eq!(space.len(), blocks.iter().map(|b| b.size()).sum::<u64>());
        let mut offset = 0u64;
        for block in &blocks {
            for i in 0..block.size() {
                let addr = space.addr(offset + i);
                prop_assert!(block.contains(addr), "index {} escaped {block:?}", offset + i);
                prop_assert_eq!(addr, block.addr(i));
            }
            offset += block.size();
        }
    }
}

/// Helper for building addresses from u64 cursors in the proptest above.
struct Ipv4AddrExt;

impl Ipv4AddrExt {
    fn from_u64(v: u64) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from((v & 0xFFFF_FFFF) as u32)
    }
}
