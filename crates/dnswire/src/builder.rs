//! Convenience constructors for the messages the measurement pipeline sends.

use crate::edns::OptRecord;
use crate::error::WireError;
use crate::header::{Header, Rcode};
use crate::message::{Message, Question};
use crate::name::Name;
use crate::rr::{RecordType, ResourceRecord};

/// A recursion-desired query for `name`/`qtype` with transaction `id`.
pub fn query(id: u16, name: &str, qtype: RecordType) -> Result<Message, WireError> {
    let qname = Name::parse(name)?;
    let mut msg = Message::new(Header::new_query(id));
    msg.questions.push(Question::new(qname, qtype));
    Ok(msg)
}

/// Like [`query`], but with an EDNS OPT record advertising a 4096-byte
/// payload — the shape emitted by our stub resolvers.
pub fn edns_query(id: u16, name: &str, qtype: RecordType) -> Result<Message, WireError> {
    let mut msg = query(id, name, qtype)?;
    msg.set_opt(OptRecord::default());
    Ok(msg)
}

/// A NOERROR response answering `query` with `answers`.
pub fn answer(query: &Message, answers: Vec<ResourceRecord>) -> Message {
    let mut msg = Message::new(Header::new_response(&query.header, Rcode::NoError));
    msg.questions = query.questions.clone();
    msg.answers = answers;
    msg
}

/// An error response (`SERVFAIL`, `NXDOMAIN`, `REFUSED`, ...) echoing the
/// question section.
pub fn error_response(query: &Message, rcode: Rcode) -> Message {
    let mut msg = Message::new(Header::new_response(&query.header, rcode));
    msg.questions = query.questions.clone();
    msg
}

/// A NOERROR response with zero answers — one of the "Incorrect" outcomes
/// counted by the reachability study (Table 4, footnote 1).
pub fn empty_answer(query: &Message) -> Message {
    answer(query, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    #[test]
    fn query_builder_sets_rd() {
        let q = query(1, "example.com", RecordType::Aaaa).unwrap();
        assert!(q.header.recursion_desired);
        assert!(!q.header.response);
        assert_eq!(q.question().unwrap().qtype, RecordType::Aaaa);
    }

    #[test]
    fn edns_query_carries_opt() {
        let q = edns_query(1, "example.com", RecordType::A).unwrap();
        assert_eq!(q.opt().unwrap().udp_payload, crate::DEFAULT_EDNS_PAYLOAD);
    }

    #[test]
    fn answer_echoes_question_and_id() {
        let q = query(42, "example.com", RecordType::A).unwrap();
        let resp = answer(
            &q,
            vec![ResourceRecord::new(
                Name::parse("example.com").unwrap(),
                60,
                RData::A(Ipv4Addr::new(203, 0, 113, 1)),
            )],
        );
        assert_eq!(resp.id(), 42);
        assert!(resp.header.response);
        assert_eq!(resp.questions, q.questions);
        assert_eq!(resp.rcode(), Rcode::NoError);
    }

    #[test]
    fn error_response_carries_rcode() {
        let q = query(7, "blocked.example", RecordType::A).unwrap();
        let resp = error_response(&q, Rcode::ServFail);
        assert_eq!(resp.rcode(), Rcode::ServFail);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn empty_answer_is_noerror_with_no_records() {
        let q = query(7, "filtered.example", RecordType::A).unwrap();
        let resp = empty_answer(&q);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn invalid_name_propagates() {
        assert!(query(1, "bad..name", RecordType::A).is_err());
    }
}
