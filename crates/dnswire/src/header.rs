//! The fixed 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::error::WireError;
use serde::{Deserialize, Serialize};

/// DNS operation codes. Only `Query` is exercised by the pipeline, but the
/// full set decodes so hostile scans don't error out on unusual traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Standard query (0).
    Query,
    /// Inverse query (1, obsolete).
    IQuery,
    /// Server status (2).
    Status,
    /// Zone change notification (4).
    Notify,
    /// Dynamic update (5).
    Update,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl Opcode {
    /// Numeric value as carried in the header.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0f,
        }
    }

    /// Decode from the 4-bit field.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes.
///
/// The reachability analysis (§4.2, Table 4) classifies results into
/// *Correct* / *Incorrect* / *Failed*, where "Incorrect" covers SERVFAIL and
/// empty answers — so the exact RCODE matters to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2) — what misconfigured Quad9 DoH returns.
    ServFail,
    /// Name does not exist (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Query refused (5) — what closed resolvers return to strangers.
    Refused,
    /// Any extended or unassigned code.
    Other(u8),
}

impl Rcode {
    /// Numeric value as carried in the header.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }

    /// Decode from the 4-bit field.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The parsed message header: ID, flag bits and section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Transaction identifier echoed by responders.
    pub id: u16,
    /// `QR`: true for responses.
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// `AA`: authoritative answer.
    pub authoritative: bool,
    /// `TC`: message was truncated (forces TCP retry for Do53/UDP).
    pub truncated: bool,
    /// `RD`: recursion desired.
    pub recursion_desired: bool,
    /// `RA`: recursion available.
    pub recursion_available: bool,
    /// `AD`: authenticated data (DNSSEC).
    pub authentic_data: bool,
    /// `CD`: checking disabled (DNSSEC).
    pub checking_disabled: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Header {
    /// Size of the header on the wire.
    pub const WIRE_LEN: usize = 12;

    /// A recursion-desired query header with the given transaction ID.
    pub fn new_query(id: u16) -> Self {
        Header {
            id,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// A response header answering `query` with `rcode`.
    pub fn new_response(query: &Header, rcode: Rcode) -> Self {
        Header {
            id: query.id,
            response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            authentic_data: false,
            checking_disabled: false,
            rcode,
            qdcount: 0,
            ancount: 0,
            nscount: 0,
            arcount: 0,
        }
    }

    /// Append the 12 header octets to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        let mut b2: u8 = 0;
        if self.response {
            b2 |= 0b1000_0000;
        }
        b2 |= self.opcode.to_u8() << 3;
        if self.authoritative {
            b2 |= 0b0000_0100;
        }
        if self.truncated {
            b2 |= 0b0000_0010;
        }
        if self.recursion_desired {
            b2 |= 0b0000_0001;
        }
        buf.push(b2);
        let mut b3: u8 = 0;
        if self.recursion_available {
            b3 |= 0b1000_0000;
        }
        if self.authentic_data {
            b3 |= 0b0010_0000;
        }
        if self.checking_disabled {
            b3 |= 0b0001_0000;
        }
        b3 |= self.rcode.to_u8();
        buf.push(b3);
        buf.extend_from_slice(&self.qdcount.to_be_bytes());
        buf.extend_from_slice(&self.ancount.to_be_bytes());
        buf.extend_from_slice(&self.nscount.to_be_bytes());
        buf.extend_from_slice(&self.arcount.to_be_bytes());
    }

    /// Decode the header at `msg[*pos..]`, advancing `*pos` by 12.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        // Manual bounds check (not slice `.get`): this sits on the
        // zero-copy hot path, where doe-lint's D012 pass walks every
        // method call by name.
        if msg.len() < Self::WIRE_LEN || *pos > msg.len() - Self::WIRE_LEN {
            return Err(WireError::Truncated {
                expecting: "header",
            });
        }
        let bytes = &msg[*pos..*pos + Self::WIRE_LEN];
        let id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let b2 = bytes[2];
        let b3 = bytes[3];
        let header = Header {
            id,
            response: b2 & 0b1000_0000 != 0,
            opcode: Opcode::from_u8((b2 >> 3) & 0x0f),
            authoritative: b2 & 0b0000_0100 != 0,
            truncated: b2 & 0b0000_0010 != 0,
            recursion_desired: b2 & 0b0000_0001 != 0,
            recursion_available: b3 & 0b1000_0000 != 0,
            authentic_data: b3 & 0b0010_0000 != 0,
            checking_disabled: b3 & 0b0001_0000 != 0,
            rcode: Rcode::from_u8(b3 & 0x0f),
            qdcount: u16::from_be_bytes([bytes[4], bytes[5]]),
            ancount: u16::from_be_bytes([bytes[6], bytes[7]]),
            nscount: u16::from_be_bytes([bytes[8], bytes[9]]),
            arcount: u16::from_be_bytes([bytes[10], bytes[11]]),
        };
        *pos += Self::WIRE_LEN;
        Ok(header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_header_round_trip() {
        let h = Header::new_query(0xbeef);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), Header::WIRE_LEN);
        let mut pos = 0;
        let back = Header::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, h);
        assert_eq!(pos, 12);
    }

    #[test]
    fn response_header_echoes_id_and_rd() {
        let q = Header::new_query(7);
        let r = Header::new_response(&q, Rcode::NxDomain);
        assert_eq!(r.id, 7);
        assert!(r.response);
        assert!(r.recursion_desired);
        assert!(r.recursion_available);
        assert_eq!(r.rcode, Rcode::NxDomain);
    }

    #[test]
    fn all_flag_bits_round_trip() {
        let mut h = Header::new_query(1);
        h.response = true;
        h.authoritative = true;
        h.truncated = true;
        h.recursion_available = true;
        h.authentic_data = true;
        h.checking_disabled = true;
        h.rcode = Rcode::Refused;
        h.opcode = Opcode::Update;
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(Header::decode(&buf, &mut pos).unwrap(), h);
    }

    #[test]
    fn opcode_rcode_numeric_mapping() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let buf = [0u8; 11];
        let mut pos = 0;
        assert!(matches!(
            Header::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }
}
