//! # dnswire — DNS wire-format codec
//!
//! A from-scratch implementation of the DNS message format as specified by
//! RFC 1035, with the extensions needed by the DNS-over-Encryption
//! measurement pipeline:
//!
//! * domain [`Name`]s with full compression-pointer support on both the
//!   encode and decode paths,
//! * the common resource-record types (`A`, `AAAA`, `NS`, `CNAME`, `SOA`,
//!   `PTR`, `MX`, `TXT`) plus an opaque escape hatch for everything else,
//! * EDNS(0) (RFC 6891) including the padding option (RFC 7830) used by
//!   DoT/DoH clients to blunt traffic analysis,
//! * the two-byte length framing used by DNS over TCP/TLS (RFC 1035 §4.2.2),
//! * convenience [`builder`] helpers for queries and responses, and
//! * a small authoritative [`zone`] data model used by the simulated
//!   resolvers.
//!
//! The codec is strict on decode (no panics on hostile input — every failure
//! is a typed [`WireError`]) and deterministic on encode, which the
//! measurement harness relies on for byte-for-byte reproducibility.
//!
//! ```
//! use dnswire::{builder, Message, RecordType};
//!
//! let query = builder::query(0x1234, "example.com", RecordType::A).unwrap();
//! let bytes = query.encode().unwrap();
//! let parsed = Message::decode(&bytes).unwrap();
//! assert_eq!(parsed.questions[0].qname.to_string(), "example.com.");
//! ```

pub mod builder;
pub mod edns;
pub mod error;
pub mod framing;
pub mod header;
pub mod message;
pub mod name;
pub mod rr;
pub mod view;
pub mod zone;

pub use edns::{pad_to_block, EdnsOption, OptRecord, PaddingPolicy};
pub use error::WireError;
pub use framing::{frame_message, read_framed, FrameDecoder};
pub use header::{Header, Opcode, Rcode};
pub use message::{Message, Question};
pub use name::Name;
pub use rr::{RData, RecordClass, RecordType, ResourceRecord, SoaData};
pub use view::{MessageView, NameRef, RrView};
pub use zone::{Zone, ZoneLookup};

/// Maximum size of a DNS message carried over UDP without EDNS (RFC 1035).
pub const MAX_UDP_PAYLOAD: usize = 512;

/// The default EDNS(0) UDP payload size advertised by our stub resolvers.
pub const DEFAULT_EDNS_PAYLOAD: u16 = 4096;

/// Maximum length of a domain name on the wire, in octets (RFC 1035 §3.1).
pub const MAX_NAME_LEN: usize = 255;

/// Maximum length of a single label, in octets.
pub const MAX_LABEL_LEN: usize = 63;
