//! Complete DNS messages: the four sections, encode with compression,
//! strict decode.

use crate::edns::OptRecord;
use crate::error::WireError;
use crate::header::{Header, Rcode};
use crate::name::Name;
use crate::rr::{RecordClass, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of the question section.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(qname: Name, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>, table: &mut HashMap<Name, u16>) {
        self.qname.encode_compressed(buf, table);
        buf.extend_from_slice(&self.qtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.qclass.to_u16().to_be_bytes());
    }

    fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let qname = Name::decode(msg, pos)?;
        let fixed = msg.get(*pos..*pos + 4).ok_or(WireError::Truncated {
            expecting: "question fixed fields",
        })?;
        let qtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
        let qclass = RecordClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
        *pos += 4;
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }
}

/// A full DNS message.
///
/// The header's section counts are recomputed on encode, so callers mutate
/// the `questions`/`answers`/... vectors freely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Message header (counts are advisory until encode).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authority: Vec<ResourceRecord>,
    /// Additional section (including any OPT record).
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// An empty message with the given header.
    pub fn new(header: Header) -> Self {
        Message {
            header,
            questions: Vec::new(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// The transaction ID.
    pub fn id(&self) -> u16 {
        self.header.id
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.header.rcode
    }

    /// First question, if any — the common single-question case.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// The EDNS OPT record, decoded, if present in the additional section.
    pub fn opt(&self) -> Option<OptRecord> {
        self.additional
            .iter()
            .find(|rr| rr.rtype == RecordType::Opt)
            .and_then(|rr| OptRecord::from_record(rr).ok())
    }

    /// Attach (or replace) the EDNS OPT record.
    pub fn set_opt(&mut self, opt: OptRecord) {
        self.additional.retain(|rr| rr.rtype != RecordType::Opt);
        self.additional.push(opt.to_record());
    }

    /// Add EDNS padding so the encoded message length is a multiple of
    /// `block` (RFC 8467 policy, sized by [`crate::edns::pad_to_block`]).
    /// Requires an OPT record to already be attached (adds a default one
    /// if missing). A message already at an exact block multiple keeps no
    /// padding option — adding one would overshoot by a whole block.
    pub fn pad_to_block(&mut self, block: usize) -> Result<(), WireError> {
        let mut opt = self.opt().unwrap_or_default();
        opt.options
            .retain(|o| o.code != crate::edns::OPTION_PADDING);
        self.set_opt(opt.clone());
        let unpadded = self.encode()?.len();
        if let Some(pad) = OptRecord::padding_for(unpadded, block) {
            opt.options.push(crate::edns::EdnsOption::padding(pad));
            self.set_opt(opt);
        }
        Ok(())
    }

    /// Encode to wire bytes with name compression.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        for count in [
            self.questions.len(),
            self.answers.len(),
            self.authority.len(),
            self.additional.len(),
        ] {
            if count > u16::MAX as usize {
                return Err(WireError::CountOverflow);
            }
        }
        let mut header = self.header;
        header.qdcount = self.questions.len() as u16;
        header.ancount = self.answers.len() as u16;
        header.nscount = self.authority.len() as u16;
        header.arcount = self.additional.len() as u16;

        let mut buf = Vec::with_capacity(64);
        header.encode(&mut buf);
        let mut table: HashMap<Name, u16> = HashMap::new();
        for q in &self.questions {
            q.encode(&mut buf, &mut table);
        }
        for rr in self
            .answers
            .iter()
            .chain(self.authority.iter())
            .chain(self.additional.iter())
        {
            rr.encode(&mut buf, &mut table)?;
        }
        if buf.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(buf.len()));
        }
        Ok(buf)
    }

    /// Decode a complete message; trailing bytes are an error, as is an OPT
    /// record outside the additional section or more than one OPT record
    /// (RFC 6891 §6.1.1).
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0usize;
        let header = Header::decode(msg, &mut pos)?;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(Question::decode(msg, &mut pos)?);
        }
        let mut decode_section = |count: u16| -> Result<Vec<ResourceRecord>, WireError> {
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                records.push(ResourceRecord::decode(msg, &mut pos)?);
            }
            Ok(records)
        };
        let answers = decode_section(header.ancount)?;
        let authority = decode_section(header.nscount)?;
        let additional = decode_section(header.arcount)?;
        if pos != msg.len() {
            return Err(WireError::TrailingBytes(msg.len() - pos));
        }
        if answers
            .iter()
            .chain(authority.iter())
            .any(|rr| rr.rtype == RecordType::Opt)
        {
            return Err(WireError::MisplacedOpt);
        }
        if additional
            .iter()
            .filter(|rr| rr.rtype == RecordType::Opt)
            .count()
            > 1
        {
            return Err(WireError::MisplacedOpt);
        }
        Ok(Message {
            header,
            questions,
            answers,
            authority,
            additional,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    #[test]
    fn query_encode_decode_round_trip() {
        let q = builder::query(0xabcd, "probe.dnsmeasure.example", RecordType::A).unwrap();
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.id(), 0xabcd);
        assert_eq!(back.questions.len(), 1);
        assert_eq!(
            back.question().unwrap().qname.to_string(),
            "probe.dnsmeasure.example."
        );
        // Counts were recomputed.
        assert_eq!(back.header.qdcount, 1);
    }

    #[test]
    fn response_with_all_sections_round_trips() {
        let q = builder::query(9, "www.example.com", RecordType::A).unwrap();
        let mut resp = builder::answer(
            &q,
            vec![ResourceRecord::new(
                Name::parse("www.example.com").unwrap(),
                60,
                RData::A(Ipv4Addr::new(93, 184, 216, 34)),
            )],
        );
        resp.authority.push(ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            60,
            RData::Ns(Name::parse("ns1.example.com").unwrap()),
        ));
        resp.additional.push(ResourceRecord::new(
            Name::parse("ns1.example.com").unwrap(),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.authority.len(), 1);
        assert_eq!(back.additional.len(), 1);
        assert_eq!(back, {
            let mut expect = resp.clone();
            expect.header.qdcount = 1;
            expect.header.ancount = 1;
            expect.header.nscount = 1;
            expect.header.arcount = 1;
            expect
        });
    }

    #[test]
    fn compression_shrinks_shared_suffixes() {
        let q = builder::query(1, "www.example.com", RecordType::A).unwrap();
        let mut resp = builder::answer(
            &q,
            vec![
                ResourceRecord::new(
                    Name::parse("www.example.com").unwrap(),
                    60,
                    RData::Cname(Name::parse("cdn.example.com").unwrap()),
                ),
                ResourceRecord::new(
                    Name::parse("cdn.example.com").unwrap(),
                    60,
                    RData::A(Ipv4Addr::new(198, 51, 100, 7)),
                ),
            ],
        );
        resp.header.id = 1;
        let compressed = resp.encode().unwrap();
        // The owner of the second record is a bare 2-byte pointer; the
        // message must round-trip despite that.
        let back = Message::decode(&compressed).unwrap();
        assert_eq!(back.answers[1].name.to_string(), "cdn.example.com.");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let q = builder::query(2, "x.example", RecordType::A).unwrap();
        let mut bytes = q.encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn opt_set_and_get() {
        let mut q = builder::query(3, "x.example", RecordType::A).unwrap();
        let opt = OptRecord {
            udp_payload: 1232,
            ..OptRecord::default()
        };
        q.set_opt(opt);
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.opt().unwrap().udp_payload, 1232);
    }

    #[test]
    fn padding_rounds_message_size() {
        let mut q = builder::query(4, "padded.example.com", RecordType::A).unwrap();
        q.pad_to_block(128).unwrap();
        let bytes = q.encode().unwrap();
        assert_eq!(bytes.len() % 128, 0, "len {} not padded", bytes.len());
        // Re-padding to the same block is stable.
        let mut again = Message::decode(&bytes).unwrap();
        again.pad_to_block(128).unwrap();
        assert_eq!(again.encode().unwrap().len(), bytes.len());
    }

    #[test]
    fn set_opt_replaces_existing() {
        let mut q = builder::query(5, "x.example", RecordType::A).unwrap();
        q.set_opt(OptRecord::default());
        q.set_opt(OptRecord {
            udp_payload: 512,
            ..OptRecord::default()
        });
        assert_eq!(q.additional.len(), 1);
        assert_eq!(q.opt().unwrap().udp_payload, 512);
    }

    #[test]
    fn hostile_garbage_never_panics() {
        // A few adversarial patterns; decode must return Err, not panic.
        let cases: Vec<Vec<u8>> = vec![vec![], vec![0; 5], vec![0xff; 12], {
            // qdcount says 1 but no question follows
            let mut h = Vec::new();
            Header {
                qdcount: 1,
                ..Header::new_query(1)
            }
            .encode(&mut h);
            h
        }];
        for case in cases {
            assert!(Message::decode(&case).is_err());
        }
    }
}
