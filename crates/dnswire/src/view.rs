//! Zero-copy borrowed views over DNS wire messages.
//!
//! [`MessageView::parse`] validates an entire message in one pass — the same
//! checks, in the same order, as [`Message::decode`](crate::Message::decode) —
//! but builds no owned values: names stay as offsets into the input buffer and
//! are resolved lazily through [`NameRef`], compression pointers included.
//! After a successful parse, the section iterators and RDATA accessors are
//! infallible and allocation-free, which is what lets the scanner classify
//! millions of DoT responses per epoch without touching the heap.
//!
//! The view layer deliberately avoids slice combinators and `Option`-returning
//! std helpers on the parse path; every bound is checked with explicit
//! comparisons so the allocation-freedom proof (doe-lint D012, rooted at the
//! entry points below) has a small, auditable call tree.

use crate::error::WireError;
use crate::header::{Header, Rcode};
use crate::rr::{RecordClass, RecordType};
use crate::MAX_NAME_LEN;
use std::net::Ipv4Addr;

/// Big-endian u16 at `at`. Callers must have bounds-checked `at + 2`.
#[inline]
fn be16(msg: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([msg[at], msg[at + 1]])
}

/// Walk a (possibly compressed) name without materialising labels.
///
/// Mirrors [`Name::decode`](crate::Name::decode) exactly: same truncation
/// points, same `BadPointer` rule (targets must precede the cursor), same
/// 64-jump `PointerLoop` limit and 255-octet `NameTooLong` cap. On success
/// `*pos` is advanced past the inline representation.
fn skip_name(msg: &[u8], pos: &mut usize) -> Result<(), WireError> {
    let mut total = 1usize;
    let mut cursor = *pos;
    let mut jumped = false;
    let mut jumps = 0u32;
    let mut end_of_inline = *pos;

    loop {
        if cursor >= msg.len() {
            return Err(WireError::Truncated {
                expecting: "name label length",
            });
        }
        let len_byte = msg[cursor];
        match len_byte & 0b1100_0000 {
            0b0000_0000 => {
                if len_byte == 0 {
                    if !jumped {
                        end_of_inline = cursor + 1;
                    }
                    break;
                }
                let len = len_byte as usize;
                let end = cursor + 1 + len;
                if end > msg.len() {
                    return Err(WireError::Truncated {
                        expecting: "name label",
                    });
                }
                total += 1 + len;
                if total > MAX_NAME_LEN {
                    return Err(WireError::NameTooLong(total));
                }
                cursor = end;
                if !jumped {
                    end_of_inline = cursor;
                }
            }
            0b1100_0000 => {
                if cursor + 1 >= msg.len() {
                    return Err(WireError::Truncated {
                        expecting: "pointer low byte",
                    });
                }
                let second = msg[cursor + 1];
                let target = (((len_byte & 0b0011_1111) as u16) << 8) | second as u16;
                if (target as usize) >= cursor {
                    return Err(WireError::BadPointer(target));
                }
                jumps += 1;
                if jumps > 64 {
                    return Err(WireError::PointerLoop);
                }
                if !jumped {
                    end_of_inline = cursor + 2;
                    jumped = true;
                }
                cursor = target as usize;
            }
            other => return Err(WireError::BadLabelType(other)),
        }
    }
    *pos = end_of_inline;
    Ok(())
}

/// Validate RDATA of `rtype` at `msg[start..start+len]` without decoding it.
///
/// Reproduces every error path of [`RData::decode`](crate::RData::decode):
/// fixed-layout length checks for `A`/`AAAA`, exact-consume checks for the
/// name-bearing types, TXT segment truncation, and the `Truncated { "rdata" }`
/// bounds check that precedes them all.
fn check_rdata(msg: &[u8], rtype: RecordType, start: usize, len: usize) -> Result<(), WireError> {
    let end = start + len;
    if end > msg.len() {
        return Err(WireError::Truncated { expecting: "rdata" });
    }
    match rtype {
        RecordType::A => {
            if len != 4 {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            Ok(())
        }
        RecordType::Aaaa => {
            if len != 16 {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            Ok(())
        }
        RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
            let mut pos = start;
            skip_name(msg, &mut pos)?;
            if pos != end {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            Ok(())
        }
        RecordType::Soa => {
            let mut pos = start;
            skip_name(msg, &mut pos)?;
            skip_name(msg, &mut pos)?;
            if pos + 20 > msg.len() {
                return Err(WireError::Truncated {
                    expecting: "soa fields",
                });
            }
            pos += 20;
            if pos != end {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            Ok(())
        }
        RecordType::Mx => {
            if len < 3 {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            let mut pos = start + 2;
            skip_name(msg, &mut pos)?;
            if pos != end {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                });
            }
            Ok(())
        }
        RecordType::Txt => {
            let mut i = 0usize;
            while i < len {
                let seg_len = msg[start + i] as usize;
                if i + 1 + seg_len > len {
                    return Err(WireError::Truncated {
                        expecting: "txt segment",
                    });
                }
                i += 1 + seg_len;
            }
            Ok(())
        }
        RecordType::Opt | RecordType::Other(_) => Ok(()),
    }
}

/// Walk one resource record, validating name, fixed fields and RDATA.
/// Returns the record type so the caller can enforce OPT placement.
fn skip_record(msg: &[u8], pos: &mut usize) -> Result<RecordType, WireError> {
    skip_name(msg, pos)?;
    if *pos + 10 > msg.len() {
        return Err(WireError::Truncated {
            expecting: "rr fixed fields",
        });
    }
    let rtype = RecordType::from_u16(be16(msg, *pos));
    let rdlen = be16(msg, *pos + 8) as usize;
    *pos += 10;
    check_rdata(msg, rtype, *pos, rdlen)?;
    *pos += rdlen;
    Ok(rtype)
}

/// A domain name as offsets into the message buffer; labels resolve lazily.
#[derive(Debug, Clone, Copy)]
pub struct NameRef<'a> {
    msg: &'a [u8],
    start: usize,
}

impl<'a> NameRef<'a> {
    /// Iterate the raw label bytes, leftmost first, following compression
    /// pointers. Labels are returned in original case; DNS comparison is
    /// case-insensitive, so use [`ascii lowercase`](u8::to_ascii_lowercase)
    /// folding when matching.
    pub fn label_iter(&self) -> LabelIter<'a> {
        LabelIter {
            msg: self.msg,
            cursor: self.start,
            jumps: 0,
        }
    }

    /// True if this is the root name (single zero octet).
    pub fn is_root(&self) -> bool {
        self.start < self.msg.len() && self.msg[self.start] == 0
    }

    /// Case-insensitive comparison against a presentation-format name such
    /// as `"probe.example.com"` (trailing dot optional, no escapes).
    pub fn eq_presentation(&self, mut expect: &str) -> bool {
        if let Some(stripped) = expect.strip_suffix('.') {
            expect = stripped;
        }
        let mut rest = expect.as_bytes();
        let mut labels = self.label_iter();
        loop {
            match labels.next_label() {
                Some(label) => {
                    if rest.is_empty() || rest.len() < label.len() {
                        return false;
                    }
                    let (head, tail) = rest.split_at(label.len());
                    if !head.eq_ignore_ascii_case(label) {
                        return false;
                    }
                    rest = tail;
                    match rest.split_first() {
                        Some((&b'.', after)) => rest = after,
                        Some(_) => return false,
                        None => rest = &[],
                    }
                }
                None => return rest.is_empty(),
            }
        }
    }

    /// Materialise an owned [`Name`](crate::Name). Allocates — for reporting
    /// and tests, never for hot-path classification.
    pub fn to_name(&self) -> Result<crate::Name, WireError> {
        let mut pos = self.start;
        crate::Name::decode(self.msg, &mut pos)
    }
}

/// Lazy label iterator for [`NameRef`]; yields raw (original-case) labels.
#[derive(Debug, Clone, Copy)]
pub struct LabelIter<'a> {
    msg: &'a [u8],
    cursor: usize,
    jumps: u32,
}

impl<'a> LabelIter<'a> {
    /// The next label, or `None` at the root terminator.
    ///
    /// The underlying bytes were validated by [`MessageView::parse`], so the
    /// defensive bound/loop checks here can only trip on a `NameRef` built
    /// from a different buffer — they yield `None` rather than panicking.
    pub fn next_label(&mut self) -> Option<&'a [u8]> {
        loop {
            if self.cursor >= self.msg.len() || self.jumps > 64 {
                return None;
            }
            let len_byte = self.msg[self.cursor];
            match len_byte & 0b1100_0000 {
                0b0000_0000 => {
                    if len_byte == 0 {
                        return None;
                    }
                    let start = self.cursor + 1;
                    let end = start + len_byte as usize;
                    if end > self.msg.len() {
                        return None;
                    }
                    self.cursor = end;
                    return Some(&self.msg[start..end]);
                }
                0b1100_0000 => {
                    if self.cursor + 1 >= self.msg.len() {
                        return None;
                    }
                    let target = (((len_byte & 0b0011_1111) as usize) << 8)
                        | self.msg[self.cursor + 1] as usize;
                    if target >= self.cursor {
                        return None;
                    }
                    self.jumps += 1;
                    self.cursor = target;
                }
                _ => return None,
            }
        }
    }
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        self.next_label()
    }
}

/// One question-section entry, borrowed.
#[derive(Debug, Clone, Copy)]
pub struct QuestionView<'a> {
    /// Queried name.
    pub qname: NameRef<'a>,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

/// One resource record, borrowed; RDATA stays as a byte range.
#[derive(Debug, Clone, Copy)]
pub struct RrView<'a> {
    msg: &'a [u8],
    /// Owner name.
    pub name: NameRef<'a>,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    rdata_start: usize,
    rdata_len: usize,
}

impl<'a> RrView<'a> {
    /// Absolute byte range of the RDATA within the message, as
    /// `(start, len)` — pair it with [`RData::decode`](crate::RData::decode)
    /// to materialise an owned value (compression pointers in legacy types
    /// need the whole message, so a bare slice would not do).
    pub fn rdata_range(&self) -> (usize, usize) {
        (self.rdata_start, self.rdata_len)
    }

    /// The raw RDATA bytes.
    pub fn rdata_bytes(&self) -> &'a [u8] {
        let end = self.rdata_start + self.rdata_len;
        if end <= self.msg.len() {
            &self.msg[self.rdata_start..end]
        } else {
            &[]
        }
    }

    /// The IPv4 address for an `A` record, without allocating.
    pub fn rdata_a(&self) -> Option<Ipv4Addr> {
        if self.rtype != RecordType::A || self.rdata_len != 4 {
            return None;
        }
        let b = self.rdata_bytes();
        if b.len() != 4 {
            return None;
        }
        Some(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
    }

    /// The target name for the name-bearing types (`NS`/`CNAME`/`PTR`).
    pub fn rdata_name(&self) -> Option<NameRef<'a>> {
        match self.rtype {
            RecordType::Ns | RecordType::Cname | RecordType::Ptr => Some(NameRef {
                msg: self.msg,
                start: self.rdata_start,
            }),
            _ => None,
        }
    }
}

/// Iterator over the question section.
#[derive(Debug, Clone, Copy)]
pub struct QuestionIter<'a> {
    msg: &'a [u8],
    pos: usize,
    remaining: u16,
}

impl<'a> QuestionIter<'a> {
    fn step(&mut self) -> Option<QuestionView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let qname = NameRef {
            msg: self.msg,
            start: self.pos,
        };
        let mut pos = self.pos;
        if skip_name(self.msg, &mut pos).is_err() || pos + 4 > self.msg.len() {
            self.remaining = 0;
            return None;
        }
        let qtype = RecordType::from_u16(be16(self.msg, pos));
        let qclass = RecordClass::from_u16(be16(self.msg, pos + 2));
        self.pos = pos + 4;
        Some(QuestionView {
            qname,
            qtype,
            qclass,
        })
    }
}

impl<'a> Iterator for QuestionIter<'a> {
    type Item = QuestionView<'a>;

    fn next(&mut self) -> Option<QuestionView<'a>> {
        self.step()
    }
}

/// Iterator over one resource-record section.
#[derive(Debug, Clone, Copy)]
pub struct RrIter<'a> {
    msg: &'a [u8],
    pos: usize,
    remaining: u16,
}

impl<'a> RrIter<'a> {
    fn step(&mut self) -> Option<RrView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let name = NameRef {
            msg: self.msg,
            start: self.pos,
        };
        let mut pos = self.pos;
        if skip_name(self.msg, &mut pos).is_err() || pos + 10 > self.msg.len() {
            self.remaining = 0;
            return None;
        }
        let rtype = RecordType::from_u16(be16(self.msg, pos));
        let class = RecordClass::from_u16(be16(self.msg, pos + 2));
        let ttl = u32::from_be_bytes([
            self.msg[pos + 4],
            self.msg[pos + 5],
            self.msg[pos + 6],
            self.msg[pos + 7],
        ]);
        let rdata_len = be16(self.msg, pos + 8) as usize;
        let rdata_start = pos + 10;
        if rdata_start + rdata_len > self.msg.len() {
            self.remaining = 0;
            return None;
        }
        self.pos = rdata_start + rdata_len;
        Some(RrView {
            msg: self.msg,
            name,
            rtype,
            class,
            ttl,
            rdata_start,
            rdata_len,
        })
    }
}

impl<'a> Iterator for RrIter<'a> {
    type Item = RrView<'a>;

    fn next(&mut self) -> Option<RrView<'a>> {
        self.step()
    }
}

/// A borrowed, validated view of a complete DNS message.
///
/// Construction via [`MessageView::parse`] performs the full strict
/// validation of [`Message::decode`](crate::Message::decode) — identical
/// typed errors on identical inputs — after which every accessor is
/// allocation-free and panic-free.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    msg: &'a [u8],
    header: Header,
    answers_off: usize,
    authority_off: usize,
    additional_off: usize,
}

impl<'a> MessageView<'a> {
    /// Validate `msg` and build a view. Trailing bytes are an error, exactly
    /// as in the owned decoder.
    pub fn parse(msg: &'a [u8]) -> Result<Self, WireError> {
        let mut pos = 0usize;
        let header = Header::decode(msg, &mut pos)?;
        let mut left = header.qdcount;
        while left > 0 {
            skip_name(msg, &mut pos)?;
            if pos + 4 > msg.len() {
                return Err(WireError::Truncated {
                    expecting: "question fixed fields",
                });
            }
            pos += 4;
            left -= 1;
        }
        let answers_off = pos;
        let mut opt_misplaced = false;
        let mut opt_count = 0u32;
        left = header.ancount;
        while left > 0 {
            if skip_record(msg, &mut pos)? == RecordType::Opt {
                opt_misplaced = true;
            }
            left -= 1;
        }
        let authority_off = pos;
        left = header.nscount;
        while left > 0 {
            if skip_record(msg, &mut pos)? == RecordType::Opt {
                opt_misplaced = true;
            }
            left -= 1;
        }
        let additional_off = pos;
        left = header.arcount;
        while left > 0 {
            if skip_record(msg, &mut pos)? == RecordType::Opt {
                opt_count += 1;
            }
            left -= 1;
        }
        if pos != msg.len() {
            return Err(WireError::TrailingBytes(msg.len() - pos));
        }
        if opt_misplaced || opt_count > 1 {
            return Err(WireError::MisplacedOpt);
        }
        Ok(MessageView {
            msg,
            header,
            answers_off,
            authority_off,
            additional_off,
        })
    }

    /// The underlying wire bytes.
    pub fn wire_bytes(&self) -> &'a [u8] {
        self.msg
    }

    /// The decoded header (fixed 12 octets; counts as found on the wire).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The transaction ID.
    pub fn id(&self) -> u16 {
        self.header.id
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.header.rcode
    }

    /// Number of answer records.
    pub fn answer_count(&self) -> u16 {
        self.header.ancount
    }

    /// Iterate the question section.
    pub fn questions(&self) -> QuestionIter<'a> {
        QuestionIter {
            msg: self.msg,
            pos: Header::WIRE_LEN,
            remaining: self.header.qdcount,
        }
    }

    /// First question, if any — the common single-question case.
    pub fn first_question(&self) -> Option<QuestionView<'a>> {
        let mut iter = self.questions();
        iter.step()
    }

    /// Iterate the answer section.
    pub fn answers(&self) -> RrIter<'a> {
        RrIter {
            msg: self.msg,
            pos: self.answers_off,
            remaining: self.header.ancount,
        }
    }

    /// Iterate the authority section.
    pub fn authority(&self) -> RrIter<'a> {
        RrIter {
            msg: self.msg,
            pos: self.authority_off,
            remaining: self.header.nscount,
        }
    }

    /// Iterate the additional section.
    pub fn additional(&self) -> RrIter<'a> {
        RrIter {
            msg: self.msg,
            pos: self.additional_off,
            remaining: self.header.arcount,
        }
    }

    /// The first `A` record in the answer section, if any — the scanner's
    /// correctness check (§3.2: did the resolver return our controlled
    /// answer?) without materialising the message.
    pub fn first_a_answer(&self) -> Option<Ipv4Addr> {
        let mut iter = self.answers();
        loop {
            match iter.step() {
                Some(rr) => {
                    if let Some(addr) = rr.rdata_a() {
                        return Some(addr);
                    }
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::name::Name;
    use crate::rr::{RData, ResourceRecord};
    use crate::Message;

    fn response_fixture() -> Vec<u8> {
        let q = builder::query(0x1234, "www.example.com", RecordType::A).unwrap();
        let mut resp = builder::answer(
            &q,
            vec![
                ResourceRecord::new(
                    Name::parse("www.example.com").unwrap(),
                    60,
                    RData::Cname(Name::parse("cdn.example.com").unwrap()),
                ),
                ResourceRecord::new(
                    Name::parse("cdn.example.com").unwrap(),
                    60,
                    RData::A(std::net::Ipv4Addr::new(198, 51, 100, 7)),
                ),
            ],
        );
        resp.authority.push(ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            60,
            RData::Ns(Name::parse("ns1.example.com").unwrap()),
        ));
        resp.encode().unwrap()
    }

    #[test]
    fn view_matches_owned_decode() {
        let bytes = response_fixture();
        let owned = Message::decode(&bytes).unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(view.id(), owned.id());
        assert_eq!(view.rcode(), owned.rcode());
        assert_eq!(view.header(), &owned.header);
        assert_eq!(view.questions().count(), owned.questions.len());
        assert_eq!(view.answers().count(), owned.answers.len());
        assert_eq!(view.authority().count(), owned.authority.len());
        assert_eq!(view.additional().count(), owned.additional.len());
    }

    #[test]
    fn compressed_names_resolve_lazily() {
        let bytes = response_fixture();
        let view = MessageView::parse(&bytes).unwrap();
        let second = view.answers().nth(1).unwrap();
        // The second owner is a bare compression pointer on the wire.
        assert!(second.name.eq_presentation("cdn.example.com"));
        assert!(second.name.eq_presentation("CDN.Example.COM."));
        assert!(!second.name.eq_presentation("cdn.example.net"));
        assert_eq!(
            second.name.to_name().unwrap().to_string(),
            "cdn.example.com."
        );
    }

    #[test]
    fn first_a_answer_skips_cname() {
        let bytes = response_fixture();
        let view = MessageView::parse(&bytes).unwrap();
        assert_eq!(
            view.first_a_answer(),
            Some(std::net::Ipv4Addr::new(198, 51, 100, 7))
        );
    }

    #[test]
    fn rdata_name_follows_pointers() {
        let bytes = response_fixture();
        let view = MessageView::parse(&bytes).unwrap();
        let ns = view.authority().next().unwrap();
        assert_eq!(ns.rtype, RecordType::Ns);
        assert!(ns.rdata_name().unwrap().eq_presentation("ns1.example.com"));
    }

    #[test]
    fn trailing_bytes_rejected_like_owned() {
        let mut bytes = response_fixture();
        bytes.push(0);
        assert!(matches!(
            MessageView::parse(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_garbage_never_panics() {
        let cases: Vec<Vec<u8>> = vec![vec![], vec![0; 5], vec![0xff; 12]];
        for case in cases {
            assert!(MessageView::parse(&case).is_err());
        }
    }
}
