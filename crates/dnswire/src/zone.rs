//! A small authoritative zone model used by the simulated servers.
//!
//! The pipeline's "self-built resolver" and the probe domain's authoritative
//! server (which validates answers and witnesses interception, §3.1/§4.2)
//! both serve from [`Zone`]s. Lookups implement just enough RFC 1034
//! semantics for the study: exact matches, CNAME chasing within the zone,
//! wildcard synthesis at one level, and NXDOMAIN/NODATA distinction.

use crate::name::Name;
use crate::rr::{RData, RecordType, ResourceRecord, SoaData};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of a zone lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Records found (possibly via CNAME chain; chain included in order).
    Found(Vec<ResourceRecord>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone: an apex, an SOA and a set of records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    apex: Name,
    soa: SoaData,
    /// Records keyed by owner name.
    records: BTreeMap<Name, Vec<ResourceRecord>>,
}

impl Zone {
    /// Create a zone with a conventional SOA.
    pub fn new(apex: Name) -> Self {
        let soa = SoaData {
            mname: apex.prepend("ns1").unwrap_or_else(|_| apex.clone()),
            rname: apex.prepend("hostmaster").unwrap_or_else(|_| apex.clone()),
            serial: 20_190_201,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        };
        Zone {
            apex,
            soa,
            records: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// The SOA data.
    pub fn soa(&self) -> &SoaData {
        &self.soa
    }

    /// Total record count (for tests and reporting).
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// True if no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Add a record. Returns `false` (and ignores the record) if the owner
    /// is outside the zone.
    pub fn add(&mut self, rr: ResourceRecord) -> bool {
        if !rr.name.is_within(&self.apex) {
            return false;
        }
        self.records.entry(rr.name.clone()).or_default().push(rr);
        true
    }

    /// Convenience: add an `IN` record from parts.
    pub fn add_record(&mut self, name: &Name, ttl: u32, rdata: RData) -> bool {
        self.add(ResourceRecord::new(name.clone(), ttl, rdata))
    }

    /// Whether any name exists at or below `name` (empty non-terminals count
    /// as existing, per RFC 4592).
    fn name_exists(&self, name: &Name) -> bool {
        self.records.contains_key(name)
            || self
                .records
                .keys()
                .any(|owner| owner.is_within(name) && owner != name)
    }

    /// Look up `qname`/`qtype`, chasing CNAMEs within the zone (bounded) and
    /// synthesising from a `*` wildcard one level up if present.
    pub fn lookup(&self, qname: &Name, qtype: RecordType) -> ZoneLookup {
        if !qname.is_within(&self.apex) {
            return ZoneLookup::OutOfZone;
        }
        let mut chain: Vec<ResourceRecord> = Vec::new();
        let mut current = qname.clone();
        for _hop in 0..8 {
            if let Some(records) = self.records.get(&current) {
                let matches: Vec<_> = records
                    .iter()
                    .filter(|rr| rr.rtype == qtype)
                    .cloned()
                    .collect();
                if !matches.is_empty() {
                    chain.extend(matches);
                    return ZoneLookup::Found(chain);
                }
                // CNAME redirection (unless a CNAME itself was asked for).
                if qtype != RecordType::Cname {
                    if let Some(cname) = records.iter().find(|rr| rr.rtype == RecordType::Cname) {
                        chain.push(cname.clone());
                        if let RData::Cname(target) = &cname.rdata {
                            if target.is_within(&self.apex) {
                                current = target.clone();
                                continue;
                            }
                        }
                        // Chain leaves the zone: return what we have.
                        return ZoneLookup::Found(chain);
                    }
                }
                return ZoneLookup::NoData;
            }
            // Wildcard synthesis: replace the leftmost label with `*`.
            if let Some(parent) = current.parent() {
                if let Ok(wild) = parent.prepend("*") {
                    if let Some(records) = self.records.get(&wild) {
                        let synthesised: Vec<_> = records
                            .iter()
                            .filter(|rr| rr.rtype == qtype)
                            .map(|rr| {
                                let mut s = rr.clone();
                                s.name = current.clone();
                                s
                            })
                            .collect();
                        if !synthesised.is_empty() {
                            chain.extend(synthesised);
                            return ZoneLookup::Found(chain);
                        }
                        return ZoneLookup::NoData;
                    }
                }
            }
            return if self.name_exists(&current) {
                ZoneLookup::NoData
            } else {
                ZoneLookup::NxDomain
            };
        }
        // CNAME loop: serve what has been collected.
        ZoneLookup::Found(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn test_zone() -> Zone {
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("www").unwrap(),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 10)),
        );
        zone.add_record(
            &apex.prepend("alias").unwrap(),
            60,
            RData::Cname(apex.prepend("www").unwrap()),
        );
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        );
        zone.add_record(
            &apex.prepend("txt").unwrap(),
            60,
            RData::Txt(vec![b"token".to_vec()]),
        );
        zone
    }

    #[test]
    fn exact_match() {
        let zone = test_zone();
        let q = Name::parse("www.probe.example").unwrap();
        match zone.lookup(&q, RecordType::A) {
            ZoneLookup::Found(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 10)));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn cname_chased_within_zone() {
        let zone = test_zone();
        let q = Name::parse("alias.probe.example").unwrap();
        match zone.lookup(&q, RecordType::A) {
            ZoneLookup::Found(rrs) => {
                assert_eq!(rrs.len(), 2);
                assert_eq!(rrs[0].rtype, RecordType::Cname);
                assert_eq!(rrs[1].rtype, RecordType::A);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis_uses_query_name() {
        let zone = test_zone();
        // The paper's probes use unique prefixes to defeat caching; the
        // wildcard serves them all.
        let q = Name::parse("u1f3a9.probe.example").unwrap();
        match zone.lookup(&q, RecordType::A) {
            ZoneLookup::Found(rrs) => {
                assert_eq!(rrs[0].name, q);
                assert_eq!(rrs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 99)));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let zone = test_zone();
        let exists = Name::parse("txt.probe.example").unwrap();
        assert_eq!(zone.lookup(&exists, RecordType::Mx), ZoneLookup::NoData);
        // Wildcard matches everything one level deep; go deeper to miss it
        // and check that an empty non-terminal still reads as NODATA.
        let under_www = Name::parse("deep.www.probe.example").unwrap();
        // `deep.www` doesn't exist, wildcard at `*.www` doesn't exist either.
        assert_eq!(zone.lookup(&under_www, RecordType::A), ZoneLookup::NxDomain);
        // `www.probe.example` is an existing name: NODATA for AAAA.
        let www = Name::parse("www.probe.example").unwrap();
        assert_eq!(zone.lookup(&www, RecordType::Aaaa), ZoneLookup::NoData);
    }

    #[test]
    fn out_of_zone_rejected() {
        let zone = test_zone();
        let q = Name::parse("www.elsewhere.example").unwrap();
        assert_eq!(zone.lookup(&q, RecordType::A), ZoneLookup::OutOfZone);
        // Adding out-of-zone records fails.
        let mut z = test_zone();
        assert!(!z.add_record(&q, 60, RData::A(Ipv4Addr::new(1, 2, 3, 4))));
    }

    #[test]
    fn cname_loop_terminates() {
        let apex = Name::parse("loop.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        let a = apex.prepend("a").unwrap();
        let b = apex.prepend("b").unwrap();
        zone.add_record(&a, 60, RData::Cname(b.clone()));
        zone.add_record(&b, 60, RData::Cname(a.clone()));
        // Must not hang; returns the collected chain.
        match zone.lookup(&a, RecordType::A) {
            ZoneLookup::Found(rrs) => assert!(!rrs.is_empty()),
            other => panic!("expected Found(chain), got {other:?}"),
        }
    }

    #[test]
    fn empty_nonterminal_is_nodata() {
        let apex = Name::parse("ent.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        let deep = Name::parse("a.b.ent.example").unwrap();
        zone.add_record(&deep, 60, RData::A(Ipv4Addr::new(10, 0, 0, 1)));
        // `b.ent.example` has no records but exists as a non-terminal.
        let ent = Name::parse("b.ent.example").unwrap();
        assert_eq!(zone.lookup(&ent, RecordType::A), ZoneLookup::NoData);
    }
}
