//! EDNS(0) (RFC 6891) and the padding option (RFC 7830).
//!
//! The OPT pseudo-record overloads the class field with the advertised UDP
//! payload size and the TTL field with extended RCODE/version/flags. DoT and
//! DoH clients attach a padding option so that encrypted query sizes leak
//! less information (§2.2 of the paper).

use crate::error::WireError;
use crate::name::Name;
use crate::rr::{RData, RecordClass, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};

/// EDNS option code for padding (RFC 7830).
pub const OPTION_PADDING: u16 = 12;

/// A single EDNS option TLV.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdnsOption {
    /// Option code.
    pub code: u16,
    /// Option payload.
    pub data: Vec<u8>,
}

impl EdnsOption {
    /// A padding option of `len` zero bytes.
    pub fn padding(len: usize) -> Self {
        EdnsOption {
            code: OPTION_PADDING,
            data: vec![0u8; len],
        }
    }
}

/// A decoded OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptRecord {
    /// Requestor's maximum UDP payload size.
    pub udp_payload: u16,
    /// Extended RCODE high bits (we keep them raw).
    pub ext_rcode: u8,
    /// EDNS version, 0 in practice.
    pub version: u8,
    /// The `DO` bit (DNSSEC OK).
    pub dnssec_ok: bool,
    /// Options carried in RDATA.
    pub options: Vec<EdnsOption>,
}

impl Default for OptRecord {
    fn default() -> Self {
        OptRecord {
            udp_payload: crate::DEFAULT_EDNS_PAYLOAD,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl OptRecord {
    /// Total padding bytes carried, if a padding option is present.
    pub fn padding_len(&self) -> Option<usize> {
        self.options
            .iter()
            .find(|o| o.code == OPTION_PADDING)
            .map(|o| o.data.len())
    }

    /// Render as a [`ResourceRecord`] ready for the additional section.
    pub fn to_record(&self) -> ResourceRecord {
        let mut rdata = Vec::new();
        for opt in &self.options {
            rdata.extend_from_slice(&opt.code.to_be_bytes());
            rdata.extend_from_slice(&(opt.data.len() as u16).to_be_bytes());
            rdata.extend_from_slice(&opt.data);
        }
        let mut ttl = 0u32;
        ttl |= (self.ext_rcode as u32) << 24;
        ttl |= (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Other(self.udp_payload),
            ttl,
            rdata: RData::Opaque(rdata),
        }
    }

    /// Parse from a [`ResourceRecord`] previously identified as OPT.
    pub fn from_record(rr: &ResourceRecord) -> Result<Self, WireError> {
        let udp_payload = rr.class.to_u16();
        let ext_rcode = (rr.ttl >> 24) as u8;
        let version = ((rr.ttl >> 16) & 0xff) as u8;
        let dnssec_ok = rr.ttl & 0x8000 != 0;
        let bytes = match &rr.rdata {
            RData::Opaque(b) => b.as_slice(),
            _ => &[],
        };
        let mut options = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let header = bytes.get(i..i + 4).ok_or(WireError::Truncated {
                expecting: "edns option header",
            })?;
            let code = u16::from_be_bytes([header[0], header[1]]);
            let len = u16::from_be_bytes([header[2], header[3]]) as usize;
            let data = bytes.get(i + 4..i + 4 + len).ok_or(WireError::Truncated {
                expecting: "edns option data",
            })?;
            options.push(EdnsOption {
                code,
                data: data.to_vec(),
            });
            i += 4 + len;
        }
        Ok(OptRecord {
            udp_payload,
            ext_rcode,
            version,
            dnssec_ok,
            options,
        })
    }

    /// Compute the RFC 8467-recommended padding to round a query up to a
    /// multiple of `block` bytes, given the unpadded message length.
    ///
    /// Returns `Some(n)` where `n` is the number of padding *data* bytes
    /// such that `unpadded + 4 + n` is the next multiple of `block` (the 4
    /// covers the option TLV header), or `None` when the message is already
    /// an exact block multiple and adding even an empty padding option would
    /// overshoot by a whole block.
    pub fn padding_for(unpadded_len: usize, block: usize) -> Option<usize> {
        let target = pad_to_block(unpadded_len, block);
        if target == unpadded_len {
            None
        } else {
            Some(target - unpadded_len - 4)
        }
    }
}

/// The padded on-wire length of a `len`-byte DNS message under RFC 8467
/// `block`-octet padding: `len` itself when it already sits on a block
/// boundary (a padding option would overshoot by a full block), otherwise
/// the smallest multiple of `block` with room for the message plus the
/// 4-byte option TLV header.
///
/// This is the one shared size rule: [`OptRecord::padding_for`],
/// [`Message::pad_to_block`](crate::Message::pad_to_block) and the DoT/DoH
/// session layers all derive from it.
pub fn pad_to_block(len: usize, block: usize) -> usize {
    assert!(block > 0, "padding block must be positive");
    if len.is_multiple_of(block) {
        return len;
    }
    (len + 4).div_ceil(block) * block
}

/// SplitMix64: the deterministic keyed draw behind
/// [`PaddingPolicy::RandomBlock`]. Pure function of the key — no ambient
/// entropy, so padded sizes replay identically for any shard layout.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How an encrypted-DNS endpoint sizes (and, for the shaping variants,
/// times) its messages on the wire — the countermeasure axis of the
/// `padding-leakage` experiment.
///
/// The first three variants are per-message padding rules applied inside
/// the session layers; the shaping variants additionally drive a
/// `netsim::sched` event machine (`doe-privacy`) that inserts dummy
/// messages and rate clocks, while each *real* message is still padded to
/// the cell size here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingPolicy {
    /// No padding option at all — the unprotected baseline.
    None,
    /// RFC 8467 recommended block padding: queries to `query_block`
    /// (128 octets), responses to `response_block` (468 octets).
    Block {
        /// Query-side block size.
        query_block: usize,
        /// Response-side block size.
        response_block: usize,
    },
    /// Block padding with a deterministic keyed draw of 0..=`max_extra`
    /// additional whole blocks per message — random padding as studied
    /// (and broken) by the FOCI '20 sequence classifier.
    RandomBlock {
        /// Query-side base block size.
        query_block: usize,
        /// Response-side base block size.
        response_block: usize,
        /// Upper bound on extra whole blocks added per message.
        max_extra: u8,
    },
    /// Constant-rate shaping: fixed `cell`-sized messages on a fixed
    /// `interval_us` clock in both directions, dummies filling idle ticks.
    ConstantRate {
        /// Microseconds between cells.
        interval_us: u32,
        /// On-wire cell size; real messages are padded to multiples of it.
        cell: usize,
    },
    /// Adaptive padding (WTF-PAD style): real messages pass at their
    /// original times; dummy cells fill suspicious inter-message gaps.
    AdaptivePadding {
        /// Dummy-insertion gap scale in microseconds.
        burst_gap_us: u32,
        /// On-wire size of real (padded) and dummy messages.
        cell: usize,
    },
}

impl PaddingPolicy {
    /// The RFC 8467 recommendation: 128-octet query blocks, 468-octet
    /// response blocks.
    pub fn rfc8467() -> Self {
        PaddingPolicy::Block {
            query_block: 128,
            response_block: 468,
        }
    }

    /// Stable label for reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            PaddingPolicy::None => "none",
            PaddingPolicy::Block { .. } => "block",
            PaddingPolicy::RandomBlock { .. } => "random-block",
            PaddingPolicy::ConstantRate { .. } => "constant-rate",
            PaddingPolicy::AdaptivePadding { .. } => "adaptive-padding",
        }
    }

    /// The block a *query* should be padded to under this policy, or
    /// `None` for no padding option. `key` feeds the deterministic
    /// random-block draw (callers pass the message id / flow nonce).
    pub fn query_block(&self, key: u64) -> Option<usize> {
        match *self {
            PaddingPolicy::None => None,
            PaddingPolicy::Block { query_block, .. } => Some(query_block),
            PaddingPolicy::RandomBlock {
                query_block,
                max_extra,
                ..
            } => Some(query_block * (1 + (splitmix64(key) % (u64::from(max_extra) + 1)) as usize)),
            PaddingPolicy::ConstantRate { cell, .. } => Some(cell),
            PaddingPolicy::AdaptivePadding { cell, .. } => Some(cell),
        }
    }

    /// The block a *response* should be padded to under this policy, or
    /// `None` for no padding option. Same keyed-draw contract as
    /// [`Self::query_block`].
    pub fn response_block(&self, key: u64) -> Option<usize> {
        match *self {
            PaddingPolicy::None => None,
            PaddingPolicy::Block { response_block, .. } => Some(response_block),
            PaddingPolicy::RandomBlock {
                response_block,
                max_extra,
                ..
            } => Some(
                response_block
                    * (1 + (splitmix64(key ^ 0x5265_7370) % (u64::from(max_extra) + 1)) as usize),
            ),
            PaddingPolicy::ConstantRate { cell, .. } => Some(cell),
            PaddingPolicy::AdaptivePadding { cell, .. } => Some(cell),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_record_round_trip() {
        let opt = OptRecord {
            udp_payload: 4096,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: true,
            options: vec![
                EdnsOption::padding(31),
                EdnsOption {
                    code: 10,
                    data: vec![9; 8],
                },
            ],
        };
        let rr = opt.to_record();
        let back = OptRecord::from_record(&rr).unwrap();
        assert_eq!(back, opt);
        assert_eq!(back.padding_len(), Some(31));
    }

    #[test]
    fn default_opt_has_no_padding() {
        assert_eq!(OptRecord::default().padding_len(), None);
    }

    #[test]
    fn padding_rounds_to_block() {
        // 60-byte query, block 128: 60+4+pad ≡ 0 (mod 128) → pad = 64.
        assert_eq!(OptRecord::padding_for(60, 128), Some(64));
        // Exactly at boundary needs an empty padding option (0 data bytes).
        assert_eq!(OptRecord::padding_for(124, 128), Some(0));
        assert_eq!((124 + 4) % 128, 0);
        // Already a block multiple: no option at all, not a whole extra
        // block (the bug this helper fixed).
        assert_eq!(OptRecord::padding_for(128, 128), None);
        assert_eq!(OptRecord::padding_for(256, 128), None);
        // No room for the 4-byte TLV header in the current block: spill
        // into the next one.
        assert_eq!(OptRecord::padding_for(126, 128), Some(126));
    }

    #[test]
    fn pad_to_block_sizes() {
        assert_eq!(pad_to_block(60, 128), 128);
        assert_eq!(pad_to_block(124, 128), 128);
        assert_eq!(pad_to_block(128, 128), 128, "exact multiple stays put");
        assert_eq!(pad_to_block(129, 128), 256);
        assert_eq!(pad_to_block(126, 128), 256, "no room for TLV header");
        assert_eq!(pad_to_block(0, 128), 0);
    }

    #[test]
    fn policy_blocks() {
        let p = PaddingPolicy::rfc8467();
        assert_eq!(p.query_block(7), Some(128));
        assert_eq!(p.response_block(7), Some(468));
        assert_eq!(PaddingPolicy::None.query_block(7), None);
        assert_eq!(PaddingPolicy::None.response_block(7), None);
        let cr = PaddingPolicy::ConstantRate {
            interval_us: 5_000,
            cell: 468,
        };
        assert_eq!(cr.query_block(7), Some(468));

        // Random-block draws are keyed, bounded and deterministic.
        let r = PaddingPolicy::RandomBlock {
            query_block: 128,
            response_block: 468,
            max_extra: 3,
        };
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..64u64 {
            let b = r.query_block(key).unwrap();
            assert_eq!(b % 128, 0);
            assert!((128..=4 * 128).contains(&b));
            assert_eq!(r.query_block(key).unwrap(), b, "keyed draw replays");
            seen.insert(b);
        }
        assert!(seen.len() > 1, "draw actually varies across keys");
    }

    #[test]
    fn truncated_option_rejected() {
        let rr = ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Other(512),
            ttl: 0,
            rdata: RData::Opaque(vec![0, 12, 0, 10, 1]), // promises 10 bytes, has 1
        };
        assert!(OptRecord::from_record(&rr).is_err());
    }
}
