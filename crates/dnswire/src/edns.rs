//! EDNS(0) (RFC 6891) and the padding option (RFC 7830).
//!
//! The OPT pseudo-record overloads the class field with the advertised UDP
//! payload size and the TTL field with extended RCODE/version/flags. DoT and
//! DoH clients attach a padding option so that encrypted query sizes leak
//! less information (§2.2 of the paper).

use crate::error::WireError;
use crate::name::Name;
use crate::rr::{RData, RecordClass, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};

/// EDNS option code for padding (RFC 7830).
pub const OPTION_PADDING: u16 = 12;

/// A single EDNS option TLV.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdnsOption {
    /// Option code.
    pub code: u16,
    /// Option payload.
    pub data: Vec<u8>,
}

impl EdnsOption {
    /// A padding option of `len` zero bytes.
    pub fn padding(len: usize) -> Self {
        EdnsOption {
            code: OPTION_PADDING,
            data: vec![0u8; len],
        }
    }
}

/// A decoded OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptRecord {
    /// Requestor's maximum UDP payload size.
    pub udp_payload: u16,
    /// Extended RCODE high bits (we keep them raw).
    pub ext_rcode: u8,
    /// EDNS version, 0 in practice.
    pub version: u8,
    /// The `DO` bit (DNSSEC OK).
    pub dnssec_ok: bool,
    /// Options carried in RDATA.
    pub options: Vec<EdnsOption>,
}

impl Default for OptRecord {
    fn default() -> Self {
        OptRecord {
            udp_payload: crate::DEFAULT_EDNS_PAYLOAD,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl OptRecord {
    /// Total padding bytes carried, if a padding option is present.
    pub fn padding_len(&self) -> Option<usize> {
        self.options
            .iter()
            .find(|o| o.code == OPTION_PADDING)
            .map(|o| o.data.len())
    }

    /// Render as a [`ResourceRecord`] ready for the additional section.
    pub fn to_record(&self) -> ResourceRecord {
        let mut rdata = Vec::new();
        for opt in &self.options {
            rdata.extend_from_slice(&opt.code.to_be_bytes());
            rdata.extend_from_slice(&(opt.data.len() as u16).to_be_bytes());
            rdata.extend_from_slice(&opt.data);
        }
        let mut ttl = 0u32;
        ttl |= (self.ext_rcode as u32) << 24;
        ttl |= (self.version as u32) << 16;
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Other(self.udp_payload),
            ttl,
            rdata: RData::Opaque(rdata),
        }
    }

    /// Parse from a [`ResourceRecord`] previously identified as OPT.
    pub fn from_record(rr: &ResourceRecord) -> Result<Self, WireError> {
        let udp_payload = rr.class.to_u16();
        let ext_rcode = (rr.ttl >> 24) as u8;
        let version = ((rr.ttl >> 16) & 0xff) as u8;
        let dnssec_ok = rr.ttl & 0x8000 != 0;
        let bytes = match &rr.rdata {
            RData::Opaque(b) => b.as_slice(),
            _ => &[],
        };
        let mut options = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let header = bytes.get(i..i + 4).ok_or(WireError::Truncated {
                expecting: "edns option header",
            })?;
            let code = u16::from_be_bytes([header[0], header[1]]);
            let len = u16::from_be_bytes([header[2], header[3]]) as usize;
            let data = bytes.get(i + 4..i + 4 + len).ok_or(WireError::Truncated {
                expecting: "edns option data",
            })?;
            options.push(EdnsOption {
                code,
                data: data.to_vec(),
            });
            i += 4 + len;
        }
        Ok(OptRecord {
            udp_payload,
            ext_rcode,
            version,
            dnssec_ok,
            options,
        })
    }

    /// Compute the RFC 8467-recommended padding to round a query up to a
    /// multiple of `block` bytes, given the unpadded message length.
    ///
    /// Returns the number of padding *data* bytes such that
    /// `unpadded + 4 + padding` is the next multiple of `block` (the 4 covers
    /// the option TLV header). If the unpadded size already fits exactly and
    /// no room remains for a TLV header, the next block is used.
    pub fn padding_for(unpadded_len: usize, block: usize) -> usize {
        assert!(block > 0, "padding block must be positive");
        let with_header = unpadded_len + 4;
        let rem = with_header % block;
        if rem == 0 {
            0
        } else {
            block - rem
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_record_round_trip() {
        let opt = OptRecord {
            udp_payload: 4096,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: true,
            options: vec![
                EdnsOption::padding(31),
                EdnsOption {
                    code: 10,
                    data: vec![9; 8],
                },
            ],
        };
        let rr = opt.to_record();
        let back = OptRecord::from_record(&rr).unwrap();
        assert_eq!(back, opt);
        assert_eq!(back.padding_len(), Some(31));
    }

    #[test]
    fn default_opt_has_no_padding() {
        assert_eq!(OptRecord::default().padding_len(), None);
    }

    #[test]
    fn padding_rounds_to_block() {
        // 60-byte query, block 128: 60+4+pad ≡ 0 (mod 128) → pad = 64.
        assert_eq!(OptRecord::padding_for(60, 128), 64);
        // Exactly at boundary needs no padding data.
        assert_eq!(OptRecord::padding_for(124, 128), 0);
        assert_eq!((124 + 4) % 128, 0);
    }

    #[test]
    fn truncated_option_rejected() {
        let rr = ResourceRecord {
            name: Name::root(),
            rtype: RecordType::Opt,
            class: RecordClass::Other(512),
            ttl: 0,
            rdata: RData::Opaque(vec![0, 12, 0, 10, 1]), // promises 10 bytes, has 1
        };
        assert!(OptRecord::from_record(&rr).is_err());
    }
}
