//! Two-byte length framing for DNS over stream transports
//! (RFC 1035 §4.2.2), used by Do53/TCP and DoT.
//!
//! [`FrameDecoder`] is an incremental decoder in the style of a tokio codec:
//! feed arbitrary byte chunks, pull out complete messages. The simulated TCP
//! streams deliver data in whatever chunks the transport produced, so the
//! decoder must handle split length prefixes and coalesced messages.

use crate::error::WireError;

/// Prefix `msg` with its big-endian 16-bit length.
pub fn frame_message(msg: &[u8]) -> Result<Vec<u8>, WireError> {
    if msg.len() > u16::MAX as usize {
        return Err(WireError::MessageTooLong(msg.len()));
    }
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    Ok(out)
}

/// One-shot read of a single framed message from the front of `buf`.
///
/// Returns the message bytes and the total bytes consumed, or `None` if the
/// buffer does not yet hold a complete frame.
pub fn read_framed(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    let end = 2 + len;
    if buf.len() < end {
        return None;
    }
    Some((&buf[2..end], end))
}

/// Incremental decoder for a stream of framed DNS messages.
#[derive(Debug, Default, Clone)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message, if the buffer holds one.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        let (msg, consumed) = {
            let (msg, consumed) = read_framed(&self.buf)?;
            (msg.to_vec(), consumed)
        };
        self.buf.drain(..consumed);
        Some(msg)
    }

    /// Drain every complete message currently buffered.
    pub fn drain_messages(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message() {
            out.push(m);
        }
        out
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_read_round_trip() {
        let framed = frame_message(b"hello").unwrap();
        assert_eq!(framed[..2], [0, 5]);
        let (msg, used) = read_framed(&framed).unwrap();
        assert_eq!(msg, b"hello");
        assert_eq!(used, 7);
    }

    #[test]
    fn empty_message_frames() {
        let framed = frame_message(b"").unwrap();
        let (msg, used) = read_framed(&framed).unwrap();
        assert!(msg.is_empty());
        assert_eq!(used, 2);
    }

    #[test]
    fn oversize_message_rejected() {
        let big = vec![0u8; 70_000];
        assert!(matches!(
            frame_message(&big),
            Err(WireError::MessageTooLong(70_000))
        ));
    }

    #[test]
    fn incremental_decode_across_chunk_boundaries() {
        let framed = frame_message(b"split me please").unwrap();
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time; only the final byte completes the frame.
        for (i, b) in framed.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_message();
            if i + 1 < framed.len() {
                assert!(got.is_none(), "complete at byte {i}?");
            } else {
                assert_eq!(got.unwrap(), b"split me please");
            }
        }
        assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn coalesced_messages_split_apart() {
        let mut stream = frame_message(b"first").unwrap();
        stream.extend(frame_message(b"second").unwrap());
        stream.extend(frame_message(b"third").unwrap());
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let msgs = dec.drain_messages();
        assert_eq!(
            msgs,
            vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]
        );
    }

    #[test]
    fn partial_length_prefix_waits() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0]);
        assert!(dec.next_message().is_none());
        dec.push(&[3, b'a', b'b']);
        assert!(dec.next_message().is_none());
        dec.push(b"c");
        assert_eq!(dec.next_message().unwrap(), b"abc");
    }
}
