//! Typed decode/encode failures.

use std::fmt;

/// Every way the codec can fail.
///
/// Decoding never panics on hostile bytes; each malformed construct maps to
/// one of these variants so that callers (the simulated resolvers and the
/// scanner's verification probe) can distinguish "garbage service" from
/// "truncated read".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-size field could be read.
    Truncated {
        /// What the decoder was trying to read.
        expecting: &'static str,
    },
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// An assembled name exceeded 255 octets.
    NameTooLong(usize),
    /// A compression pointer referenced an offset at or past its own
    /// position, or pointers formed a loop.
    BadPointer(u16),
    /// Compression pointers nested deeper than the sanity limit.
    PointerLoop,
    /// A label type other than `00` (literal) or `11` (pointer) was seen.
    BadLabelType(u8),
    /// A name contained bytes that are not printable in presentation format.
    /// Only produced by the strict presentation parser, never by decode.
    BadPresentation(String),
    /// RDATA length did not match the type's fixed layout (e.g. A != 4).
    BadRdataLength {
        /// The record type being decoded.
        rtype: u16,
        /// Length found on the wire.
        found: usize,
    },
    /// The message had trailing bytes after all sections were decoded.
    TrailingBytes(usize),
    /// Encoding produced a message longer than the transport allows.
    MessageTooLong(usize),
    /// A TXT segment exceeded 255 bytes.
    TxtSegmentTooLong(usize),
    /// An EDNS OPT record appeared somewhere other than the additional
    /// section, or more than once.
    MisplacedOpt,
    /// Arithmetic on section counts overflowed 16 bits.
    CountOverflow,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { expecting } => {
                write!(f, "message truncated while reading {expecting}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadPointer(off) => write!(f, "invalid compression pointer to {off}"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type {b:#04x}"),
            WireError::BadPresentation(s) => write!(f, "bad presentation name {s:?}"),
            WireError::BadRdataLength { rtype, found } => {
                write!(f, "rdata length {found} invalid for rrtype {rtype}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::MessageTooLong(n) => write!(f, "encoded message of {n} bytes too long"),
            WireError::TxtSegmentTooLong(n) => write!(f, "TXT segment of {n} bytes exceeds 255"),
            WireError::MisplacedOpt => write!(f, "OPT record misplaced or duplicated"),
            WireError::CountOverflow => write!(f, "section count overflows u16"),
        }
    }
}

impl std::error::Error for WireError {}
