//! Domain names: presentation parsing, wire encoding and decoding with
//! message compression (RFC 1035 §4.1.4).

use crate::error::WireError;
use crate::{MAX_LABEL_LEN, MAX_NAME_LEN};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A fully-qualified domain name, stored as lower-cased labels.
///
/// Names are case-insensitive for comparison (RFC 1035 §2.3.3); we normalise
/// to lowercase at construction so that `Eq`/`Hash` behave as DNS expects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a presentation-format name such as `"dns.example.com"`.
    ///
    /// A trailing dot is accepted and ignored; the empty string and `"."`
    /// both denote the root. Escapes are not supported — the measurement
    /// pipeline only handles hostnames.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        let mut total = 1usize; // terminating root byte
        for raw in trimmed.split('.') {
            if raw.is_empty() {
                return Err(WireError::BadPresentation(s.to_string()));
            }
            let bytes = raw.as_bytes();
            if bytes.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(bytes.len()));
            }
            if !bytes
                .iter()
                .all(|&b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'*')
            {
                return Err(WireError::BadPresentation(s.to_string()));
            }
            total += 1 + bytes.len();
            labels.push(bytes.to_ascii_lowercase());
        }
        if total > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(total));
        }
        Ok(Name { labels })
    }

    /// Build a name from raw label byte strings.
    pub fn from_labels<I, L>(iter: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut labels = Vec::new();
        let mut total = 1usize;
        for l in iter {
            let l = l.as_ref();
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            total += 1 + l.len();
            labels.push(l.to_ascii_lowercase());
        }
        if total > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(total));
        }
        Ok(Name { labels })
    }

    /// Number of labels (`0` for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Length of the name in wire octets, including the root terminator.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// True if `self` equals or is a subdomain of `other`
    /// (`dns.example.com` is within `example.com` and within the root).
    pub fn is_within(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - other.labels.len();
        self.labels[skip..] == other.labels[..]
    }

    /// The parent name, or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepend a label, e.g. turning `example.com` into `probe7.example.com`.
    pub fn prepend(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        labels.push(label.as_bytes().to_ascii_lowercase());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(name.wire_len()));
        }
        Ok(name)
    }

    /// The registrable second-level domain (last two labels), if present.
    ///
    /// The scanner groups DoT providers by the SLD of their certificate
    /// common names, mirroring §3.2 of the paper.
    pub fn second_level_domain(&self) -> Option<Name> {
        if self.labels.len() < 2 {
            return None;
        }
        Some(Name {
            labels: self.labels[self.labels.len() - 2..].to_vec(),
        })
    }

    /// Encode without compression, appending to `buf`.
    pub fn encode_uncompressed(&self, buf: &mut Vec<u8>) {
        for label in &self.labels {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        buf.push(0);
    }

    /// Encode with compression, updating `table` (suffix → offset).
    ///
    /// Offsets beyond the 14-bit pointer range are not inserted into the
    /// table, as they cannot be referenced.
    pub fn encode_compressed(&self, buf: &mut Vec<u8>, table: &mut HashMap<Name, u16>) {
        for i in 0..self.labels.len() {
            let suffix = Name {
                labels: self.labels[i..].to_vec(),
            };
            if let Some(&off) = table.get(&suffix) {
                buf.push(0b1100_0000 | ((off >> 8) as u8));
                buf.push((off & 0xff) as u8);
                return;
            }
            let here = buf.len();
            if here <= 0x3fff {
                table.insert(suffix, here as u16);
            }
            let label = &self.labels[i];
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        buf.push(0);
    }

    /// Decode a (possibly compressed) name from `msg` starting at `*pos`.
    ///
    /// On success `*pos` is advanced past the name as it appears at the
    /// original location (pointers are followed without moving `*pos`).
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut total = 1usize;
        let mut cursor = *pos;
        let mut jumped = false;
        let mut jumps = 0u32;
        // After the first pointer, `*pos` is already final; before it, we
        // track how far the inline representation extends.
        let mut end_of_inline = *pos;

        loop {
            let len_byte = *msg.get(cursor).ok_or(WireError::Truncated {
                expecting: "name label length",
            })?;
            match len_byte & 0b1100_0000 {
                0b0000_0000 => {
                    if len_byte == 0 {
                        if !jumped {
                            end_of_inline = cursor + 1;
                        }
                        break;
                    }
                    let len = len_byte as usize;
                    let start = cursor + 1;
                    let end = start + len;
                    let label = msg.get(start..end).ok_or(WireError::Truncated {
                        expecting: "name label",
                    })?;
                    total += 1 + len;
                    if total > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(total));
                    }
                    labels.push(label.to_ascii_lowercase());
                    cursor = end;
                    if !jumped {
                        end_of_inline = cursor;
                    }
                }
                0b1100_0000 => {
                    let second = *msg.get(cursor + 1).ok_or(WireError::Truncated {
                        expecting: "pointer low byte",
                    })?;
                    let target = (((len_byte & 0b0011_1111) as u16) << 8) | second as u16;
                    if (target as usize) >= cursor {
                        return Err(WireError::BadPointer(target));
                    }
                    jumps += 1;
                    if jumps > 64 {
                        return Err(WireError::PointerLoop);
                    }
                    if !jumped {
                        end_of_inline = cursor + 2;
                        jumped = true;
                    }
                    cursor = target as usize;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
        *pos = end_of_inline;
        Ok(Name { labels })
    }
}

impl fmt::Display for Name {
    /// Presentation format with a trailing dot (`example.com.`); the root is
    /// rendered as `"."`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            for &b in label {
                if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let n = Name::parse("DNS.Example.COM").unwrap();
        assert_eq!(n.to_string(), "dns.example.com.");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn root_forms() {
        assert_eq!(Name::parse("").unwrap(), Name::root());
        assert_eq!(Name::parse(".").unwrap(), Name::root());
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn trailing_dot_is_optional() {
        assert_eq!(
            Name::parse("example.com.").unwrap(),
            Name::parse("example.com").unwrap()
        );
    }

    #[test]
    fn empty_label_rejected() {
        assert!(Name::parse("a..b").is_err());
    }

    #[test]
    fn overlong_label_rejected() {
        let long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&long),
            Err(WireError::LabelTooLong(64))
        ));
    }

    #[test]
    fn overlong_name_rejected() {
        let label = "a".repeat(63);
        let name = [label.as_str(); 5].join(".");
        assert!(matches!(Name::parse(&name), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn within_and_parent() {
        let sub = Name::parse("a.b.example.com").unwrap();
        let apex = Name::parse("example.com").unwrap();
        assert!(sub.is_within(&apex));
        assert!(sub.is_within(&Name::root()));
        assert!(!apex.is_within(&sub));
        assert_eq!(sub.parent().unwrap().to_string(), "b.example.com.");
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn second_level_domain() {
        let n = Name::parse("mozilla.cloudflare-dns.com").unwrap();
        assert_eq!(
            n.second_level_domain().unwrap().to_string(),
            "cloudflare-dns.com."
        );
        assert!(Name::parse("com").unwrap().second_level_domain().is_none());
    }

    #[test]
    fn uncompressed_round_trip() {
        let n = Name::parse("dns.quad9.net").unwrap();
        let mut buf = Vec::new();
        n.encode_uncompressed(&mut buf);
        assert_eq!(buf.len(), n.wire_len());
        let mut pos = 0;
        let back = Name::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, n);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compression_reuses_suffixes() {
        let a = Name::parse("one.example.com").unwrap();
        let b = Name::parse("two.example.com").unwrap();
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        a.encode_compressed(&mut buf, &mut table);
        let first_len = buf.len();
        b.encode_compressed(&mut buf, &mut table);
        // "two" label (4 bytes) + 2-byte pointer instead of full 17 bytes.
        assert_eq!(buf.len() - first_len, 4 + 2);
        let mut pos = 0;
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), a);
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn identical_name_collapses_to_pointer() {
        let a = Name::parse("example.com").unwrap();
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        a.encode_compressed(&mut buf, &mut table);
        let first = buf.len();
        a.encode_compressed(&mut buf, &mut table);
        assert_eq!(buf.len() - first, 2);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to itself.
        let buf = [0xc0, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::BadPointer(0))
        ));
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [3, b'a', b'b']; // promises 3 bytes, gives 2
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_label_type_rejected() {
        let buf = [0b1000_0001, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::BadLabelType(_))
        ));
    }

    #[test]
    fn decode_is_case_insensitive() {
        let mut buf = Vec::new();
        buf.push(3);
        buf.extend_from_slice(b"WwW");
        buf.push(0);
        let mut pos = 0;
        let n = Name::decode(&buf, &mut pos).unwrap();
        assert_eq!(n.to_string(), "www.");
    }

    #[test]
    fn prepend_builds_probe_names() {
        let apex = Name::parse("probe.example.com").unwrap();
        let unique = apex.prepend("x1f3a9").unwrap();
        assert_eq!(unique.to_string(), "x1f3a9.probe.example.com.");
        assert!(unique.is_within(&apex));
    }
}
