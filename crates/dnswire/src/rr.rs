//! Resource records: types, classes and RDATA codecs (RFC 1035 §3.2, §4.1.3).

use crate::error::WireError;
use crate::name::Name;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Record types understood by the codec. Unknown types survive decode as
/// [`RData::Opaque`] so scans of arbitrary services never fail to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Pointer (reverse DNS) — used by the paper to vet DoT client networks.
    Ptr,
    /// Mail exchange.
    Mx,
    /// Free-form text.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// Any other type, preserved numerically.
    Other(u16),
}

impl RecordType {
    /// Numeric value on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Other(v) => v,
        }
    }

    /// Decode from the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Record classes. Practically always `IN`; `Other` preserved for fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordClass {
    /// The Internet.
    In,
    /// Chaosnet (used by `version.bind` style queries).
    Ch,
    /// Anything else.
    Other(u16),
}

impl RecordClass {
    /// Numeric value on the wire.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Other(v) => v,
        }
    }

    /// Decode from the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            other => RecordClass::Other(other),
        }
    }
}

/// SOA RDATA fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoaData {
    /// Primary master name server.
    pub mname: Name,
    /// Responsible mailbox, encoded as a name.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry limit, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

/// Decoded RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name-server target.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse-pointer target.
    Ptr(Name),
    /// Start of authority.
    Soa(SoaData),
    /// Mail exchange: preference and host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Exchange host name.
        exchange: Name,
    },
    /// Character strings, each at most 255 bytes.
    Txt(Vec<Vec<u8>>),
    /// Verbatim bytes of an unknown type.
    Opaque(Vec<u8>),
}

impl RData {
    /// The natural record type for this RDATA (`None` for [`RData::Opaque`],
    /// whose type lives on the containing record).
    pub fn natural_type(&self) -> Option<RecordType> {
        match self {
            RData::A(_) => Some(RecordType::A),
            RData::Aaaa(_) => Some(RecordType::Aaaa),
            RData::Ns(_) => Some(RecordType::Ns),
            RData::Cname(_) => Some(RecordType::Cname),
            RData::Ptr(_) => Some(RecordType::Ptr),
            RData::Soa(_) => Some(RecordType::Soa),
            RData::Mx { .. } => Some(RecordType::Mx),
            RData::Txt(_) => Some(RecordType::Txt),
            RData::Opaque(_) => None,
        }
    }

    /// Encode RDATA (without the length prefix) into `buf`.
    ///
    /// Names inside RDATA are encoded *without* compression: RFC 3597
    /// forbids compression in the RDATA of unknown types, and modern
    /// practice avoids it everywhere except the legacy types; emitting
    /// uncompressed is always interoperable.
    pub fn encode(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            RData::A(addr) => buf.extend_from_slice(&addr.octets()),
            RData::Aaaa(addr) => buf.extend_from_slice(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(buf),
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(buf);
                soa.rname.encode_uncompressed(buf);
                buf.extend_from_slice(&soa.serial.to_be_bytes());
                buf.extend_from_slice(&soa.refresh.to_be_bytes());
                buf.extend_from_slice(&soa.retry.to_be_bytes());
                buf.extend_from_slice(&soa.expire.to_be_bytes());
                buf.extend_from_slice(&soa.minimum.to_be_bytes());
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode_uncompressed(buf);
            }
            RData::Txt(segments) => {
                for seg in segments {
                    if seg.len() > 255 {
                        return Err(WireError::TxtSegmentTooLong(seg.len()));
                    }
                    buf.push(seg.len() as u8);
                    buf.extend_from_slice(seg);
                }
            }
            RData::Opaque(bytes) => buf.extend_from_slice(bytes),
        }
        Ok(())
    }

    /// Decode RDATA of `rtype` from `msg[start..start+len]`, with access to
    /// the whole message for compression pointers in legacy types.
    pub fn decode(
        msg: &[u8],
        rtype: RecordType,
        start: usize,
        len: usize,
    ) -> Result<Self, WireError> {
        let end = start + len;
        let slice = msg
            .get(start..end)
            .ok_or(WireError::Truncated { expecting: "rdata" })?;
        match rtype {
            RecordType::A => {
                let arr: [u8; 4] = slice.try_into().map_err(|_| WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                })?;
                Ok(RData::A(Ipv4Addr::from(arr)))
            }
            RecordType::Aaaa => {
                let arr: [u8; 16] = slice.try_into().map_err(|_| WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                    found: len,
                })?;
                Ok(RData::Aaaa(Ipv6Addr::from(arr)))
            }
            RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
                let mut pos = start;
                let name = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        found: len,
                    });
                }
                Ok(match rtype {
                    RecordType::Ns => RData::Ns(name),
                    RecordType::Cname => RData::Cname(name),
                    _ => RData::Ptr(name),
                })
            }
            RecordType::Soa => {
                let mut pos = start;
                let mname = Name::decode(msg, &mut pos)?;
                let rname = Name::decode(msg, &mut pos)?;
                let fixed = msg.get(pos..pos + 20).ok_or(WireError::Truncated {
                    expecting: "soa fields",
                })?;
                let word = |i: usize| {
                    u32::from_be_bytes([fixed[i], fixed[i + 1], fixed[i + 2], fixed[i + 3]])
                };
                pos += 20;
                if pos != end {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        found: len,
                    });
                }
                Ok(RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: word(0),
                    refresh: word(4),
                    retry: word(8),
                    expire: word(12),
                    minimum: word(16),
                }))
            }
            RecordType::Mx => {
                if len < 3 {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        found: len,
                    });
                }
                let preference = u16::from_be_bytes([slice[0], slice[1]]);
                let mut pos = start + 2;
                let exchange = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        found: len,
                    });
                }
                Ok(RData::Mx {
                    preference,
                    exchange,
                })
            }
            RecordType::Txt => {
                let mut segments = Vec::new();
                let mut i = 0usize;
                while i < slice.len() {
                    let seg_len = slice[i] as usize;
                    let seg = slice
                        .get(i + 1..i + 1 + seg_len)
                        .ok_or(WireError::Truncated {
                            expecting: "txt segment",
                        })?;
                    segments.push(seg.to_vec());
                    i += 1 + seg_len;
                }
                Ok(RData::Txt(segments))
            }
            RecordType::Opt | RecordType::Other(_) => Ok(RData::Opaque(slice.to_vec())),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Decoded record data.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Construct an `IN`-class record, inferring `rtype` from the RDATA.
    ///
    /// # Panics
    /// Panics if `rdata` is [`RData::Opaque`] (whose type is not inferable);
    /// build those records literally instead.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        let rtype = rdata
            .natural_type()
            // doe-lint: allow(D004, D007) — documented `# Panics` contract: opaque rdata is a
            // caller bug, not wire input; servers on the query path build typed rdata only
            .expect("opaque rdata needs an explicit type");
        ResourceRecord {
            name,
            rtype,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// Encode into `buf`, compressing the owner name via `table`.
    pub fn encode(
        &self,
        buf: &mut Vec<u8>,
        table: &mut HashMap<Name, u16>,
    ) -> Result<(), WireError> {
        self.name.encode_compressed(buf, table);
        buf.extend_from_slice(&self.rtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.class.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.ttl.to_be_bytes());
        let len_pos = buf.len();
        buf.extend_from_slice(&[0, 0]);
        self.rdata.encode(buf)?;
        let rdlen = buf.len() - len_pos - 2;
        if rdlen > u16::MAX as usize {
            return Err(WireError::MessageTooLong(rdlen));
        }
        buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
        Ok(())
    }

    /// Decode a record at `msg[*pos..]`, advancing `*pos` past it.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let name = Name::decode(msg, pos)?;
        let fixed = msg.get(*pos..*pos + 10).ok_or(WireError::Truncated {
            expecting: "rr fixed fields",
        })?;
        let rtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
        let class = RecordClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
        *pos += 10;
        let rdata = RData::decode(msg, rtype, *pos, rdlen)?;
        *pos += rdlen;
        Ok(ResourceRecord {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rr: &ResourceRecord) -> ResourceRecord {
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        rr.encode(&mut buf, &mut table).unwrap();
        let mut pos = 0;
        let back = ResourceRecord::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn a_record_round_trip() {
        let rr = ResourceRecord::new(
            Name::parse("one.one.one.one").unwrap(),
            300,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        );
        assert_eq!(round_trip(&rr), rr);
    }

    #[test]
    fn aaaa_record_round_trip() {
        let rr = ResourceRecord::new(
            Name::parse("dns.google").unwrap(),
            60,
            RData::Aaaa("2001:4860:4860::8888".parse().unwrap()),
        );
        assert_eq!(round_trip(&rr), rr);
    }

    #[test]
    fn soa_record_round_trip() {
        let rr = ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            3600,
            RData::Soa(SoaData {
                mname: Name::parse("ns1.example.com").unwrap(),
                rname: Name::parse("hostmaster.example.com").unwrap(),
                serial: 20_190_501,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 86_400,
            }),
        );
        assert_eq!(round_trip(&rr), rr);
    }

    #[test]
    fn mx_and_txt_round_trip() {
        let mx = ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            120,
            RData::Mx {
                preference: 10,
                exchange: Name::parse("mail.example.com").unwrap(),
            },
        );
        assert_eq!(round_trip(&mx), mx);
        let txt = ResourceRecord::new(
            Name::parse("example.com").unwrap(),
            120,
            RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]),
        );
        assert_eq!(round_trip(&txt), txt);
    }

    #[test]
    fn cname_ptr_ns_round_trip() {
        for rdata in [
            RData::Cname(Name::parse("alias.example.net").unwrap()),
            RData::Ptr(Name::parse("host.example.net").unwrap()),
            RData::Ns(Name::parse("ns.example.net").unwrap()),
        ] {
            let rr = ResourceRecord::new(Name::parse("x.example.com").unwrap(), 30, rdata);
            assert_eq!(round_trip(&rr), rr);
        }
    }

    #[test]
    fn unknown_type_survives_as_opaque() {
        let rr = ResourceRecord {
            name: Name::parse("x.example.com").unwrap(),
            rtype: RecordType::Other(65280),
            class: RecordClass::In,
            ttl: 5,
            rdata: RData::Opaque(vec![1, 2, 3, 4, 5]),
        };
        assert_eq!(round_trip(&rr), rr);
    }

    #[test]
    fn txt_segment_too_long_rejected() {
        let rr = ResourceRecord::new(
            Name::parse("t.example.com").unwrap(),
            5,
            RData::Txt(vec![vec![0u8; 256]]),
        );
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        assert!(matches!(
            rr.encode(&mut buf, &mut table),
            Err(WireError::TxtSegmentTooLong(256))
        ));
    }

    #[test]
    fn wrong_a_length_rejected() {
        // Hand-build an A record with 3-byte RDATA.
        let mut buf = Vec::new();
        Name::parse("a.example")
            .unwrap()
            .encode_uncompressed(&mut buf);
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&0u32.to_be_bytes()); // ttl
        buf.extend_from_slice(&3u16.to_be_bytes()); // rdlen = 3
        buf.extend_from_slice(&[1, 2, 3]);
        let mut pos = 0;
        assert!(matches!(
            ResourceRecord::decode(&buf, &mut pos),
            Err(WireError::BadRdataLength { rtype: 1, found: 3 })
        ));
    }

    #[test]
    fn record_type_mapping_is_bijective_on_known_codes() {
        for code in [1u16, 2, 5, 6, 12, 15, 16, 28, 41] {
            assert_eq!(RecordType::from_u16(code).to_u16(), code);
        }
        assert_eq!(RecordType::from_u16(999), RecordType::Other(999));
    }
}
