//! Property-based tests: the wire codec must round-trip every value it can
//! represent and never panic on hostile bytes.

use dnswire::{
    builder, FrameDecoder, Header, Message, Name, Question, RData, Rcode, RecordType,
    ResourceRecord, SoaData,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?").expect("regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("labels valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|b| RData::A(b.into())),
        any::<[u8; 16]>().prop_map(|b| RData::Aaaa(b.into())),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..255), 0..4)
            .prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| ResourceRecord::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::collection::vec(arb_record(), 0..5),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(|(id, qname, answers, additional)| {
            let mut msg = Message::new(Header::new_query(id));
            msg.questions.push(Question::new(qname, RecordType::A));
            msg.answers = answers;
            msg.additional = additional;
            msg
        })
}

proptest! {
    #[test]
    fn name_round_trips_uncompressed(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        let mut pos = 0;
        let back = Name::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, name);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn name_parse_display_round_trips(name in arb_name()) {
        let shown = name.to_string();
        prop_assert_eq!(Name::parse(&shown).unwrap(), name);
    }

    #[test]
    fn message_round_trips(msg in arb_message()) {
        let bytes = msg.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(&back.questions, &msg.questions);
        prop_assert_eq!(&back.answers, &msg.answers);
        prop_assert_eq!(&back.additional, &msg.additional);
        prop_assert_eq!(back.id(), msg.id());
        // Re-encoding the decoded message is byte-stable.
        prop_assert_eq!(back.encode().unwrap(), bytes);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes); // may Err, must not panic
    }

    #[test]
    fn name_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0;
        let _ = Name::decode(&bytes, &mut pos);
    }

    #[test]
    fn framing_reassembles_any_chunking(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..5),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(dnswire::frame_message(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            out.extend(dec.drain_messages());
        }
        prop_assert_eq!(out, msgs);
        prop_assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn padding_always_hits_block(block in 16usize..512, name in arb_name()) {
        let mut q = Message::new(Header::new_query(1));
        q.questions.push(Question::new(name, RecordType::A));
        q.pad_to_block(block).unwrap();
        prop_assert_eq!(q.encode().unwrap().len() % block, 0);
    }

    #[test]
    fn padding_never_shrinks_and_is_minimal(block in 16usize..512, name in arb_name()) {
        let mut q = Message::new(Header::new_query(1));
        q.questions.push(Question::new(name, RecordType::A));
        // Attach the OPT up front so `unpadded` measures exactly what the
        // padding rule sees (pad_to_block would add a default OPT anyway).
        q.set_opt(dnswire::OptRecord::default());
        let unpadded = q.encode().unwrap().len();
        q.pad_to_block(block).unwrap();
        let padded = q.encode().unwrap().len();
        prop_assert!(padded >= unpadded, "padding must never shrink a message");
        prop_assert_eq!(padded, dnswire::pad_to_block(unpadded, block));
        // Minimality: at most one block beyond the unpadded size.
        prop_assert!(padded < unpadded + 4 + block);
        // Fixed edge: an exact multiple stays put instead of gaining a
        // whole extra block.
        if unpadded.is_multiple_of(block) {
            prop_assert_eq!(padded, unpadded);
        }
    }

    #[test]
    fn padding_option_round_trips(block in 16usize..512, name in arb_name()) {
        let mut q = Message::new(Header::new_query(1));
        q.questions.push(Question::new(name, RecordType::A));
        q.pad_to_block(block).unwrap();
        let wire = q.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        let sent = q.opt().and_then(|o| o.padding_len());
        let got = back.opt().and_then(|o| o.padding_len());
        prop_assert_eq!(got, sent, "padding option must survive a round trip");
        prop_assert_eq!(back.encode().unwrap().len(), wire.len());
        // Re-padding an already padded message is a fixed point.
        let mut again = back;
        again.pad_to_block(block).unwrap();
        prop_assert_eq!(again.encode().unwrap().len(), wire.len());
    }

    #[test]
    fn policy_padded_queries_hit_their_block(key in any::<u64>(), name in arb_name()) {
        use dnswire::PaddingPolicy;
        for policy in [
            PaddingPolicy::rfc8467(),
            PaddingPolicy::RandomBlock { query_block: 128, response_block: 468, max_extra: 3 },
            PaddingPolicy::ConstantRate { interval_us: 5_000, cell: 468 },
            PaddingPolicy::AdaptivePadding { burst_gap_us: 4_000, cell: 468 },
        ] {
            let block = policy.query_block(key).unwrap();
            let mut q = Message::new(Header::new_query(1));
            q.questions.push(Question::new(name.clone(), RecordType::A));
            q.pad_to_block(block).unwrap();
            prop_assert_eq!(q.encode().unwrap().len() % block, 0);
        }
        prop_assert_eq!(PaddingPolicy::None.query_block(key), None);
    }

    #[test]
    fn error_responses_echo_question(name in arb_name(), id in any::<u16>()) {
        let q = {
            let mut m = Message::new(Header::new_query(id));
            m.questions.push(Question::new(name, RecordType::Aaaa));
            m
        };
        let resp = builder::error_response(&q, Rcode::ServFail);
        prop_assert_eq!(resp.id(), id);
        prop_assert_eq!(&resp.questions, &q.questions);
        prop_assert_eq!(resp.rcode(), Rcode::ServFail);
    }
}
