//! Differential tests: the borrowing [`MessageView`] decoder must agree with
//! the owned [`Message`] decoder on every input — field-for-field equality on
//! well-formed messages, and the identical typed [`WireError`] on malformed
//! ones. Inputs are proptest-generated messages, the same messages with
//! random byte flips and truncations applied, and raw random byte strings.

use dnswire::view::{MessageView, NameRef};
use dnswire::{Header, Message, Name, Question, RData, RecordType, ResourceRecord, SoaData};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?").expect("regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("labels valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|b| RData::A(b.into())),
        any::<[u8; 16]>().prop_map(|b| RData::Aaaa(b.into())),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..3)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, refresh)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry: 900,
                    expire: 86_400,
                    minimum: 60,
                })
            }
        ),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::collection::vec(
            (arb_name(), any::<u32>(), arb_rdata())
                .prop_map(|(n, ttl, rd)| ResourceRecord::new(n, ttl, rd)),
            0..5,
        ),
        proptest::collection::vec(
            (arb_name(), any::<u32>(), arb_rdata())
                .prop_map(|(n, ttl, rd)| ResourceRecord::new(n, ttl, rd)),
            0..3,
        ),
    )
        .prop_map(|(id, qname, answers, additional)| {
            let mut msg = Message::new(Header::new_query(id));
            msg.questions.push(Question::new(qname, RecordType::A));
            msg.answers = answers;
            msg.additional = additional;
            msg
        })
}

/// Owned `Name` vs lazily-resolved `NameRef`: same lowercased labels.
fn assert_name_eq(owned: &Name, view: NameRef<'_>) {
    let got: Vec<Vec<u8>> = view.label_iter().map(|l| l.to_ascii_lowercase()).collect();
    assert_eq!(got.as_slice(), owned.labels(), "name labels disagree");
    // Presentation comparison only holds for names whose labels survive
    // `Display` verbatim (byte flips can inject dots or non-graphic bytes,
    // which render escaped).
    let presentation_safe = owned.labels().iter().all(|l| {
        l.iter()
            .all(|&b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'*')
    });
    if presentation_safe {
        assert!(view.eq_presentation(&owned.to_string()));
    }
    assert_eq!(&view.to_name().expect("validated name"), owned);
}

/// Every field of the owned decode must be observable, equal, through the
/// view — header, questions, and all three record sections including RDATA.
fn assert_view_eq(bytes: &[u8], owned: &Message, view: &MessageView<'_>) {
    assert_eq!(view.header(), &owned.header);
    assert_eq!(view.id(), owned.id());
    assert_eq!(view.rcode(), owned.rcode());

    let qs: Vec<_> = view.questions().collect();
    assert_eq!(qs.len(), owned.questions.len());
    for (v, o) in qs.iter().zip(owned.questions.iter()) {
        assert_name_eq(&o.qname, v.qname);
        assert_eq!(v.qtype, o.qtype);
        assert_eq!(v.qclass, o.qclass);
    }

    for (section, owned_rrs) in [
        (view.answers(), &owned.answers),
        (view.authority(), &owned.authority),
        (view.additional(), &owned.additional),
    ] {
        let vs: Vec<_> = section.collect();
        assert_eq!(vs.len(), owned_rrs.len());
        for (v, o) in vs.iter().zip(owned_rrs.iter()) {
            assert_name_eq(&o.name, v.name);
            assert_eq!(v.rtype, o.rtype);
            assert_eq!(v.class, o.class);
            assert_eq!(v.ttl, o.ttl);
            let (start, len) = v.rdata_range();
            let rdata = RData::decode(bytes, v.rtype, start, len).expect("validated rdata");
            assert_eq!(&rdata, &o.rdata);
            if let RData::A(addr) = o.rdata {
                assert_eq!(v.rdata_a(), Some(addr));
            }
        }
    }

    if let Some(first) = owned.answers.iter().find_map(|rr| match rr.rdata {
        RData::A(addr) => Some(addr),
        _ => None,
    }) {
        assert_eq!(view.first_a_answer(), Some(first));
    }
}

/// Both decoders on the same bytes: Ok/Ok with equal fields, or the exact
/// same typed error.
fn assert_decoders_agree(bytes: &[u8]) -> Result<(), TestCaseError> {
    match (Message::decode(bytes), MessageView::parse(bytes)) {
        (Ok(owned), Ok(view)) => {
            assert_view_eq(bytes, &owned, &view);
            Ok(())
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(a, b, "decoders disagree on error");
            Ok(())
        }
        (Ok(_), Err(e)) => {
            prop_assert!(false, "owned accepted, view rejected with {e:?}");
            Ok(())
        }
        (Err(e), Ok(_)) => {
            prop_assert!(false, "view accepted, owned rejected with {e:?}");
            Ok(())
        }
    }
}

proptest! {
    #[test]
    fn well_formed_messages_agree_field_for_field(msg in arb_message()) {
        let bytes = msg.encode().expect("encodable");
        let owned = Message::decode(&bytes).expect("own decode");
        let view = MessageView::parse(&bytes).expect("view decode");
        assert_view_eq(&bytes, &owned, &view);
    }

    #[test]
    fn byte_flipped_messages_classify_identically(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..4),
    ) {
        let mut bytes = msg.encode().expect("encodable");
        for (at, val) in flips {
            let at = at as usize % bytes.len();
            bytes[at] = val;
        }
        assert_decoders_agree(&bytes)?;
    }

    #[test]
    fn truncated_messages_classify_identically(
        msg in arb_message(),
        keep in any::<u16>(),
    ) {
        let mut bytes = msg.encode().expect("encodable");
        bytes.truncate(keep as usize % (bytes.len() + 1));
        assert_decoders_agree(&bytes)?;
    }

    #[test]
    fn random_bytes_classify_identically(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        assert_decoders_agree(&bytes)?;
    }
}
