//! Adversarial wire-format corpus: every fixture under `tests/fixtures/` is
//! a hand-built hostile message (truncations, compression-pointer abuse,
//! length overflows, misplaced OPT). Both decoders — owned [`Message`] and
//! borrowing [`MessageView`] — must return the same typed [`WireError`] on
//! each, and must never panic.

use dnswire::view::MessageView;
use dnswire::{Message, WireError};

/// Parse a `.hex` fixture: whitespace-separated hex octets, `#` comments.
fn parse_hex(text: &str) -> Vec<u8> {
    text.lines()
        .map(|line| line.split('#').next().unwrap_or(""))
        .flat_map(str::split_whitespace)
        .map(|tok| u8::from_str_radix(tok, 16).expect("fixture hex octet"))
        .collect()
}

struct Fixture {
    name: &'static str,
    hex: &'static str,
    expect: fn(&WireError) -> bool,
}

macro_rules! fixture {
    ($name:literal, $pat:pat) => {
        Fixture {
            name: $name,
            hex: include_str!(concat!("fixtures/", $name, ".hex")),
            expect: |e| matches!(e, $pat),
        }
    };
}

const FIXTURES: &[Fixture] = &[
    fixture!(
        "truncated_header",
        WireError::Truncated {
            expecting: "header"
        }
    ),
    fixture!(
        "truncated_question",
        WireError::Truncated {
            expecting: "name label length"
        }
    ),
    fixture!(
        "truncated_label",
        WireError::Truncated {
            expecting: "name label"
        }
    ),
    fixture!("forward_pointer", WireError::BadPointer(32)),
    fixture!("self_pointer", WireError::BadPointer(12)),
    fixture!("pointer_chain_loop", WireError::PointerLoop),
    fixture!("name_overflow", WireError::NameTooLong(257)),
    fixture!("bad_label_type", WireError::BadLabelType(0x40)),
    fixture!(
        "bad_rdata_a",
        WireError::BadRdataLength { rtype: 1, found: 3 }
    ),
    fixture!(
        "truncated_rdata",
        WireError::Truncated { expecting: "rdata" }
    ),
    fixture!(
        "truncated_rr_fixed",
        WireError::Truncated {
            expecting: "rr fixed fields"
        }
    ),
    fixture!("trailing_bytes", WireError::TrailingBytes(1)),
    fixture!("opt_in_answer", WireError::MisplacedOpt),
    fixture!("duplicate_opt", WireError::MisplacedOpt),
    fixture!(
        "txt_truncated_segment",
        WireError::Truncated {
            expecting: "txt segment"
        }
    ),
    fixture!(
        "mx_short_rdata",
        WireError::BadRdataLength {
            rtype: 15,
            found: 2
        }
    ),
    fixture!(
        "cname_overrun_rdata",
        WireError::BadRdataLength { rtype: 5, found: 2 }
    ),
];

#[test]
fn both_decoders_reject_every_fixture_with_the_expected_error() {
    for fx in FIXTURES {
        let bytes = parse_hex(fx.hex);
        let owned = Message::decode(&bytes).expect_err(fx.name);
        assert!(
            (fx.expect)(&owned),
            "{}: owned decoder returned unexpected {owned:?}",
            fx.name
        );
        let view = MessageView::parse(&bytes).expect_err(fx.name);
        assert_eq!(
            owned, view,
            "{}: decoders disagree on the error variant",
            fx.name
        );
    }
}

#[test]
fn every_fixture_prefix_is_handled_without_panicking() {
    // Each fixture, truncated at every possible length: still typed errors
    // (or, for a prefix that happens to form a valid message, agreement).
    for fx in FIXTURES {
        let bytes = parse_hex(fx.hex);
        for keep in 0..bytes.len() {
            let prefix = &bytes[..keep];
            match (Message::decode(prefix), MessageView::parse(prefix)) {
                (Err(a), Err(b)) => assert_eq!(a, b, "{} prefix {keep}", fx.name),
                (Ok(_), Ok(_)) => {}
                (a, b) => panic!(
                    "{} prefix {keep}: decoders disagree ({a:?} vs {b:?})",
                    fx.name
                ),
            }
        }
    }
}
