//! Property-based tests: the shapers must conserve real traffic, keep
//! their documented cost profile (who pays latency, who pays bandwidth)
//! and stay bit-deterministic; the classifier's distance must behave
//! like an edit distance on every input.

use dnswire::PaddingPolicy;
use doe_privacy::classifier::{knn_classify, sequence_distance, LabeledTrace};
use doe_privacy::shaper::shape_sequence;
use doe_privacy::{MessageSequence, SeqMessage};
use doe_protocols::TapDirection;
use proptest::prelude::*;

const CELL: usize = 128;
/// One framed cell on the wire (cell payload + 2-byte length prefix).
const CELL_WIRE: u64 = CELL as u64 + 2;

fn arb_message() -> impl Strategy<Value = SeqMessage> {
    (0u64..50_000, any::<bool>(), 1u32..2_000).prop_map(|(gap_us, up, size)| SeqMessage {
        gap_us,
        dir: if up {
            TapDirection::Up
        } else {
            TapDirection::Down
        },
        size,
    })
}

fn arb_sequence() -> impl Strategy<Value = MessageSequence> {
    proptest::collection::vec(arb_message(), 0..20)
        .prop_map(|messages| MessageSequence { messages })
}

fn arb_symbols() -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0u16..64, 0..24)
}

proptest! {
    /// Policies without a shaping component pass every sequence through
    /// untouched, at zero cost.
    #[test]
    fn pure_padding_policies_are_pass_through(input in arb_sequence(), seed in any::<u64>()) {
        for policy in [
            PaddingPolicy::None,
            PaddingPolicy::rfc8467(),
            PaddingPolicy::RandomBlock { query_block: 128, response_block: 468, max_extra: 3 },
        ] {
            let out = shape_sequence(policy, &input, seed);
            prop_assert_eq!(&out.seq, &input);
            prop_assert_eq!(out.dummy_cells, 0);
            prop_assert_eq!(out.latency_added_us, 0);
        }
    }

    /// Constant-rate output is nothing but uniform framed cells, one per
    /// direction per tick, with the tick count quantized — and every
    /// real cell accounted for.
    #[test]
    fn constant_rate_emits_only_uniform_quantized_cells(input in arb_sequence()) {
        let policy = PaddingPolicy::ConstantRate { interval_us: 2_000, cell: CELL };
        let out = shape_sequence(policy, &input, 0);
        if input.is_empty() {
            prop_assert!(out.seq.is_empty());
            return Ok(());
        }
        prop_assert!(out.seq.messages.iter().all(|m| u64::from(m.size) == CELL_WIRE));
        let ups = out.seq.messages.iter().filter(|m| m.dir == TapDirection::Up).count() as u64;
        let downs = out.seq.messages.len() as u64 - ups;
        prop_assert_eq!(ups, downs);
        // Ticks are rounded up to the shaper's TICK_QUANTUM (4), so flow
        // length leaks only in coarse steps.
        prop_assert_eq!(ups % 4, 0);
        // Conservation: total cells minus dummies is exactly the cells
        // the real messages fragment into.
        let real_cells: u64 = input
            .messages
            .iter()
            .map(|m| u64::from(m.size.div_ceil(CELL as u32).max(1)))
            .sum();
        prop_assert_eq!(ups + downs - out.dummy_cells, real_cells);
    }

    /// The constant-rate shaper has no random component: the seed must
    /// never influence its output.
    #[test]
    fn constant_rate_ignores_the_seed(input in arb_sequence(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let policy = PaddingPolicy::ConstantRate { interval_us: 2_000, cell: CELL };
        prop_assert_eq!(
            shape_sequence(policy, &input, s1),
            shape_sequence(policy, &input, s2)
        );
    }

    /// Adaptive padding never delays real traffic; its entire cost is
    /// the dummy cells, which the output carries one-for-one on top of
    /// the input's messages and bytes.
    #[test]
    fn adaptive_padding_adds_exactly_its_dummies(input in arb_sequence(), seed in any::<u64>()) {
        let policy = PaddingPolicy::AdaptivePadding { burst_gap_us: 4_000, cell: CELL };
        let out = shape_sequence(policy, &input, seed);
        prop_assert_eq!(out.latency_added_us, 0);
        prop_assert_eq!(
            out.seq.len() as u64,
            input.len() as u64 + out.dummy_cells
        );
        prop_assert_eq!(
            out.seq.wire_bytes(),
            input.wire_bytes() + out.dummy_cells * CELL_WIRE
        );
        // Same flow, same seed → the identical dummy schedule.
        prop_assert_eq!(out, shape_sequence(policy, &input, seed));
    }

    /// The OSA edit distance is a sane metric-like function: zero on
    /// equal strings, symmetric, and bounded by the usual edit-distance
    /// envelope `|n - m| ≤ d ≤ max(n, m)`.
    #[test]
    fn sequence_distance_envelope(a in arb_symbols(), b in arb_symbols()) {
        prop_assert_eq!(sequence_distance(&a, &a), 0);
        let d = sequence_distance(&a, &b);
        prop_assert_eq!(d, sequence_distance(&b, &a));
        let (n, m) = (a.len() as u32, b.len() as u32);
        prop_assert!(d >= n.abs_diff(m));
        prop_assert!(d <= n.max(m));
    }

    /// k-NN always answers from the training label set (never invents a
    /// domain), and an exact training match with k = 1 recalls its label.
    #[test]
    fn knn_answers_from_training_labels(
        traces in proptest::collection::vec((0u32..8, arb_symbols()), 1..12),
        sample in arb_symbols(),
        k in 1usize..5,
    ) {
        let train: Vec<LabeledTrace> = traces
            .into_iter()
            .map(|(domain, symbols)| LabeledTrace { domain, symbols })
            .collect();
        let verdict = knn_classify(&train, &sample, k).expect("non-empty training set");
        prop_assert!(train.iter().any(|t| t.domain == verdict));
        let exact = knn_classify(&train, &train[0].symbols, 1).expect("non-empty");
        let zero_dist: Vec<u32> = train
            .iter()
            .filter(|t| t.symbols == train[0].symbols)
            .map(|t| t.domain)
            .collect();
        prop_assert!(zero_dist.contains(&exact));
    }
}
